"""SeeDBService: one warm engine stack serving many concurrent sessions.

SeeDB is middleware analysts query *repeatedly* (§3.2), and the paper's
framing — "SEEDB is designed as a layer on top of a database system" —
implies a long-lived process answering many overlapping requests, not a
per-script library object. This module is that process core:

* it owns named backends and one :class:`ExecutionEngine` per backend
  (each sharing the backend-wide :class:`~repro.engine.cache.EngineCache`
  and the process-wide worker pool);
* it schedules ``recommend()`` requests on a bounded request pool, so a
  burst of sessions queues instead of spawning unbounded threads;
* it *coalesces* identical in-flight requests — same backend, query,
  configuration, and k → one execution whose result fans out to every
  waiter — and keeps a small LRU of finished results keyed on the
  backend's ``data_version`` (a data change silently retires every stale
  entry: the version in the key can never match again);
* it exposes exact service statistics (in-flight, coalesced, cache hit
  rates) for the frontend's ``/stats`` endpoint.

Both the HTTP frontend (:mod:`repro.frontend.server`) and interactive
:class:`~repro.frontend.session.AnalystSession` objects route through one
service instance, which is what lets interactive and HTTP traffic share
caches, samples, and access-log history.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.api.errors import ApiError
from repro.api.progressive import PartialResult
from repro.api.request import RecommendationRequest, ResolvedRequest
from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.core.result import RecommendationResult
from repro.db.query import RowSelectQuery
from repro.engine.engine import ExecutionEngine
from repro.util.errors import ConfigError, QueryError

#: Name under which a single-backend service registers its backend.
DEFAULT_BACKEND = "default"


@dataclass
class ServiceStats:
    """Request accounting, kept exact by the service lock."""

    #: Requests accepted (coalesced and cache-served ones included).
    requests: int = 0
    #: Requests that scheduled a full pipeline execution. Steady-state
    #: invariant: requests == executions + coalesced + result_cache_hits.
    executions: int = 0
    #: Executions finished successfully.
    completed: int = 0
    #: Executions that raised (every waiter sees the exception).
    failed: int = 0
    #: Requests attached to an identical in-flight execution.
    coalesced: int = 0
    #: Requests served directly from the finished-result LRU.
    result_cache_hits: int = 0
    #: Streaming requests accepted (counted in ``requests`` too).
    streams: int = 0


@dataclass
class _BackendSlot:
    """Everything the service holds per registered backend."""

    backend: Backend
    config: SeeDBConfig
    facade: SeeDB
    owned: bool


class _StreamBroadcast:
    """One progressive execution fanned out to any number of subscribers.

    The producer thread publishes :class:`~repro.api.PartialResult` rounds
    as they are computed; every subscriber — including one attaching after
    rounds already streamed (request coalescing) — replays the full round
    history from the start, so late joiners see the same monotonic
    sequence early ones did. A failed execution re-raises the producer's
    exception in every subscriber.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._rounds: list[PartialResult] = []
        self._done = False
        self._error: "BaseException | None" = None

    def publish(self, item: PartialResult) -> None:
        with self._cond:
            self._rounds.append(item)
            self._cond.notify_all()

    def finish(self, error: "BaseException | None" = None) -> None:
        with self._cond:
            self._done = True
            self._error = error
            self._cond.notify_all()

    def subscribe(self):
        """Yield every round from the beginning; blocks on the producer."""
        index = 0
        while True:
            with self._cond:
                while index >= len(self._rounds) and not self._done:
                    self._cond.wait()
                if index < len(self._rounds):
                    item = self._rounds[index]
                    index += 1
                else:
                    if self._error is not None:
                        raise self._error
                    return
            yield item


class SeeDBService:
    """A thread-safe recommendation service over one or more backends.

    ``max_workers`` bounds concurrent request *executions* (the engines
    underneath additionally bound per-plan DBMS parallelism through the
    process-wide worker pool). ``coalesce_requests=False`` turns identical
    concurrent requests back into independent executions (the equivalence
    tests exercise both). ``result_cache_size=0`` disables the finished
    result LRU.
    """

    def __init__(
        self,
        max_workers: int = 8,
        coalesce_requests: bool = True,
        result_cache_size: int = 256,
    ):
        if max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if result_cache_size < 0:
            raise ConfigError(
                f"result_cache_size must be >= 0, got {result_cache_size}"
            )
        self.max_workers = max_workers
        self.coalesce_requests = coalesce_requests
        self.result_cache_size = result_cache_size
        self.stats = ServiceStats()
        self._lock = threading.RLock()
        self._slots: dict[str, _BackendSlot] = {}
        self._in_flight: dict[tuple, Future] = {}
        self._in_flight_streams: "dict[tuple, _StreamBroadcast]" = {}
        self._results: "OrderedDict[tuple, RecommendationResult]" = OrderedDict()
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="seedb-service"
        )
        self._closed = False

    # -- backend registry -------------------------------------------------

    def register_backend(
        self,
        name: str,
        backend: Backend,
        config: "SeeDBConfig | None" = None,
        owned: bool = False,
    ) -> None:
        """Serve ``backend`` under ``name`` with a per-backend default config.

        ``owned=True`` hands the backend's lifecycle to the service:
        :meth:`close` will call its ``close()`` (connection cleanup) after
        the engines shut down.
        """
        with self._lock:
            self._require_open()
            if name in self._slots:
                raise ConfigError(f"backend {name!r} already registered")
            self._slots[name] = _BackendSlot(
                backend=backend,
                config=config if config is not None else SeeDBConfig(),
                facade=SeeDB(backend, config),
                owned=owned,
            )

    def register_backend_uri(
        self,
        name: str,
        uri: str,
        config: "SeeDBConfig | None" = None,
    ) -> Backend:
        """Construct a backend from a URI and register it service-owned.

        ``uri`` is anything :func:`repro.backends.backend_from_uri`
        accepts — ``memory``, ``sqlite:///analytics.db``,
        ``duckdb:///file.db`` — and the service takes lifecycle ownership
        (its ``close()`` will close the backend's connections/files).
        """
        from repro.backends.registry import backend_from_uri

        backend = backend_from_uri(uri)
        try:
            self.register_backend(name, backend, config=config, owned=True)
        except Exception:
            backend.close()
            raise
        return backend

    def backend_names(self) -> list[str]:
        with self._lock:
            return sorted(self._slots)

    def backend(self, name: str = DEFAULT_BACKEND) -> Backend:
        return self._slot(name).backend

    def facade(self, name: str = DEFAULT_BACKEND) -> SeeDB:
        """The engine-bound :class:`SeeDB` facade for one backend.

        Interactive sessions use this to share the service's engine (and
        therefore its caches and access log) for non-request work such as
        schema lookups and query resolution.
        """
        return self._slot(name).facade

    def engine(self, name: str = DEFAULT_BACKEND) -> ExecutionEngine:
        return self._slot(name).facade.engine

    def _slot(self, name: str) -> _BackendSlot:
        with self._lock:
            return self._require_slot(name)

    # -- serving -----------------------------------------------------------

    def submit(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str = DEFAULT_BACKEND,
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
        **overrides,
    ) -> "Future[RecommendationResult]":
        """Schedule a recommendation; returns a future for its result.

        ``query`` is canonically a
        :class:`~repro.api.RecommendationRequest`; a
        :class:`RowSelectQuery` / SQL string plus ``k`` / ``config`` /
        ``**overrides`` is the pre-request adapter form and folds into an
        equivalent request. Identical concurrent requests (same backend,
        resolved request identity) share one execution when coalescing is
        enabled; requests matching a finished result at the same
        ``data_version`` resolve immediately from the LRU.
        """
        with self._lock:
            self._require_open()
            backend_name, slot, request, resolved, base = self._canonicalize(
                query, backend, k, config, overrides
            )
            key = (backend_name, slot.backend.data_version) + resolved.key_parts()
            self.stats.requests += 1

            cached = self._cache_get(key)
            if cached is not None:
                self.stats.result_cache_hits += 1
                future: "Future[RecommendationResult]" = Future()
                future.set_result(cached)
                return future

            if self.coalesce_requests:
                in_flight = self._in_flight.get(key)
                if in_flight is not None:
                    self.stats.coalesced += 1
                    return in_flight

            future = Future()
            # With coalescing off an identical key may already be in
            # flight; keep the first occupant — the map only needs *a*
            # representative for joiners, and each execution resolves its
            # own future regardless.
            self._in_flight.setdefault(key, future)
            self.stats.executions += 1
        try:
            self._pool.submit(
                self._execute, key, backend_name, slot, request, resolved, base, future
            )
        except RuntimeError as exc:
            # close() shut the pool down between our lock release and the
            # schedule: resolve the future (coalesced waiters included)
            # instead of stranding them in result().
            with self._lock:
                if self._in_flight.get(key) is future:
                    del self._in_flight[key]
                self.stats.failed += 1
            future.set_exception(
                QueryError(f"service closed while scheduling request: {exc}")
            )
        return future

    def recommend(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str = DEFAULT_BACKEND,
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
        **overrides,
    ) -> RecommendationResult:
        """Blocking :meth:`submit` — the call interactive sessions make."""
        return self.submit(
            query, backend=backend, k=k, config=config, **overrides
        ).result()

    def recommend_stream(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str = DEFAULT_BACKEND,
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
        **overrides,
    ):
        """Progressive :meth:`recommend`: an iterator of
        :class:`~repro.api.PartialResult` rounds ending in the final
        result round.

        Coalescing-aware fan-out: identical concurrent stream requests
        share one incremental execution whose rounds broadcast to every
        subscriber (late joiners replay from round one); with coalescing
        off each request runs its own execution.
        """
        return self._submit_stream(query, backend, k, config, overrides).subscribe()

    def _submit_stream(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str,
        k: "int | None",
        config: "SeeDBConfig | None",
        overrides: dict,
    ) -> _StreamBroadcast:
        from dataclasses import replace as dataclass_replace

        with self._lock:
            self._require_open()
            backend_name, request = self._build_request(
                query, backend, k, overrides
            )
            if request.strategy != "incremental":
                # Streaming always runs the incremental machinery; pinning
                # the strategy *before* resolution keeps both the
                # bounded-metric validation and the coalescing key honest
                # (a stream must never share an execution with a batch
                # request).
                request = dataclass_replace(request, strategy="incremental")
            backend_name, slot, resolved, _ = self._resolve_request(
                request, backend_name, config
            )
            key = (
                "stream",
                backend_name,
                slot.backend.data_version,
            ) + resolved.key_parts()
            self.stats.requests += 1
            self.stats.streams += 1
            if self.coalesce_requests:
                in_flight = self._in_flight_streams.get(key)
                if in_flight is not None:
                    self.stats.coalesced += 1
                    return in_flight
            broadcast = _StreamBroadcast()
            self._in_flight_streams.setdefault(key, broadcast)
            self.stats.executions += 1
        try:
            self._pool.submit(self._execute_stream, key, slot, resolved, broadcast)
        except RuntimeError as exc:
            with self._lock:
                if self._in_flight_streams.get(key) is broadcast:
                    del self._in_flight_streams[key]
                self.stats.failed += 1
            broadcast.finish(
                QueryError(f"service closed while scheduling request: {exc}")
            )
        return broadcast

    def _execute_stream(
        self,
        key: tuple,
        slot: _BackendSlot,
        resolved: ResolvedRequest,
        broadcast: _StreamBroadcast,
    ) -> None:
        try:
            for partial in slot.facade.iter_resolved(resolved):
                broadcast.publish(partial)
        except BaseException as exc:  # noqa: BLE001 - delivered to subscribers
            with self._lock:
                if self._in_flight_streams.get(key) is broadcast:
                    del self._in_flight_streams[key]
                self.stats.failed += 1
            broadcast.finish(exc)
            return
        with self._lock:
            if self._in_flight_streams.get(key) is broadcast:
                del self._in_flight_streams[key]
            self.stats.completed += 1
        broadcast.finish()

    def _canonicalize(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str,
        k: "int | None",
        config: "SeeDBConfig | None",
        overrides: dict,
    ) -> tuple[str, _BackendSlot, RecommendationRequest, ResolvedRequest, SeeDBConfig]:
        """Fold any accepted input into
        ``(backend_name, slot, request, resolved, base_config)``.

        The canonical ``request`` plus the ``base_config`` it resolved
        against travel alongside ``resolved`` because a sharded service
        re-runs that exact resolution on the owning worker (the request
        crosses the process boundary through the wire codec, never by
        pickling resolved internals).

        Caller holds the service lock.
        """
        backend, request = self._build_request(query, backend, k, overrides)
        backend, slot, resolved, base = self._resolve_request(request, backend, config)
        return backend, slot, request, resolved, base

    def _build_request(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str,
        k: "int | None",
        overrides: dict,
    ) -> tuple[str, RecommendationRequest]:
        """Canonicalize input into ``(backend_name, request)`` (pre-resolve).

        A request's own ``backend`` field routes it when the caller left
        the ``backend`` argument at its default; legacy ``**overrides``
        fold into the request's options (``metric`` and ``k`` into their
        first-class fields).
        """
        if isinstance(query, RecommendationRequest):
            request = query.with_k(k)
            if overrides:
                raise ConfigError(
                    "pass config overrides inside the request's options, "
                    "not as **overrides, when submitting a "
                    "RecommendationRequest"
                )
            if request.backend is not None and backend == DEFAULT_BACKEND:
                backend = request.backend
        else:
            options = dict(overrides)
            metric = options.pop("metric", None)
            k = options.pop("k", k)
            request = RecommendationRequest(
                target=self._require_slot(backend).facade.resolve_query(query),
                k=k,
                metric=metric,
                options=options,
            )
        return backend, request

    def _resolve_request(
        self,
        request: RecommendationRequest,
        backend: str,
        config: "SeeDBConfig | None",
    ) -> tuple[str, _BackendSlot, ResolvedRequest, SeeDBConfig]:
        slot = self._require_slot(backend)
        base = config if config is not None else slot.config
        return backend, slot, request.resolve(base), base

    def _require_slot(self, backend: str) -> _BackendSlot:
        slot = self._slots.get(backend)
        if slot is None:
            raise ApiError(
                f"no backend named {backend!r}; "
                f"registered: {sorted(self._slots)}",
                code="unknown_backend",
                field="backend",
            )
        return slot

    def _execute(
        self,
        key: tuple,
        backend_name: str,
        slot: _BackendSlot,
        request: RecommendationRequest,
        resolved: ResolvedRequest,
        base: SeeDBConfig,
        future: "Future[RecommendationResult]",
    ) -> None:
        try:
            result = self._run_execution(
                key, backend_name, slot, request, resolved, base
            )
        except BaseException as exc:  # noqa: BLE001 - delivered to waiters
            with self._lock:
                if self._in_flight.get(key) is future:
                    del self._in_flight[key]
                self.stats.failed += 1
            future.set_exception(exc)
            return
        with self._lock:
            if self._in_flight.get(key) is future:
                del self._in_flight[key]
            self.stats.completed += 1
            self._cache_put(key, result)
        future.set_result(result)

    def _run_execution(
        self,
        key: tuple,
        backend_name: str,
        slot: _BackendSlot,
        request: RecommendationRequest,
        resolved: ResolvedRequest,
        base: SeeDBConfig,
    ) -> RecommendationResult:
        """Run one deduplicated request to completion; the dispatch seam.

        The base service executes in-process on the slot's facade. The
        cluster tier overrides this to ship ``request`` (re-resolved
        against ``base`` on the other side) to the worker owning ``key``'s
        shard. Runs on a request-pool thread, without the service lock.
        """
        return slot.facade.run_resolved(resolved).to_result()

    # -- finished-result cache ---------------------------------------------

    def _cache_get(self, key: tuple) -> "RecommendationResult | None":
        """Finished-result lookup (caller holds the lock).

        Base implementation: the in-process LRU. The cluster tier replaces
        this with the cross-process shared-memory cache.
        """
        if not self.result_cache_size:
            return None
        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
        return cached

    def _cache_put(self, key: tuple, result: RecommendationResult) -> None:
        """Record a finished result (caller holds the lock)."""
        if not self.result_cache_size:
            return
        self._results[key] = result
        self._results.move_to_end(key)
        while len(self._results) > self.result_cache_size:
            self._results.popitem(last=False)

    def _cache_clear(self) -> None:
        """Drop every finished result (caller holds the lock)."""
        self._results.clear()

    # -- observability -----------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready view of service, engine-cache, and backend stats."""
        with self._lock:
            backends = {}
            for name, slot in self._slots.items():
                cache_stats = slot.facade.engine.cache.stats
                hits, misses = cache_stats.hits, cache_stats.misses
                total = hits + misses
                backends[name] = {
                    "backend": slot.backend.name,
                    "data_version": slot.backend.data_version,
                    "queries_executed": slot.backend.queries_executed,
                    "engine_cache": {
                        "hits": hits,
                        "misses": misses,
                        "hit_rate": (hits / total) if total else None,
                        "invalidations": cache_stats.invalidations,
                        "samples_dropped": cache_stats.samples_dropped,
                    },
                }
            return {
                "requests": self.stats.requests,
                "executions": self.stats.executions,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "coalesced": self.stats.coalesced,
                "result_cache_hits": self.stats.result_cache_hits,
                "streams": self.stats.streams,
                "in_flight": len(self._in_flight) + len(self._in_flight_streams),
                "result_cache_entries": len(self._results),
                "coalescing_enabled": self.coalesce_requests,
                "max_workers": self.max_workers,
                "backends": backends,
            }

    def health(self) -> dict:
        """Liveness summary for the frontend's ``/healthz`` endpoint.

        The thread tier is alive iff the process is; the cluster tier
        overrides this with per-worker liveness probes.
        """
        with self._lock:
            return {
                "status": "closed" if self._closed else "ok",
                "mode": "threads",
                "backends": sorted(self._slots),
                "workers": [],
            }

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._in_flight) + len(self._in_flight_streams)

    def clear_result_cache(self) -> None:
        with self._lock:
            self._cache_clear()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain the request pool, close engines, release owned backends."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slots = list(self._slots.values())
        self._pool.shutdown(wait=True)
        for slot in slots:
            slot.facade.close()
        for slot in slots:
            if slot.owned:
                close = getattr(slot.backend, "close", None)
                if close is not None:
                    close()
        with self._lock:
            self._in_flight.clear()
            self._in_flight_streams.clear()
            self._cache_clear()

    def _require_open(self) -> None:
        if self._closed:
            raise QueryError("service is closed")

    def __enter__(self) -> "SeeDBService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def single_backend_service(
    backend: Backend,
    config: "SeeDBConfig | None" = None,
    owned: bool = False,
    **service_kwargs,
) -> SeeDBService:
    """A service wrapping one backend under the default name."""
    service = SeeDBService(**service_kwargs)
    service.register_backend(DEFAULT_BACKEND, backend, config=config, owned=owned)
    return service
