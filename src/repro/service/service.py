"""SeeDBService: one warm engine stack serving many concurrent sessions.

SeeDB is middleware analysts query *repeatedly* (§3.2), and the paper's
framing — "SEEDB is designed as a layer on top of a database system" —
implies a long-lived process answering many overlapping requests, not a
per-script library object. This module is that process core:

* it owns named backends and one :class:`ExecutionEngine` per backend
  (each sharing the backend-wide :class:`~repro.engine.cache.EngineCache`
  and the process-wide worker pool);
* it schedules ``recommend()`` requests on a bounded request pool, so a
  burst of sessions queues instead of spawning unbounded threads;
* it *coalesces* identical in-flight requests — same backend, query,
  configuration, and k → one execution whose result fans out to every
  waiter — and keeps a small LRU of finished results keyed on the
  backend's ``data_version`` (a data change silently retires every stale
  entry: the version in the key can never match again);
* it exposes exact service statistics (in-flight, coalesced, cache hit
  rates) for the frontend's ``/stats`` endpoint.

Both the HTTP frontend (:mod:`repro.frontend.server`) and interactive
:class:`~repro.frontend.session.AnalystSession` objects route through one
service instance, which is what lets interactive and HTTP traffic share
caches, samples, and access-log history.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from repro.api.errors import ApiError
from repro.api.progressive import PartialResult
from repro.api.request import RecommendationRequest, ResolvedRequest
from repro.backends.base import Backend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.core.result import RecommendationResult
from repro.db.query import RowSelectQuery
from repro.engine.engine import ExecutionEngine
from repro.util.deadline import CancelToken, Deadline
from repro.util.errors import (
    Cancelled,
    ConfigError,
    DeadlineExceeded,
    Overloaded,
    QueryError,
)

#: Name under which a single-backend service registers its backend.
DEFAULT_BACKEND = "default"


@dataclass
class ServiceStats:
    """Request accounting, kept exact by the service lock."""

    #: Requests accepted (coalesced and cache-served ones included).
    requests: int = 0
    #: Requests that scheduled a full pipeline execution. Steady-state
    #: invariant: requests == executions + coalesced + result_cache_hits.
    executions: int = 0
    #: Executions finished successfully.
    completed: int = 0
    #: Executions that raised (every waiter sees the exception).
    failed: int = 0
    #: Requests attached to an identical in-flight execution.
    coalesced: int = 0
    #: Requests served directly from the finished-result LRU.
    result_cache_hits: int = 0
    #: Streaming requests accepted (counted in ``requests`` too).
    streams: int = 0
    #: Requests shed by admission control (never scheduled).
    rejected: int = 0
    #: Executions that failed with :class:`DeadlineExceeded`.
    deadline_exceeded: int = 0
    #: Executions aborted by explicit cancellation (client disconnects).
    cancelled: int = 0
    #: Executions that finished with a ``partial=True`` result.
    partial_results: int = 0


@dataclass
class _BackendSlot:
    """Everything the service holds per registered backend."""

    backend: Backend
    config: SeeDBConfig
    facade: SeeDB
    owned: bool


class _StreamBroadcast:
    """One progressive execution fanned out to any number of subscribers.

    The producer thread publishes :class:`~repro.api.PartialResult` rounds
    as they are computed; every subscriber — including one attaching after
    rounds already streamed (request coalescing) — replays the full round
    history from the start, so late joiners see the same monotonic
    sequence early ones did. A failed execution re-raises the producer's
    exception in every subscriber.
    """

    def __init__(self, cancel_token: "CancelToken | None" = None) -> None:
        self._cond = threading.Condition()
        self._rounds: list[PartialResult] = []
        self._done = False
        self._error: "BaseException | None" = None
        self._cancel_token = cancel_token
        self._subscribers = 0
        self._ever_subscribed = False

    def publish(self, item: PartialResult) -> None:
        with self._cond:
            self._rounds.append(item)
            self._cond.notify_all()

    def finish(self, error: "BaseException | None" = None) -> None:
        with self._cond:
            self._done = True
            self._error = error
            self._cond.notify_all()

    def subscribe(self):
        """Yield every round from the beginning; blocks on the producer.

        Teardown-aware: when the *last* subscriber disconnects mid-stream
        (generator closed before exhaustion) the broadcast cancels the
        producing execution — nobody is listening, so finishing the
        remaining rounds would only burn backend time. Other subscribers
        are untouched: the refcount only triggers at zero.

        Registration is eager (here, not at the generator's first
        ``next()``): a coalesced joiner must be counted the moment it gets
        the broadcast, or an earlier subscriber disconnecting in the
        window before the joiner's first read would cancel an execution
        that still has an audience.
        """
        with self._cond:
            self._subscribers += 1
            self._ever_subscribed = True
        return self._replay()

    def _replay(self):
        index = 0
        try:
            while True:
                with self._cond:
                    while index >= len(self._rounds) and not self._done:
                        self._cond.wait()
                    if index < len(self._rounds):
                        item = self._rounds[index]
                        index += 1
                    else:
                        if self._error is not None:
                            raise self._error
                        return
                yield item
        finally:
            with self._cond:
                self._subscribers -= 1
                abandoned = self._subscribers == 0 and not self._done
            if abandoned and self._cancel_token is not None:
                self._cancel_token.cancel("every stream subscriber disconnected")


class SeeDBService:
    """A thread-safe recommendation service over one or more backends.

    ``max_workers`` bounds concurrent request *executions* (the engines
    underneath additionally bound per-plan DBMS parallelism through the
    process-wide worker pool). ``coalesce_requests=False`` turns identical
    concurrent requests back into independent executions (the equivalence
    tests exercise both). ``result_cache_size=0`` disables the finished
    result LRU.

    Admission control: ``max_queue_depth`` bounds how many admitted
    executions may *wait* behind the ``max_workers`` running ones — when
    the bound is hit new work is shed with :class:`Overloaded` (HTTP 429
    + ``Retry-After``) instead of growing an unbounded backlog.
    ``backend_inflight_limit`` additionally caps concurrent executions per
    backend, so one slow backend cannot monopolize the pool. Both default
    to ``None`` (unbounded, the pre-hardening behavior). Cache hits and
    coalesced joiners are never shed — they cost no execution slot.
    """

    def __init__(
        self,
        max_workers: int = 8,
        coalesce_requests: bool = True,
        result_cache_size: int = 256,
        max_queue_depth: "int | None" = None,
        backend_inflight_limit: "int | None" = None,
    ):
        if max_workers < 1:
            raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
        if result_cache_size < 0:
            raise ConfigError(
                f"result_cache_size must be >= 0, got {result_cache_size}"
            )
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ConfigError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if backend_inflight_limit is not None and backend_inflight_limit < 1:
            raise ConfigError(
                f"backend_inflight_limit must be >= 1, got {backend_inflight_limit}"
            )
        self.max_workers = max_workers
        self.coalesce_requests = coalesce_requests
        self.result_cache_size = result_cache_size
        self.max_queue_depth = max_queue_depth
        self.backend_inflight_limit = backend_inflight_limit
        self.stats = ServiceStats()
        self._lock = threading.RLock()
        self._slots: dict[str, _BackendSlot] = {}  # guarded-by: _lock
        self._in_flight: dict[tuple, Future] = {}  # guarded-by: _lock
        self._in_flight_streams: "dict[tuple, _StreamBroadcast]" = {}  # guarded-by: _lock
        self._results: "OrderedDict[tuple, RecommendationResult]" = OrderedDict()  # guarded-by: _lock
        #: Executions admitted and not yet finished (queued + running).
        self._executing = 0  # guarded-by: _lock
        self._backend_executing: dict[str, int] = {}  # guarded-by: _lock
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="seedb-service"
        )
        self._closed = False  # guarded-by: _lock

    # -- backend registry -------------------------------------------------

    def register_backend(
        self,
        name: str,
        backend: Backend,
        config: "SeeDBConfig | None" = None,
        owned: bool = False,
    ) -> None:
        """Serve ``backend`` under ``name`` with a per-backend default config.

        ``owned=True`` hands the backend's lifecycle to the service:
        :meth:`close` will call its ``close()`` (connection cleanup) after
        the engines shut down.
        """
        with self._lock:
            self._require_open()
            if name in self._slots:
                raise ConfigError(f"backend {name!r} already registered")
            self._slots[name] = _BackendSlot(
                backend=backend,
                config=config if config is not None else SeeDBConfig(),
                facade=SeeDB(backend, config),
                owned=owned,
            )

    def register_backend_uri(
        self,
        name: str,
        uri: str,
        config: "SeeDBConfig | None" = None,
    ) -> Backend:
        """Construct a backend from a URI and register it service-owned.

        ``uri`` is anything :func:`repro.backends.backend_from_uri`
        accepts — ``memory``, ``sqlite:///analytics.db``,
        ``duckdb:///file.db`` — and the service takes lifecycle ownership
        (its ``close()`` will close the backend's connections/files).
        """
        from repro.backends.registry import backend_from_uri

        backend = backend_from_uri(uri)
        try:
            self.register_backend(name, backend, config=config, owned=True)
        except Exception:
            backend.close()
            raise
        return backend

    def backend_names(self) -> list[str]:
        with self._lock:
            return sorted(self._slots)

    def backend(self, name: str = DEFAULT_BACKEND) -> Backend:
        return self._slot(name).backend

    def facade(self, name: str = DEFAULT_BACKEND) -> SeeDB:
        """The engine-bound :class:`SeeDB` facade for one backend.

        Interactive sessions use this to share the service's engine (and
        therefore its caches and access log) for non-request work such as
        schema lookups and query resolution.
        """
        return self._slot(name).facade

    def engine(self, name: str = DEFAULT_BACKEND) -> ExecutionEngine:
        return self._slot(name).facade.engine

    def _slot(self, name: str) -> _BackendSlot:
        with self._lock:
            return self._require_slot(name)

    # -- admission control -------------------------------------------------

    def _admit_execution(self, backend_name: str) -> None:
        """Load-shedding gate for one new execution (caller holds the lock).

        Raises :class:`Overloaded` when the admission queue or the
        backend's in-flight cap is full; otherwise claims a slot (paired
        with :meth:`_release_execution`).
        """
        if (
            self.max_queue_depth is not None
            and self._executing >= self.max_workers + self.max_queue_depth
        ):
            self.stats.rejected += 1
            raise Overloaded(
                f"admission queue full ({self._executing} executions in flight, "
                f"{self.max_workers} workers + {self.max_queue_depth} queue slots)",
                retry_after=self._retry_after(),
            )
        limit = self.backend_inflight_limit
        if (
            limit is not None
            and self._backend_executing.get(backend_name, 0) >= limit
        ):
            self.stats.rejected += 1
            raise Overloaded(
                f"backend {backend_name!r} is at its in-flight cap ({limit})",
                retry_after=self._retry_after(),
            )
        self._executing += 1
        self._backend_executing[backend_name] = (
            self._backend_executing.get(backend_name, 0) + 1
        )

    def _retry_after(self) -> float:
        """Crude drain estimate: half a second per queued execution per
        worker, floored at 100 ms — a hint, not a promise.

        Caller holds the lock.
        """
        queued = max(0, self._executing - self.max_workers)
        return max(0.1, round(0.5 * (queued + 1) / self.max_workers, 2))

    def _release_execution(self, backend_name: str) -> None:
        """Return an admission slot (caller holds the lock)."""
        self._executing = max(0, self._executing - 1)
        remaining = self._backend_executing.get(backend_name, 0) - 1
        if remaining <= 0:
            self._backend_executing.pop(backend_name, None)
        else:
            self._backend_executing[backend_name] = remaining

    def _classify_failure(self, exc: BaseException) -> None:
        """Per-taxonomy failure counters (caller holds the lock)."""
        if isinstance(exc, DeadlineExceeded):
            self.stats.deadline_exceeded += 1
        elif isinstance(exc, Cancelled):
            self.stats.cancelled += 1

    @staticmethod
    def _lifecycle_token(resolved: ResolvedRequest) -> CancelToken:
        """The request's cancel token, deadline measured from *admission*
        — queue wait burns budget, exactly like the paper's interactive
        latency bound intends."""
        return CancelToken(deadline=Deadline.from_ms(resolved.deadline_ms))

    # -- serving -----------------------------------------------------------

    def submit(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str = DEFAULT_BACKEND,
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
        **overrides,
    ) -> "Future[RecommendationResult]":
        """Schedule a recommendation; returns a future for its result.

        ``query`` is canonically a
        :class:`~repro.api.RecommendationRequest`; a
        :class:`RowSelectQuery` / SQL string plus ``k`` / ``config`` /
        ``**overrides`` is the pre-request adapter form and folds into an
        equivalent request. Identical concurrent requests (same backend,
        resolved request identity) share one execution when coalescing is
        enabled; requests matching a finished result at the same
        ``data_version`` resolve immediately from the LRU.
        """
        with self._lock:
            self._require_open()
            backend_name, slot, request, resolved, base = self._canonicalize(
                query, backend, k, config, overrides
            )
            key = (backend_name, slot.backend.data_version) + resolved.key_parts()
            self.stats.requests += 1

            cached = self._cache_get(key)
            if cached is not None:
                self.stats.result_cache_hits += 1
                future: "Future[RecommendationResult]" = Future()
                future.set_result(cached)
                return future

            if self.coalesce_requests:
                in_flight = self._in_flight.get(key)
                if in_flight is not None:
                    self.stats.coalesced += 1
                    return in_flight

            self._admit_execution(backend_name)
            token = self._lifecycle_token(resolved)
            future = Future()
            # With coalescing off an identical key may already be in
            # flight; keep the first occupant — the map only needs *a*
            # representative for joiners, and each execution resolves its
            # own future regardless.
            self._in_flight.setdefault(key, future)
            self.stats.executions += 1
        try:
            self._pool.submit(
                self._execute,
                key,
                backend_name,
                slot,
                request,
                resolved,
                base,
                future,
                token,
            )
        except RuntimeError as exc:
            # close() shut the pool down between our lock release and the
            # schedule: resolve the future (coalesced waiters included)
            # instead of stranding them in result().
            with self._lock:
                if self._in_flight.get(key) is future:
                    del self._in_flight[key]
                self.stats.failed += 1
                self._release_execution(backend_name)
            future.set_exception(
                QueryError(f"service closed while scheduling request: {exc}")
            )
        return future

    def recommend(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str = DEFAULT_BACKEND,
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
        **overrides,
    ) -> RecommendationResult:
        """Blocking :meth:`submit` — the call interactive sessions make."""
        return self.submit(
            query, backend=backend, k=k, config=config, **overrides
        ).result()

    def recommend_stream(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str = DEFAULT_BACKEND,
        k: "int | None" = None,
        config: "SeeDBConfig | None" = None,
        **overrides,
    ):
        """Progressive :meth:`recommend`: an iterator of
        :class:`~repro.api.PartialResult` rounds ending in the final
        result round.

        Coalescing-aware fan-out: identical concurrent stream requests
        share one incremental execution whose rounds broadcast to every
        subscriber (late joiners replay from round one); with coalescing
        off each request runs its own execution.
        """
        return self._submit_stream(query, backend, k, config, overrides).subscribe()

    def _submit_stream(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str,
        k: "int | None",
        config: "SeeDBConfig | None",
        overrides: dict,
    ) -> _StreamBroadcast:
        from dataclasses import replace as dataclass_replace

        with self._lock:
            self._require_open()
            backend_name, request = self._build_request(
                query, backend, k, overrides
            )
            if request.strategy != "incremental":
                # Streaming always runs the incremental machinery; pinning
                # the strategy *before* resolution keeps both the
                # bounded-metric validation and the coalescing key honest
                # (a stream must never share an execution with a batch
                # request).
                request = dataclass_replace(request, strategy="incremental")
            backend_name, slot, resolved, _ = self._resolve_request(
                request, backend_name, config
            )
            key = (
                "stream",
                backend_name,
                slot.backend.data_version,
            ) + resolved.key_parts()
            self.stats.requests += 1
            self.stats.streams += 1
            if self.coalesce_requests:
                in_flight = self._in_flight_streams.get(key)
                if in_flight is not None:
                    self.stats.coalesced += 1
                    return in_flight
            self._admit_execution(backend_name)
            token = self._lifecycle_token(resolved)
            broadcast = _StreamBroadcast(cancel_token=token)
            self._in_flight_streams.setdefault(key, broadcast)
            self.stats.executions += 1
        try:
            self._pool.submit(
                self._execute_stream,
                key,
                backend_name,
                slot,
                resolved,
                broadcast,
                token,
            )
        except RuntimeError as exc:
            with self._lock:
                if self._in_flight_streams.get(key) is broadcast:
                    del self._in_flight_streams[key]
                self.stats.failed += 1
                self._release_execution(backend_name)
            broadcast.finish(
                QueryError(f"service closed while scheduling request: {exc}")
            )
        return broadcast

    def _execute_stream(
        self,
        key: tuple,
        backend_name: str,
        slot: _BackendSlot,
        resolved: ResolvedRequest,
        broadcast: _StreamBroadcast,
        token: CancelToken,
    ) -> None:
        final_result = None
        try:
            for partial in slot.facade.iter_resolved(resolved, cancel_token=token):
                broadcast.publish(partial)
                if partial.is_final:
                    final_result = partial.result
        except BaseException as exc:  # noqa: BLE001 - delivered to subscribers
            with self._lock:
                if self._in_flight_streams.get(key) is broadcast:
                    del self._in_flight_streams[key]
                self.stats.failed += 1
                self._classify_failure(exc)
                self._release_execution(backend_name)
            broadcast.finish(exc)
            return
        with self._lock:
            if self._in_flight_streams.get(key) is broadcast:
                del self._in_flight_streams[key]
            self.stats.completed += 1
            if final_result is not None and final_result.partial:
                self.stats.partial_results += 1
            self._release_execution(backend_name)
        broadcast.finish()

    def _canonicalize(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str,
        k: "int | None",
        config: "SeeDBConfig | None",
        overrides: dict,
    ) -> tuple[str, _BackendSlot, RecommendationRequest, ResolvedRequest, SeeDBConfig]:
        """Fold any accepted input into
        ``(backend_name, slot, request, resolved, base_config)``.

        The canonical ``request`` plus the ``base_config`` it resolved
        against travel alongside ``resolved`` because a sharded service
        re-runs that exact resolution on the owning worker (the request
        crosses the process boundary through the wire codec, never by
        pickling resolved internals).

        Caller holds the service lock.
        """
        backend, request = self._build_request(query, backend, k, overrides)
        backend, slot, resolved, base = self._resolve_request(request, backend, config)
        return backend, slot, request, resolved, base

    def _build_request(
        self,
        query: "RecommendationRequest | RowSelectQuery | str",
        backend: str,
        k: "int | None",
        overrides: dict,
    ) -> tuple[str, RecommendationRequest]:
        """Canonicalize input into ``(backend_name, request)`` (pre-resolve).

        A request's own ``backend`` field routes it when the caller left
        the ``backend`` argument at its default; legacy ``**overrides``
        fold into the request's options (``metric`` and ``k`` into their
        first-class fields).
        """
        if isinstance(query, RecommendationRequest):
            request = query.with_k(k)
            if overrides:
                raise ConfigError(
                    "pass config overrides inside the request's options, "
                    "not as **overrides, when submitting a "
                    "RecommendationRequest"
                )
            if request.backend is not None and backend == DEFAULT_BACKEND:
                backend = request.backend
        else:
            options = dict(overrides)
            metric = options.pop("metric", None)
            k = options.pop("k", k)
            request = RecommendationRequest(
                target=self._require_slot(backend).facade.resolve_query(query),
                k=k,
                metric=metric,
                options=options,
            )
        return backend, request

    def _resolve_request(
        self,
        request: RecommendationRequest,
        backend: str,
        config: "SeeDBConfig | None",
    ) -> tuple[str, _BackendSlot, ResolvedRequest, SeeDBConfig]:
        slot = self._require_slot(backend)
        base = config if config is not None else slot.config
        return backend, slot, request.resolve(base), base

    def _require_slot(self, backend: str) -> _BackendSlot:
        """Look up a registered backend slot. Caller holds the lock."""
        slot = self._slots.get(backend)
        if slot is None:
            raise ApiError(
                f"no backend named {backend!r}; "
                f"registered: {sorted(self._slots)}",
                code="unknown_backend",
                field="backend",
            )
        return slot

    def _execute(
        self,
        key: tuple,
        backend_name: str,
        slot: _BackendSlot,
        request: RecommendationRequest,
        resolved: ResolvedRequest,
        base: SeeDBConfig,
        future: "Future[RecommendationResult]",
        token: "CancelToken | None" = None,
    ) -> None:
        try:
            result = self._run_execution(
                key, backend_name, slot, request, resolved, base, token
            )
        except BaseException as exc:  # noqa: BLE001 - delivered to waiters
            with self._lock:
                if self._in_flight.get(key) is future:
                    del self._in_flight[key]
                self.stats.failed += 1
                self._classify_failure(exc)
                self._release_execution(backend_name)
            future.set_exception(exc)
            return
        with self._lock:
            if self._in_flight.get(key) is future:
                del self._in_flight[key]
            self.stats.completed += 1
            if result.partial:
                self.stats.partial_results += 1
            self._release_execution(backend_name)
            # Partial results are deadline accidents, not the request's
            # true answer — caching one would serve a degraded result to
            # a future caller with a fresh budget.
            if not result.partial:
                self._cache_put(key, result)
        future.set_result(result)

    def _run_execution(
        self,
        key: tuple,
        backend_name: str,
        slot: _BackendSlot,
        request: RecommendationRequest,
        resolved: ResolvedRequest,
        base: SeeDBConfig,
        token: "CancelToken | None" = None,
    ) -> RecommendationResult:
        """Run one deduplicated request to completion; the dispatch seam.

        The base service executes in-process on the slot's facade. The
        cluster tier overrides this to ship ``request`` (re-resolved
        against ``base`` on the other side) to the worker owning ``key``'s
        shard, forwarding the remaining deadline budget. Runs on a
        request-pool thread, without the service lock.
        """
        return slot.facade.run_resolved(resolved, cancel_token=token).to_result()

    # -- finished-result cache ---------------------------------------------

    def _cache_get(self, key: tuple) -> "RecommendationResult | None":
        """Finished-result lookup (caller holds the lock).

        Base implementation: the in-process LRU. The cluster tier replaces
        this with the cross-process shared-memory cache.
        """
        if not self.result_cache_size:
            return None
        cached = self._results.get(key)
        if cached is not None:
            self._results.move_to_end(key)
        return cached

    def _cache_put(self, key: tuple, result: RecommendationResult) -> None:
        """Record a finished result (caller holds the lock)."""
        if not self.result_cache_size:
            return
        self._results[key] = result
        self._results.move_to_end(key)
        while len(self._results) > self.result_cache_size:
            self._results.popitem(last=False)

    def _cache_clear(self) -> None:
        """Drop every finished result (caller holds the lock)."""
        self._results.clear()

    # -- observability -----------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-ready view of service, engine-cache, and backend stats."""
        with self._lock:
            backends = {}
            for name, slot in self._slots.items():
                engine_cache = slot.facade.engine.cache
                cache_stats = engine_cache.stats
                hits, misses = cache_stats.hits, cache_stats.misses
                total = hits + misses
                calibration = engine_cache.calibration
                backends[name] = {
                    "backend": slot.backend.name,
                    "data_version": slot.backend.data_version,
                    "queries_executed": slot.backend.queries_executed,
                    "metadata_queries_executed": (
                        slot.backend.metadata_queries_executed
                    ),
                    # Cost-based planner state: the coefficients the next
                    # prediction will use and the last predicted/observed
                    # reconciliation (None before any cost-planned run).
                    "planner": {
                        "coefficients": calibration.coefficients_for(
                            slot.backend.name
                        ).to_dict(),
                        "calibration": calibration.snapshot().get(
                            slot.backend.name
                        ),
                    },
                    "engine_cache": {
                        "hits": hits,
                        "misses": misses,
                        "hit_rate": (hits / total) if total else None,
                        "invalidations": cache_stats.invalidations,
                        "samples_dropped": cache_stats.samples_dropped,
                    },
                }
            return {
                "requests": self.stats.requests,
                "executions": self.stats.executions,
                "completed": self.stats.completed,
                "failed": self.stats.failed,
                "coalesced": self.stats.coalesced,
                "result_cache_hits": self.stats.result_cache_hits,
                "streams": self.stats.streams,
                "rejected": self.stats.rejected,
                "deadline_exceeded": self.stats.deadline_exceeded,
                "cancelled": self.stats.cancelled,
                "partial_results": self.stats.partial_results,
                "in_flight": len(self._in_flight) + len(self._in_flight_streams),
                "executing": self._executing,
                "result_cache_entries": len(self._results),
                "coalescing_enabled": self.coalesce_requests,
                "max_workers": self.max_workers,
                "max_queue_depth": self.max_queue_depth,
                "backend_inflight_limit": self.backend_inflight_limit,
                "backends": backends,
            }

    def health(self) -> dict:
        """Liveness summary for the frontend's ``/healthz`` endpoint.

        The thread tier is alive iff the process is; the cluster tier
        overrides this with per-worker liveness probes.
        """
        with self._lock:
            return {
                "status": "closed" if self._closed else "ok",
                "mode": "threads",
                "backends": sorted(self._slots),
                "workers": [],
            }

    @property
    def in_flight(self) -> int:
        with self._lock:
            return len(self._in_flight) + len(self._in_flight_streams)

    def clear_result_cache(self) -> None:
        with self._lock:
            self._cache_clear()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain the request pool, close engines, release owned backends."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            slots = list(self._slots.values())
        self._pool.shutdown(wait=True)
        for slot in slots:
            slot.facade.close()
        for slot in slots:
            if slot.owned:
                close = getattr(slot.backend, "close", None)
                if close is not None:
                    close()
        with self._lock:
            self._in_flight.clear()
            self._in_flight_streams.clear()
            self._cache_clear()

    def _require_open(self) -> None:
        """Reject calls on a closed service. Caller holds the lock."""
        if self._closed:
            raise QueryError("service is closed")

    def __enter__(self) -> "SeeDBService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def single_backend_service(
    backend: Backend,
    config: "SeeDBConfig | None" = None,
    owned: bool = False,
    **service_kwargs,
) -> SeeDBService:
    """A service wrapping one backend under the default name."""
    service = SeeDBService(**service_kwargs)
    service.register_backend(DEFAULT_BACKEND, backend, config=config, owned=owned)
    return service
