"""Cross-process result transport and cache over POSIX shared memory.

Worker processes in the cluster tier (:mod:`repro.service.cluster`) hand
finished :class:`~repro.core.result.RecommendationResult` objects back to
the router without pickling them: the result's numpy columns are written
raw into a named ``multiprocessing.shared_memory`` segment behind a small
versioned header, and only the segment *name* crosses the process
boundary. The segment then doubles as a cross-process result cache entry —
keyed on the request digest and the backend's ``data_version``, so a write
to the data retires every stale entry the same way the in-process LRU's
version-bearing keys do.

Wire layout of one segment::

    [0:8)    magic  b"SDBRES1\\0"        (written last: torn writes stay invalid)
    [8:16)   uint64 header length H (little-endian)
    [16:16+H) header JSON — digest, data_version, the result's scalar
              fields, and an array table of (dtype, shape, offset, nbytes)
    [...]     the numpy buffers, 8-byte aligned, at the header's offsets

Everything numeric (utilities, distributions, raw values) round-trips
bit-exactly: floats ride as raw IEEE-754 buffers or via JSON's
shortest-round-trip repr. Group keys (strings, ints, NaN floats, dates,
``datetime64``, tuples) are encoded with explicit type tags — dates use
the wire codec's ``{"$date": ...}`` convention.

Segment bookkeeping deliberately bypasses Python's ``resource_tracker``
(which would unlink a still-shared segment when the first process exits,
bpo-39959): every open is immediately unregistered and lifecycle is
explicit — creators write, the router's :class:`SharedResultCache` owns
eviction and end-of-life ``unlink``.
"""

from __future__ import annotations

import json
import os
from datetime import date, datetime
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core.result import RecommendationResult
from repro.core.view import ViewSpec
from repro.pruning.base import PruneReport
from repro.testing.faults import fault_point
from repro.util.errors import ConfigError
from repro.util.timing import Stopwatch

try:  # direct shm_unlink keeps the resource tracker out of the loop entirely
    import _posixshmem
except ImportError:  # pragma: no cover - non-POSIX platform
    _posixshmem = None

MAGIC = b"SDBRES1\0"
_HEADER_FIXED = 16  # magic + uint64 header length

#: Where POSIX named segments appear on Linux; used for leak detection.
SHM_DIR = "/dev/shm"


class ShmCodecError(ConfigError):
    """A segment or byte blob that is not a valid encoded result."""


# -- scalar value tagging ---------------------------------------------------


def encode_value(value):
    """One group key / scalar as a JSON-safe tagged value (lossless)."""
    if isinstance(value, np.datetime64):
        unit = np.datetime_data(value.dtype)[0]
        return {"$dt64": str(value), "$unit": unit}
    if hasattr(value, "item"):  # numpy scalars -> native
        value = value.item()
    if isinstance(value, datetime):
        return {"$datetime": value.isoformat()}
    if isinstance(value, date):
        return {"$date": value.isoformat()}
    if isinstance(value, tuple):
        return {"$tuple": [encode_value(item) for item in value]}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ShmCodecError(
        f"cannot encode value of type {type(value).__name__} for shm transport"
    )


def decode_value(value):
    if isinstance(value, dict):
        if "$dt64" in value:
            return np.datetime64(
                None if value["$dt64"] == "NaT" else value["$dt64"],
                value.get("$unit", "D"),
            )
        if "$datetime" in value:
            return datetime.fromisoformat(value["$datetime"])
        if "$date" in value:
            return date.fromisoformat(value["$date"])
        if "$tuple" in value:
            return tuple(decode_value(item) for item in value["$tuple"])
        raise ShmCodecError(f"unknown tagged value {sorted(value)}")
    return value


# -- array table ------------------------------------------------------------


class _ArrayTable:
    """Collects numpy arrays during encoding; emits the buffer region.

    Numeric/bool/datetime arrays ride as raw buffers (bit-exact,
    pickle-free); object-dtype arrays fall back to inline tagged values.
    """

    def __init__(self) -> None:
        self.entries: list[dict] = []
        self.buffers: list[bytes] = []
        self.nbytes = 0

    def add(self, array: np.ndarray):
        array = np.asarray(array)
        if array.dtype.kind not in "biufM":
            return {
                "values": [encode_value(item) for item in array.tolist()]
            }
        raw = np.ascontiguousarray(array).tobytes()
        aligned = (len(raw) + 7) & ~7
        index = len(self.entries)
        self.entries.append(
            {
                "dtype": array.dtype.str,
                "shape": list(array.shape),
                "offset": self.nbytes,  # relative to the array region start
                "nbytes": len(raw),
            }
        )
        self.buffers.append(raw + b"\0" * (aligned - len(raw)))
        self.nbytes += aligned
        return index


def _take_array(ref, entries: list[dict], buf, region_start: int) -> np.ndarray:
    if isinstance(ref, dict):
        values = [decode_value(item) for item in ref["values"]]
        array = np.empty(len(values), dtype=object)
        for i, value in enumerate(values):
            array[i] = value
        return array
    entry = entries[ref]
    start = region_start + entry["offset"]
    view = np.frombuffer(
        buf, dtype=np.dtype(entry["dtype"]), count=int(np.prod(entry["shape"], dtype=np.int64)), offset=start
    )
    # Copy out: the caller closes the segment after decoding, which would
    # invalidate any view still referencing its mmap.
    return view.reshape(entry["shape"]).copy()


# -- view / result structure ------------------------------------------------


def _spec_to_dict(spec) -> dict:
    if hasattr(spec, "dimension"):
        return {"d": spec.dimension, "m": spec.measure, "f": spec.func}
    return {"dims": list(spec.dimensions), "m": spec.measure, "f": spec.func}


def _spec_from_dict(payload: dict):
    if "dims" in payload:
        from repro.core.multiview import MultiViewSpec

        return MultiViewSpec(
            dimensions=tuple(payload["dims"]),
            measure=payload["m"],
            func=payload["f"],
        )
    return ViewSpec(payload["d"], payload["m"], payload["f"])


def _view_to_dict(view, arrays: _ArrayTable) -> dict:
    return {
        "spec": _spec_to_dict(view.spec),
        "utility": float(view.utility),
        "groups": [encode_value(group) for group in view.groups],
        "target_distribution": arrays.add(view.target_distribution),
        "comparison_distribution": arrays.add(view.comparison_distribution),
        "target_values": arrays.add(view.target_values),
        "comparison_values": arrays.add(view.comparison_values),
    }


def _view_from_dict(payload: dict, entries, buf, region_start):
    from repro.model.view import ScoredView

    return ScoredView(
        spec=_spec_from_dict(payload["spec"]),
        utility=payload["utility"],
        groups=[decode_value(group) for group in payload["groups"]],
        target_distribution=_take_array(
            payload["target_distribution"], entries, buf, region_start
        ),
        comparison_distribution=_take_array(
            payload["comparison_distribution"], entries, buf, region_start
        ),
        target_values=_take_array(
            payload["target_values"], entries, buf, region_start
        ),
        comparison_values=_take_array(
            payload["comparison_values"], entries, buf, region_start
        ),
    )


def encode_result(
    result: RecommendationResult, digest: str = "", data_version: int = 0
) -> bytes:
    """Serialize a result into one self-describing byte blob (no pickle)."""
    arrays = _ArrayTable()
    header = {
        "digest": digest,
        "data_version": data_version,
        "result": {
            "table": result.table,
            "predicate_description": result.predicate_description,
            "k": result.k,
            "metric": result.metric,
            "recommendations": [
                _view_to_dict(view, arrays) for view in result.recommendations
            ],
            "all_scored": [
                _view_to_dict(view, arrays)
                for view in result.all_scored.values()
            ],
            "prune_reports": [
                {
                    "rule": report.rule,
                    "examined": report.examined,
                    "pruned": [
                        [_spec_to_dict(spec), reason]
                        for spec, reason in report.pruned
                    ],
                }
                for report in result.prune_reports
            ],
            "phases": dict(result.stopwatch.phases),
            "n_candidate_views": result.n_candidate_views,
            "n_executed_views": result.n_executed_views,
            "n_queries": result.n_queries,
            "sample_fraction": result.sample_fraction,
            "plan_description": result.plan_description,
            "reference_description": result.reference_description,
            "partial": result.partial,
            "partial_epsilon": result.partial_epsilon,
            "visualizations": result.visualizations,
        },
        "arrays": arrays.entries,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    region_start = _HEADER_FIXED + len(header_bytes)
    aligned_start = (region_start + 7) & ~7
    parts = [
        MAGIC,
        len(header_bytes).to_bytes(8, "little"),
        header_bytes,
        b"\0" * (aligned_start - region_start),
    ]
    parts.extend(arrays.buffers)
    return b"".join(parts)


def peek_header(buf) -> dict:
    """Validate framing and return the decoded header of an encoded blob."""
    view = memoryview(buf)
    try:
        if len(view) < _HEADER_FIXED or bytes(view[:8]) != MAGIC:
            raise ShmCodecError("not an encoded result (bad magic)")
        header_len = int.from_bytes(view[8:16], "little")
        if header_len <= 0 or _HEADER_FIXED + header_len > len(view):
            raise ShmCodecError("truncated result header")
        try:
            return json.loads(bytes(view[16:16 + header_len]).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ShmCodecError(f"corrupt result header: {exc}") from exc
    finally:
        # Release before any raise propagates: a traceback pinning this
        # frame must not pin an exported pointer into a shared-memory
        # segment the caller is about to close (BufferError otherwise).
        view.release()


def decode_result(buf) -> tuple[str, int, RecommendationResult]:
    """Decode a blob back into ``(digest, data_version, result)``.

    Arrays are copied out of ``buf``, so the returned result outlives any
    shared-memory segment the blob came from.
    """
    header = peek_header(buf)
    header_len = int.from_bytes(memoryview(buf)[8:16], "little")
    region_start = (_HEADER_FIXED + header_len + 7) & ~7
    entries = header["arrays"]
    payload = header["result"]
    all_scored_views = [
        _view_from_dict(item, entries, buf, region_start)
        for item in payload["all_scored"]
    ]
    result = RecommendationResult(
        table=payload["table"],
        predicate_description=payload["predicate_description"],
        k=payload["k"],
        metric=payload["metric"],
        recommendations=[
            _view_from_dict(item, entries, buf, region_start)
            for item in payload["recommendations"]
        ],
        all_scored={view.spec: view for view in all_scored_views},
        prune_reports=[
            PruneReport(
                rule=report["rule"],
                examined=report["examined"],
                pruned=[
                    (_spec_from_dict(spec), reason)
                    for spec, reason in report["pruned"]
                ],
            )
            for report in payload["prune_reports"]
        ],
        stopwatch=Stopwatch(phases=dict(payload["phases"])),
        n_candidate_views=payload["n_candidate_views"],
        n_executed_views=payload["n_executed_views"],
        n_queries=payload["n_queries"],
        sample_fraction=payload["sample_fraction"],
        plan_description=payload["plan_description"],
        reference_description=payload["reference_description"],
        # .get: tolerate blobs written by a pre-lifecycle encoder.
        partial=payload.get("partial", False),
        partial_epsilon=payload.get("partial_epsilon"),
        visualizations=payload.get("visualizations"),
    )
    return header["digest"], header["data_version"], result


# -- shared-memory segments -------------------------------------------------


def _open_segment(name: str, create: bool = False, size: int = 0):
    """Open/create a segment with the resource tracker kept out of it."""
    segment = shared_memory.SharedMemory(name=name, create=create, size=size)
    try:
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across versions
        pass
    return segment


def unlink_segment(name: str) -> bool:
    """Remove a named segment; returns whether it existed."""
    if _posixshmem is not None:
        try:
            _posixshmem.shm_unlink("/" + name)
        except FileNotFoundError:
            return False
        except OSError:
            return False
        return True
    try:  # pragma: no cover - non-POSIX fallback
        segment = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    segment.unlink()
    segment.close()
    return True


def read_segment(name: str) -> tuple[str, int, RecommendationResult]:
    """Decode one named segment: ``(digest, data_version, result)``.

    The transport read the router performs when a worker replies with a
    segment name. Raises ``FileNotFoundError`` / :class:`ShmCodecError`
    on missing or invalid segments.
    """
    segment = _open_segment(name)
    try:
        return decode_result(segment.buf)
    finally:
        segment.close()


def list_segments(prefix: str) -> list[str]:
    """Live segment names under ``prefix`` (empty where unsupported)."""
    try:
        names = os.listdir(SHM_DIR)
    except OSError:
        return []
    return sorted(name for name in names if name.startswith(prefix))


class SharedResultCache:
    """A cross-process result cache of named shared-memory segments.

    Segment names are derived from the request-key digest, so any process
    that can compute the key can find the entry — no shared index needed.
    Entries are versioned: a ``get`` or ``put`` that encounters an entry
    recorded at an older ``data_version`` unlinks it on the spot (writers
    and readers both self-retire stale data). The router additionally
    bounds the number of live entries (LRU) and unlinks everything at
    service close; :func:`list_segments` is the leak detector the tests
    assert with.
    """

    def __init__(self, prefix: str):
        if not prefix or len(prefix) > 14 or "/" in prefix:
            raise ConfigError(
                f"shm prefix must be 1-14 chars without '/', got {prefix!r}"
            )
        self.prefix = prefix
        self.puts = 0
        self.put_failures = 0
        self.hits = 0
        self.misses = 0
        self.stale_dropped = 0

    def segment_name(self, digest: str) -> str:
        return self.prefix + digest[:16]

    # -- write side (workers) ---------------------------------------------

    def put(self, digest: str, data_version: int, result) -> "str | None":
        """Publish a result; returns the segment name, or None on failure.

        Failures (shm exhausted, unsupported platform) are not errors —
        the caller falls back to sending the encoded bytes in-band.
        """
        try:
            payload = encode_result(result, digest=digest, data_version=data_version)
        except ShmCodecError:
            self.put_failures += 1
            return None
        name = self.segment_name(digest)
        try:
            segment = self._create(name, len(payload), digest, data_version)
            if segment is None:  # an equally-fresh entry already exists
                return name
        except (OSError, ValueError):
            self.put_failures += 1
            return None
        try:
            # Magic goes in last so a reader attaching mid-write (or after
            # a writer crash) sees an invalid segment, never a torn result.
            segment.buf[8:len(payload)] = payload[8:]
            if "tear" in fault_point("shm.put"):
                # Chaos hook: simulate a writer dying between the body and
                # the magic — the segment stays magic-less, exactly what a
                # reader must treat as invisible.
                self.put_failures += 1
                return None
            segment.buf[0:8] = payload[0:8]
            self.puts += 1
            return name
        finally:
            segment.close()

    def _create(self, name: str, size: int, digest: str, data_version: int):
        try:
            return _open_segment(name, create=True, size=size)
        except FileExistsError:
            pass
        # Somebody already published under this name: keep it if it is at
        # least as fresh for the same key, otherwise self-retire it.
        try:
            existing = _open_segment(name)
        except FileNotFoundError:
            return _open_segment(name, create=True, size=size)
        try:
            header = peek_header(existing.buf)
            if (
                header.get("digest") == digest
                and header.get("data_version", -1) >= data_version
            ):
                return None
        except ShmCodecError:
            pass  # torn/corrupt entry: replace it
        finally:
            existing.close()
        self.stale_dropped += unlink_segment(name)
        return _open_segment(name, create=True, size=size)

    # -- read side (router) -------------------------------------------------

    def get(self, digest: str, data_version: int):
        """The cached result for ``digest`` at ``data_version``, or None."""
        name = self.segment_name(digest)
        try:
            segment = _open_segment(name)
        except (FileNotFoundError, OSError, ValueError):
            self.misses += 1
            return None
        if bytes(segment.buf[:8]) != MAGIC:
            # No magic: either a writer is mid-publish (magic goes in
            # last) or a writer died mid-write. Invisible either way — but
            # NOT retired: unlinking here would tear a live writer's
            # segment out from under its in-flight reply. Dead garbage is
            # replaced by the next put and swept at close.
            segment.close()
            self.misses += 1
            return None
        try:
            entry_digest, entry_version, result = decode_result(segment.buf)
        except (ShmCodecError, KeyError, TypeError, ValueError):
            # Magic present means the write completed: this is real
            # corruption, safe to retire.
            segment.close()
            unlink_segment(name)
            self.misses += 1
            return None
        segment.close()
        if entry_digest != digest:
            # A 64-bit name collision with a different key: unusable for
            # this request but owned by the other one — leave it alone.
            self.misses += 1
            return None
        if entry_version != data_version:
            self.stale_dropped += unlink_segment(name)
            self.misses += 1
            return None
        self.hits += 1
        return result

    # -- lifecycle ----------------------------------------------------------

    def live_segments(self) -> list[str]:
        return list_segments(self.prefix)

    def unlink_all(self, names: "list[str] | None" = None) -> int:
        """Unlink known ``names`` plus anything the scan finds; returns
        how many segments were actually removed."""
        removed = 0
        for name in set(names or []) | set(self.live_segments()):
            removed += unlink_segment(name)
        return removed

    def stats(self) -> dict:
        return {
            "puts": self.puts,
            "put_failures": self.put_failures,
            "hits": self.hits,
            "misses": self.misses,
            "stale_dropped": self.stale_dropped,
        }
