"""The cluster worker process: one shard of the serving tier.

Each worker is a long-lived process owning private *replicas* of the
service's backends — constructed from the backend's URI scheme with the
parent's tables shipped over at bootstrap — plus its own
:class:`~repro.core.recommender.SeeDB` facade per replica (and therefore
its own :class:`~repro.engine.cache.EngineCache`). Consistent-hash routing
in the parent means the same request key always lands on the same worker,
so those private caches get the affinity a shared in-process cache would.

Requests cross the process boundary in wire form — the PR 4 codec's
``RecommendationRequest.to_dict()`` — and the worker re-runs the exact
resolution the router ran (same request, same base config), which is what
makes cluster results bit-identical to single-process ones. Finished
results leave through the shared-memory cache; only the segment name (or,
if shared memory fails, the encoded bytes) travels on the response queue.

The message protocol (dicts over a ``multiprocessing`` queue inbound and
a private per-worker ``Pipe`` outbound — private so one SIGKILLed worker
can only tear its own reply stream, never a shared channel's framing):

=================  =====================================================
parent -> worker   ``request`` (execute + publish), ``register_table``
                   (replica data update), ``ping``, ``stats``,
                   ``shutdown``
worker -> parent   ``result`` (with ``shm`` | ``payload`` | ``error``),
                   ``ack``, ``stats``, ``bye``
=================  =====================================================

Every reply carries the request ``id`` and the worker's id; the parent's
router thread correlates them. Worker-side exceptions never kill the
loop — they are encoded (type + message, plus the API error's wire dict
when available) and re-raised parent-side for the waiting future.
"""

from __future__ import annotations

import os
import queue
import signal
from dataclasses import dataclass

from repro.api.errors import ApiError
from repro.api.request import RecommendationRequest
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.table import Table
from repro.service.shm import SharedResultCache, encode_result
from repro.testing.faults import fault_point
from repro.util.deadline import CancelToken, Deadline
from repro.util.errors import QueryError


@dataclass
class BackendBootstrap:
    """Everything a worker needs to rebuild one backend as a replica.

    ``scheme`` is the pathless backend URI scheme (``memory`` / ``sqlite``
    / ``duckdb``): replicas always use private storage — a worker pointed
    at the parent's database *file* would fight it (and its sibling
    workers) for locks, so the data goes over as tables instead.
    """

    name: str
    scheme: str
    config: "SeeDBConfig | None"
    tables: "list[Table]"


def encode_error(exc: BaseException) -> dict:
    """An exception's wire form for the response queue."""
    payload = {"type": type(exc).__name__, "message": str(exc)}
    if isinstance(exc, ApiError):
        payload["api"] = exc.to_dict()
    return payload


def decode_error(payload: dict) -> Exception:
    """Rebuild a worker-side failure as a raisable parent-side error."""
    api = payload.get("api")
    if api is not None:
        return ApiError(
            api.get("message", "worker error"),
            code=api.get("code", "invalid_request"),
            field=api.get("field"),
        )
    exc_type = getattr(
        __import__("repro.util.errors", fromlist=["errors"]),
        payload.get("type", ""),
        None,
    )
    if isinstance(exc_type, type) and issubclass(exc_type, Exception):
        try:
            return exc_type(payload.get("message", "worker error"))
        except TypeError:
            pass
    return QueryError(
        f"worker execution failed: {payload.get('type', 'Exception')}: "
        f"{payload.get('message', '')}"
    )


class _WorkerSlots:
    """The worker-local replica set, keyed by service backend name."""

    def __init__(self, bootstraps: "list[BackendBootstrap]"):
        from repro.backends.registry import backend_from_uri

        self.facades: dict[str, SeeDB] = {}
        self.backends = {}
        for spec in bootstraps:
            backend = backend_from_uri(spec.scheme)
            for table in spec.tables:
                backend.register_table(table, replace=True)
            self.backends[spec.name] = backend
            self.facades[spec.name] = SeeDB(backend, spec.config)

    def register_table(self, name: str, table: Table) -> None:
        self.backends[name].register_table(table, replace=True)

    def close(self) -> None:
        for facade in self.facades.values():
            facade.close()
        for backend in self.backends.values():
            backend.close()

    def cache_stats(self) -> dict:
        out = {}
        for name, facade in self.facades.items():
            stats = facade.engine.cache.stats
            out[name] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "invalidations": stats.invalidations,
            }
        return out


def _handle_request(message: dict, slots: _WorkerSlots, cache: SharedResultCache):
    """Execute one request; returns the transport fields of the reply."""
    request = RecommendationRequest.from_dict(message["request"])
    resolved = request.resolve(message["config"])
    facade = slots.facades.get(message["backend"])
    if facade is None:
        raise ApiError(
            f"worker has no backend named {message['backend']!r}",
            code="unknown_backend",
            field="backend",
        )
    # The router ships the *remaining* deadline budget (queue wait and
    # transit already spent some); the worker enforces it exactly like the
    # in-process tier — cooperative checks at phase and query boundaries,
    # surfacing DeadlineExceeded through the error reply.
    deadline_ms = message.get("deadline_ms")
    token = (
        CancelToken(deadline=Deadline.from_ms(deadline_ms))
        if deadline_ms is not None
        else None
    )
    result = facade.run_resolved(resolved, cancel_token=token).to_result()
    digest, version = message["digest"], message["data_version"]
    if message.get("publish", True):
        name = cache.put(digest, version, result)
        if name is not None:
            return {"shm": name}
    # Result caching disabled (nothing may outlive this reply), or shared
    # memory unavailable/exhausted: ship the same pickle-free encoding
    # in-band instead.
    return {"payload": encode_result(result, digest=digest, data_version=version)}


def _send(outbox, message: dict) -> None:
    """Send on the worker's private reply pipe; tolerate a dead parent.

    The parent holds the only read end — if it crashed, ``send`` raises
    and there is nobody left to report to, so the error is swallowed and
    the idle-heartbeat reparenting check ends the loop shortly after.
    """
    try:
        outbox.send(message)
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        pass


def worker_main(
    worker_id: str,
    bootstraps: "list[BackendBootstrap]",
    shm_prefix: str,
    inbox,
    outbox,
) -> None:
    """Entry point of one worker process: serve the inbox until shutdown."""
    # The parent orchestrates shutdown (drain, then an explicit message);
    # a terminal Ctrl-C must not tear workers out from under in-flight
    # requests before the parent has drained them.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    # Imported here, not at module top: cluster.py imports worker_main, and
    # the worker only needs the timeout table once it is already running.
    from repro.service.cluster import ClusterTimeouts

    idle_poll_s = ClusterTimeouts.from_env().worker_idle_poll_s
    cache = SharedResultCache(shm_prefix)
    counters = {"executed": 0, "errors": 0, "tables_registered": 0}
    try:
        slots = _WorkerSlots(bootstraps)
    except BaseException as exc:  # noqa: BLE001 - reported, not raised
        _send(outbox, {"op": "bye", "worker": worker_id, "error": encode_error(exc)})
        return
    _send(outbox, {"op": "up", "worker": worker_id})
    parent = os.getppid()
    try:
        # seedb-lint: disable=cancellation -- exits via the shutdown op and the reparent heartbeat below; requests carry their own deadlines
        while True:
            try:
                message = inbox.get(timeout=idle_poll_s)
            except queue.Empty:
                # Idle heartbeat: if the parent died without draining us
                # (SIGKILL, crash before _shutdown_workers) we have been
                # reparented — exit instead of holding the inbox (and any
                # inherited pipes) open forever as an orphan.
                if os.getppid() != parent:
                    break
                continue
            op = message.get("op")
            if op == "shutdown":
                break
            reply = {
                "op": "result" if op == "request" else "ack",
                "id": message.get("id"),
                "worker": worker_id,
            }
            try:
                if op == "request":
                    # Chaos hook: lets the fault harness stall or kill the
                    # worker between dequeue and execution (the window the
                    # monitor's reassign logic exists for).
                    fault_point("worker.request")
                    reply.update(_handle_request(message, slots, cache))
                    counters["executed"] += 1
                elif op == "register_table":
                    slots.register_table(message["backend"], message["table"])
                    counters["tables_registered"] += 1
                elif op == "stats":
                    reply["op"] = "stats"
                    reply["stats"] = {
                        **counters,
                        "shm": cache.stats(),
                        "engine_cache": slots.cache_stats(),
                    }
                elif op == "ping":
                    pass  # the ack itself is the liveness signal
                else:
                    raise QueryError(f"unknown worker op {op!r}")
            except BaseException as exc:  # noqa: BLE001 - shipped to parent
                counters["errors"] += 1
                reply["error"] = encode_error(exc)
            _send(outbox, reply)
    finally:
        slots.close()
        _send(outbox, {"op": "bye", "worker": worker_id, "counters": counters})
