"""SQL parser for SeeDB's input-query subset.

The frontend lets analysts "directly fill in SQL into a text box" (§3.2).
The accepted subset matches the problem statement (§2): row selections over
one table — ``SELECT * FROM t [WHERE <predicate>]`` — plus, for
completeness and tests, aggregate view queries
(``SELECT a, f(m) FROM t [WHERE ...] GROUP BY a``). Hand-written lexer and
recursive-descent parser; no dependencies.
"""

from repro.sqlparser.lexer import Token, TokenType, tokenize
from repro.sqlparser.parser import parse_query, parse_row_select, parse_predicate

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "parse_query",
    "parse_row_select",
    "parse_predicate",
]
