"""SQL lexer: text → token stream.

Recognizes the token classes the SeeDB SQL subset needs: keywords (case
insensitive), identifiers (bare or double-quoted), string literals (single
quotes, '' escaping), numbers (int/float, scientific notation), operators,
and punctuation. Positions are tracked for error messages.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.util.errors import SqlSyntaxError

KEYWORDS = {
    "select",
    "from",
    "where",
    "group",
    "by",
    "and",
    "or",
    "not",
    "in",
    "between",
    "as",
    "null",
    "true",
    "false",
    "limit",
}

_OPERATOR_STARTS = "=!<>"
_PUNCTUATION = {",": "COMMA", "(": "LPAREN", ")": "RPAREN", "*": "STAR", ";": "SEMI"}


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    COMMA = "comma"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    SEMI = "semi"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: TokenType
    value: str
    position: int

    def matches_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into tokens (EOF token appended)."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "-" and text[index : index + 2] == "--":  # line comment
            newline = text.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType[_PUNCTUATION[char]], char, index))
            index += 1
            continue
        if char in _OPERATOR_STARTS:
            operator, index = _lex_operator(text, index)
            tokens.append(Token(TokenType.OPERATOR, operator, index - len(operator)))
            continue
        if char == "'":
            value, index = _lex_string(text, index)
            tokens.append(Token(TokenType.STRING, value, index))
            continue
        if char == '"':
            value, index = _lex_quoted_identifier(text, index)
            tokens.append(Token(TokenType.IDENTIFIER, value, index))
            continue
        if char.isdigit() or (
            char in "+-." and index + 1 < length and text[index + 1].isdigit()
        ):
            value, index = _lex_number(text, index)
            tokens.append(Token(TokenType.NUMBER, value, index))
            continue
        if char.isalpha() or char == "_":
            value, index = _lex_word(text, index)
            lowered = value.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, lowered, index - len(value)))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, value, index - len(value)))
            continue
        raise SqlSyntaxError(f"unexpected character {char!r}", position=index)
    tokens.append(Token(TokenType.EOF, "", length))
    return tokens


def _lex_operator(text: str, index: int) -> tuple[str, int]:
    two = text[index : index + 2]
    if two in ("<=", ">=", "!=", "<>"):
        return ("!=" if two == "<>" else two), index + 2
    one = text[index]
    if one in "=<>":
        return one, index + 1
    raise SqlSyntaxError(f"unexpected operator start {one!r}", position=index)


def _lex_string(text: str, index: int) -> tuple[str, int]:
    start = index
    index += 1  # opening quote
    parts: list[str] = []
    while index < len(text):
        char = text[index]
        if char == "'":
            if text[index : index + 2] == "''":  # escaped quote
                parts.append("'")
                index += 2
                continue
            return "".join(parts), index + 1
        parts.append(char)
        index += 1
    raise SqlSyntaxError("unterminated string literal", position=start)


def _lex_quoted_identifier(text: str, index: int) -> tuple[str, int]:
    start = index
    index += 1
    parts: list[str] = []
    while index < len(text):
        char = text[index]
        if char == '"':
            if text[index : index + 2] == '""':
                parts.append('"')
                index += 2
                continue
            return "".join(parts), index + 1
        parts.append(char)
        index += 1
    raise SqlSyntaxError("unterminated quoted identifier", position=start)


def _lex_number(text: str, index: int) -> tuple[str, int]:
    start = index
    if text[index] in "+-":
        index += 1
    seen_dot = seen_exponent = False
    while index < len(text):
        char = text[index]
        if char.isdigit():
            index += 1
        elif char == "." and not seen_dot and not seen_exponent:
            seen_dot = True
            index += 1
        elif char in "eE" and not seen_exponent and index > start:
            seen_exponent = True
            index += 1
            if index < len(text) and text[index] in "+-":
                index += 1
        else:
            break
    return text[start:index], index


def _lex_word(text: str, index: int) -> tuple[str, int]:
    start = index
    while index < len(text) and (text[index].isalnum() or text[index] == "_"):
        index += 1
    return text[start:index], index
