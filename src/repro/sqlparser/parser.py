"""Recursive-descent parser for the SeeDB SQL subset.

Grammar (keywords case-insensitive)::

    query       := select_star | select_aggregate
    select_star := SELECT '*' FROM identifier [WHERE predicate] [';']
    select_aggregate
                := SELECT identifier (',' agg_item)+ FROM identifier
                   [WHERE predicate] GROUP BY identifier [';']
    agg_item    := func '(' (identifier | '*') ')'
    predicate   := or_expr
    or_expr     := and_expr (OR and_expr)*
    and_expr    := unary (AND unary)*
    unary       := NOT unary | '(' predicate ')' | condition
    condition   := identifier (op literal | IN '(' literals ')'
                   | [NOT] BETWEEN literal AND literal)

Produces the same logical query objects the rest of the system uses, so a
parsed query is indistinguishable from one built with the fluent API.
"""

from __future__ import annotations

from datetime import datetime
from typing import Any, Union

from repro.db.aggregates import Aggregate
from repro.db.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Expression,
    In,
    Literal,
    Not,
    Or,
)
from repro.db.query import AggregateQuery, RowSelectQuery
from repro.sqlparser.lexer import Token, TokenType, tokenize
from repro.util.errors import SqlSyntaxError

ParsedQuery = Union[RowSelectQuery, AggregateQuery]


def parse_query(sql: str) -> ParsedQuery:
    """Parse either query shape of the supported subset."""
    return _Parser(sql).parse_query()


def parse_row_select(sql: str) -> RowSelectQuery:
    """Parse an analyst input query; rejects aggregate queries."""
    parsed = parse_query(sql)
    if not isinstance(parsed, RowSelectQuery):
        raise SqlSyntaxError(
            "expected a row-selection query (SELECT * FROM ...); "
            "got an aggregate query"
        )
    return parsed


def parse_predicate(text: str) -> Expression:
    """Parse a bare predicate (the WHERE-clause fragment)."""
    parser = _Parser(text)
    predicate = parser._parse_predicate()
    parser._expect_end()
    return predicate


class _Parser:
    def __init__(self, sql: str):
        self._tokens = tokenize(sql)
        self._index = 0

    # -- token helpers ---------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.matches_keyword(word):
            raise SqlSyntaxError(
                f"expected {word.upper()!r}, got {token.value!r}",
                position=token.position,
            )
        return token

    def _expect_type(self, token_type: TokenType, what: str) -> Token:
        token = self._advance()
        if token.type is not token_type:
            raise SqlSyntaxError(
                f"expected {what}, got {token.value!r}", position=token.position
            )
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().matches_keyword(word):
            self._advance()
            return True
        return False

    def _expect_end(self) -> None:
        if self._peek().type is TokenType.SEMI:
            self._advance()
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise SqlSyntaxError(
                f"unexpected trailing input {token.value!r}", position=token.position
            )

    # -- grammar ------------------------------------------------------------

    def parse_query(self) -> ParsedQuery:
        self._expect_keyword("select")
        if self._peek().type is TokenType.STAR:
            self._advance()
            return self._parse_select_star_tail()
        return self._parse_aggregate_tail()

    def _parse_select_star_tail(self) -> RowSelectQuery:
        self._expect_keyword("from")
        table = self._expect_type(TokenType.IDENTIFIER, "a table name").value
        predicate = None
        if self._accept_keyword("where"):
            predicate = self._parse_predicate()
        limit = None
        if self._accept_keyword("limit"):
            token = self._expect_type(TokenType.NUMBER, "a row count")
            try:
                limit = int(token.value)
            except ValueError:
                raise SqlSyntaxError(
                    f"LIMIT needs an integer, got {token.value!r}",
                    position=token.position,
                ) from None
            if limit < 0:
                raise SqlSyntaxError(
                    f"LIMIT must be non-negative, got {limit}",
                    position=token.position,
                )
        self._expect_end()
        return RowSelectQuery(table=table, predicate=predicate, limit=limit)

    def _parse_aggregate_tail(self) -> AggregateQuery:
        group_column = self._expect_type(TokenType.IDENTIFIER, "a group-by column").value
        aggregates: list[Aggregate] = []
        while self._peek().type is TokenType.COMMA:
            self._advance()
            aggregates.append(self._parse_aggregate_item())
        if not aggregates:
            raise SqlSyntaxError(
                "aggregate query needs at least one aggregate after the "
                "group-by column", position=self._peek().position
            )
        self._expect_keyword("from")
        table = self._expect_type(TokenType.IDENTIFIER, "a table name").value
        predicate = None
        if self._accept_keyword("where"):
            predicate = self._parse_predicate()
        self._expect_keyword("group")
        self._expect_keyword("by")
        grouped = self._expect_type(TokenType.IDENTIFIER, "the group-by column").value
        if grouped != group_column:
            raise SqlSyntaxError(
                f"GROUP BY column {grouped!r} must match the selected "
                f"column {group_column!r}"
            )
        self._expect_end()
        return AggregateQuery(
            table=table,
            group_by=(group_column,),
            aggregates=tuple(aggregates),
            predicate=predicate,
        )

    def _parse_aggregate_item(self) -> Aggregate:
        func_token = self._expect_type(TokenType.IDENTIFIER, "an aggregate function")
        func = func_token.value.lower()
        self._expect_type(TokenType.LPAREN, "'('")
        if self._peek().type is TokenType.STAR:
            self._advance()
            column = None
        else:
            column = self._expect_type(TokenType.IDENTIFIER, "a column name").value
        self._expect_type(TokenType.RPAREN, "')'")
        alias = ""
        if self._accept_keyword("as"):
            alias = self._expect_type(TokenType.IDENTIFIER, "an alias").value
        return Aggregate(func, column, alias)

    # -- predicates ---------------------------------------------------------

    def _parse_predicate(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        operands = [self._parse_and()]
        while self._accept_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return operands[0]
        return Or(tuple(operands))

    def _parse_and(self) -> Expression:
        operands = [self._parse_unary()]
        while self._accept_keyword("and"):
            operands.append(self._parse_unary())
        if len(operands) == 1:
            return operands[0]
        return And(tuple(operands))

    def _parse_unary(self) -> Expression:
        if self._accept_keyword("not"):
            return Not(self._parse_unary())
        if self._peek().type is TokenType.LPAREN:
            self._advance()
            inner = self._parse_predicate()
            self._expect_type(TokenType.RPAREN, "')'")
            return inner
        return self._parse_condition()

    def _parse_condition(self) -> Expression:
        column_token = self._expect_type(TokenType.IDENTIFIER, "a column name")
        column = ColumnRef(column_token.value)
        token = self._peek()
        if token.type is TokenType.OPERATOR:
            operator = self._advance().value
            value = self._parse_literal()
            op = "=" if operator == "==" else operator
            return Comparison(op, column, Literal(value))
        if token.matches_keyword("in"):
            self._advance()
            self._expect_type(TokenType.LPAREN, "'('")
            values = [self._parse_literal()]
            while self._peek().type is TokenType.COMMA:
                self._advance()
                values.append(self._parse_literal())
            self._expect_type(TokenType.RPAREN, "')'")
            return In(column, tuple(values))
        if token.matches_keyword("not"):
            self._advance()
            self._expect_keyword("between")
            low = self._parse_literal()
            self._expect_keyword("and")
            high = self._parse_literal()
            return Not(Between(column, low, high))
        if token.matches_keyword("between"):
            self._advance()
            low = self._parse_literal()
            self._expect_keyword("and")
            high = self._parse_literal()
            return Between(column, low, high)
        raise SqlSyntaxError(
            f"expected a comparison after column {column.name!r}, "
            f"got {token.value!r}",
            position=token.position,
        )

    def _parse_literal(self) -> Any:
        token = self._advance()
        if token.type is TokenType.NUMBER:
            text = token.value
            if any(c in text for c in ".eE"):
                return float(text)
            return int(text)
        if token.type is TokenType.STRING:
            return _maybe_date(token.value)
        if token.matches_keyword("true"):
            return True
        if token.matches_keyword("false"):
            return False
        if token.matches_keyword("null"):
            return None
        raise SqlSyntaxError(
            f"expected a literal, got {token.value!r}", position=token.position
        )


def _maybe_date(text: str) -> Any:
    """Interpret ISO-date strings as dates so date columns compare correctly."""
    if len(text) == 10 and text[4] == "-" and text[7] == "-":
        try:
            return datetime.strptime(text, "%Y-%m-%d").date()
        except ValueError:
            return text
    return text
