"""Test-support machinery shipped with the library.

:mod:`repro.testing.faults` is the fault-injection layer the chaos suite
drives; production code calls its (near-no-op) hooks at the seams where
real systems fail.
"""

from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    fault_point,
    install_injector,
    uninstall_injector,
)

__all__ = [
    "FaultInjector",
    "FaultSpec",
    "fault_point",
    "install_injector",
    "uninstall_injector",
]
