"""Deterministic fault injection for the chaos suite.

Production code marks its failure seams with :func:`fault_point` calls —
backend query execution, worker request handling, shared-memory publishes,
dispatch queues. With no injector installed (the default, always in
production) a fault point is one global read and a ``None`` check.

Tests install a :class:`FaultInjector` built from :class:`FaultSpec`
schedules. Injection is *seeded and deterministic*: each (point, spec)
pair draws from its own ``random.Random`` stream keyed on
``(seed, point, action)``, so a schedule replays identically regardless of
which other points fire around it. Cluster workers inherit the installed
injector through ``fork`` — install before ``ClusterService.start()``.

Actions:

``stall``  sleep ``delay_s`` then continue (slow query / slow worker).
``hang``   sleep ``delay_s`` (choose it far beyond any deadline) — models
           a wedged dependency; only deadlines get the caller out.
``error``  raise ``error_type`` (default :class:`FaultInjected`).
``die``    ``os._exit(86)`` — models a worker process crash. Never fires
           in the parent service process unless you install it there.
``tear``   no side effect here; the *call site* asks via the returned
           action set and simulates the failure itself (e.g. a
           shared-memory segment published without its commit magic).
"""

from __future__ import annotations

import os
import random
import threading
import time
from dataclasses import dataclass, field

from repro.util.errors import ReproError

__all__ = [
    "FaultInjected",
    "FaultInjector",
    "FaultSpec",
    "fault_point",
    "install_injector",
    "uninstall_injector",
]


class FaultInjected(ReproError):
    """The error raised by ``action="error"`` fault specs."""


@dataclass
class FaultSpec:
    """One fault schedule entry.

    ``probability`` is evaluated per hit on the spec's own seeded stream;
    ``limit`` caps how many times the spec fires (None = unlimited);
    ``after`` skips the first N hits before the spec becomes eligible
    (fire on the Nth+1 hit onward) — the lever for "die on the second
    request" schedules.
    """

    point: str
    action: str  # stall | hang | error | die | tear
    probability: float = 1.0
    delay_s: float = 0.05
    limit: "int | None" = None
    after: int = 0
    error_type: type = FaultInjected
    #: mutable firing state (managed by the injector)
    hits: int = field(default=0, compare=False)
    fired: int = field(default=0, compare=False)


class FaultInjector:
    """Evaluates fault specs at fault points, deterministically."""

    def __init__(self, specs: "list[FaultSpec]", seed: int = 0):
        self.seed = seed
        self._lock = threading.Lock()
        self._specs: dict[str, list[FaultSpec]] = {}
        self._rngs: dict[int, random.Random] = {}
        for spec in specs:
            self._specs.setdefault(spec.point, []).append(spec)
            self._rngs[id(spec)] = random.Random(
                f"{seed}:{spec.point}:{spec.action}"
            )

    def fired(self, point: "str | None" = None) -> int:
        """How many times specs at ``point`` (or anywhere) have fired."""
        with self._lock:
            specs = (
                self._specs.get(point, [])
                if point is not None
                else [s for group in self._specs.values() for s in group]
            )
            return sum(spec.fired for spec in specs)

    def evaluate(self, point: str) -> "set[str]":
        """Decide which actions fire at ``point`` and apply side effects.

        Returns the actions that fired; behavior-flip actions (``tear``)
        carry no side effect here — the call site inspects the set.
        """
        actions: "set[str]" = set()
        to_apply: "list[FaultSpec]" = []
        with self._lock:
            for spec in self._specs.get(point, ()):
                spec.hits += 1
                if spec.hits <= spec.after:
                    continue
                if spec.limit is not None and spec.fired >= spec.limit:
                    continue
                if self._rngs[id(spec)].random() >= spec.probability:
                    continue
                spec.fired += 1
                actions.add(spec.action)
                to_apply.append(spec)
        for spec in to_apply:
            self._apply(spec)
        return actions

    @staticmethod
    def _apply(spec: FaultSpec) -> None:
        if spec.action in ("stall", "hang"):
            time.sleep(spec.delay_s)
        elif spec.action == "error":
            raise spec.error_type(
                f"injected fault at {spec.point!r}"
            )
        elif spec.action == "die":
            os._exit(86)


#: The process-wide injector; ``None`` means every fault point is a no-op.
_INJECTOR: "FaultInjector | None" = None


def install_injector(injector: FaultInjector) -> FaultInjector:
    """Install ``injector`` process-wide (workers inherit it via fork)."""
    global _INJECTOR
    _INJECTOR = injector
    return injector


def uninstall_injector() -> None:
    global _INJECTOR
    _INJECTOR = None


def fault_point(point: str) -> "set[str]":
    """Evaluate ``point`` against the installed injector, if any.

    The production fast path is one module-global read. Returns the set
    of actions that fired so behavior-flip call sites (``tear``) can ask
    ``"tear" in fault_point("shm.put")``.
    """
    injector = _INJECTOR
    if injector is None:
        return _NO_ACTIONS
    return injector.evaluate(point)


_NO_ACTIONS: "frozenset[str]" = frozenset()
