"""tsan-lite lock-order sanitizer: catch inversions the static pass can't.

The static ``lock-order`` checker proves properties about lock *names* it
can resolve; dynamic acquisition through callbacks, dependency injection,
or data-driven dispatch is invisible to it. This module closes that gap
at test time: with ``SEEDB_SANITIZE=1`` in the environment the test
suite's conftest calls :func:`install`, which monkeypatches
``threading.Lock`` / ``threading.RLock`` with thin proxies that

* identify each lock by its **creation site** (the first stack frame
  outside ``threading.py`` and this module when the lock was made), so
  every ``SessionCache._lock`` across all instances is one node;
* keep a per-thread stack of currently-held locks;
* record every *site A held while acquiring site B* edge in a global
  order graph, and **raise** :class:`LockOrderViolation` the moment an
  acquisition would close a cycle — i.e. the suite has now observed both
  ``A → B`` and ``B → A``, a latent deadlock, even though this particular
  interleaving did not hang.

Same-site edges (two instances created on one line, e.g. per-session
locks in a registry loop) are ignored — ordering within a site class is
instance-dependent and the repo orders those by construction. Locks
created inside the stdlib or site-packages are not tracked at all; the
sanitizer watches repo code only.

Tests can use :func:`tracked_lock` / :func:`tracked_rlock` to build
scenario fixtures without installing the global patch, and
:func:`fresh_state` to isolate one scenario's order graph from another's.
"""

from __future__ import annotations

import _thread
import os
import threading
import traceback

_THIS_FILE = os.path.normcase(os.path.abspath(__file__))

__all__ = [
    "LockOrderViolation",
    "LockOrderSanitizer",
    "install",
    "uninstall",
    "enabled_by_env",
    "tracked_lock",
    "tracked_rlock",
    "fresh_state",
    "current_state",
]

ENV_FLAG = "SEEDB_SANITIZE"

class LockOrderViolation(RuntimeError):
    """Two lock sites were observed acquiring in both orders."""


def _opaque(filename: str) -> bool:
    """Frames that never identify a lock's creation site: this module,
    the stdlib, and third-party packages."""
    norm = os.path.normcase(os.path.abspath(filename))
    if norm == _THIS_FILE or norm.endswith(os.sep + "threading.py"):
        return True
    if "site-packages" in norm or "dist-packages" in norm:
        return True
    return (os.sep + "lib" + os.sep + "python") in norm


def _creation_site() -> str:
    """``file:line`` of the first caller frame in repo code."""
    for frame in reversed(traceback.extract_stack()):
        if _opaque(frame.filename):
            continue
        return f"{frame.filename}:{frame.lineno}"
    return "<unknown>"


class LockOrderSanitizer:
    """The global order graph plus per-thread held-lock stacks."""

    def __init__(self) -> None:
        # A raw, untracked lock: the sanitizer must never feed edges into
        # the graph it is checking (or recurse through its own proxies).
        self._graph_lock = _thread.allocate_lock()
        #: site -> set of sites observed acquired *after* it (edges).
        self._after: "dict[str, set]" = {}
        #: (held, acquired) -> example stacks, for the error message.
        self._evidence: "dict[tuple, str]" = {}
        self._local = threading.local()
        #: Inversions detected (monotonic; survives the raise for tests).
        self.violations = 0

    # -- per-thread held stack -------------------------------------------

    def _held(self) -> list:
        stack = getattr(self._local, "held", None)
        if stack is None:
            stack = []
            self._local.held = stack
        return stack

    # -- event hooks (called by the proxies) ------------------------------

    def note_acquired(self, site: str) -> None:
        held = self._held()
        for previous in held:
            if previous != site:
                self._record_edge(previous, site)
        held.append(site)

    def note_released(self, site: str) -> None:
        held = self._held()
        # Release order need not be LIFO (lock A, lock B, release A):
        # drop the innermost matching entry.
        for index in range(len(held) - 1, -1, -1):
            if held[index] == site:
                del held[index]
                return

    def _record_edge(self, held_site: str, acquired_site: str) -> None:
        where = "".join(traceback.format_stack(limit=12)[:-3])
        with self._graph_lock:
            edges = self._after.setdefault(held_site, set())
            new_edge = acquired_site not in edges
            edges.add(acquired_site)
            if new_edge:
                self._evidence[(held_site, acquired_site)] = where
            cycle = self._find_cycle(acquired_site, held_site)
            if cycle is None:
                return
            self.violations += 1
            forward = self._evidence.get((held_site, acquired_site), "")
            back = self._evidence.get((cycle[0], cycle[1]), "")
        chain = " -> ".join([held_site, acquired_site, *cycle[1:]])
        raise LockOrderViolation(
            f"lock-order inversion: acquiring {acquired_site} while "
            f"holding {held_site} closes the cycle {chain}\n"
            f"--- this acquisition ---\n{forward}"
            f"--- prior opposite-order acquisition ---\n{back}"
        )

    def _find_cycle(self, start: str, goal: str) -> "list | None":
        """DFS ``start -> ... -> goal`` through recorded edges.

        Caller holds the graph lock.
        """
        stack = [(start, [start])]
        seen = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for nxt in self._after.get(node, ()):
                stack.append((nxt, path + [nxt]))
        return None


_state = LockOrderSanitizer()
_real_lock = threading.Lock
_real_rlock = threading.RLock
_installed = False


def fresh_state() -> LockOrderSanitizer:
    """Swap in an empty order graph (test isolation); returns the new one."""
    global _state
    _state = LockOrderSanitizer()
    return _state


def current_state() -> LockOrderSanitizer:
    return _state


class _TrackedLockBase:
    """Shared proxy behavior over a real lock primitive.

    Tracking is decided at creation time: locks born in stdlib or
    third-party code pass straight through (``_site`` is None).
    """

    _factory = staticmethod(_real_lock)

    def __init__(self) -> None:
        self._inner = self._factory()
        site = _creation_site()
        self._site = None if site == "<unknown>" else site

    def acquire(self, blocking: bool = True, timeout: float = -1):
        acquired = self._inner.acquire(blocking, timeout)
        if acquired and self._site is not None:
            _state.note_acquired(self._site)
        return acquired

    def release(self) -> None:
        if self._site is not None:
            _state.note_released(self._site)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<tracked {self._inner!r} from {self._site}>"


class _TrackedLock(_TrackedLockBase):
    _factory = staticmethod(_real_lock)


class _TrackedRLock(_TrackedLockBase):
    _factory = staticmethod(_real_rlock)

    # Reentrant acquisitions still push/pop the held stack symmetrically,
    # so nested with-blocks on one RLock stay balanced and produce no
    # self-edges (note_acquired skips previous == site).

    # Condition-variable integration: threading.Condition calls these on
    # the lock it wraps. Delegate to the inner primitive, keeping the
    # held-stack consistent across a wait()'s release/reacquire.
    def _release_save(self):
        if self._site is not None:
            # wait() releases *all* recursion levels; drop every entry
            # for this site so the held stack mirrors reality.
            held = _state._held()
            self._pending = sum(1 for entry in held if entry == self._site)
            for _ in range(self._pending):
                _state.note_released(self._site)
        return self._inner._release_save()

    def _acquire_restore(self, state) -> None:
        self._inner._acquire_restore(state)
        if self._site is not None:
            for _ in range(getattr(self, "_pending", 1)):
                _state.note_acquired(self._site)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


def tracked_lock() -> _TrackedLock:
    """A tracked non-reentrant lock (for scenario tests)."""
    return _TrackedLock()


def tracked_rlock() -> _TrackedRLock:
    """A tracked reentrant lock (for scenario tests)."""
    return _TrackedRLock()


def enabled_by_env(env=None) -> bool:
    value = (os.environ if env is None else env).get(ENV_FLAG, "")
    return value.strip().lower() in {"1", "true", "yes", "on"}


def install() -> None:
    """Monkeypatch ``threading.Lock``/``RLock`` with tracked proxies.

    Locks created *before* install (stdlib singletons, import-time
    registries) keep their real type and stay invisible — which is the
    point: the sanitizer watches locks the code under test creates.
    """
    global _installed
    if _installed:
        return
    threading.Lock = _TrackedLock  # type: ignore[misc, assignment]
    threading.RLock = _TrackedRLock  # type: ignore[misc, assignment]
    _installed = True


def uninstall() -> None:
    global _installed
    if not _installed:
        return
    threading.Lock = _real_lock  # type: ignore[misc]
    threading.RLock = _real_rlock  # type: ignore[misc]
    _installed = False
