"""Shared utilities: error types, deterministic RNG, timing, text tables."""

from repro.util.errors import (
    ReproError,
    SchemaError,
    QueryError,
    BackendError,
    MetricError,
    ConfigError,
)
from repro.util.rng import derive_rng, spawn_seeds
from repro.util.timing import Stopwatch, Timer, format_duration
from repro.util.tabulate import format_table

__all__ = [
    "ReproError",
    "SchemaError",
    "QueryError",
    "BackendError",
    "MetricError",
    "ConfigError",
    "derive_rng",
    "spawn_seeds",
    "Stopwatch",
    "Timer",
    "format_duration",
    "format_table",
]
