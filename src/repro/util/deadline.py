"""Deadlines and cooperative cancellation for the request lifecycle.

A :class:`Deadline` is an absolute point on the monotonic clock; a
:class:`CancelToken` couples an optional deadline with an explicit cancel
signal and is threaded through the execution stack (service admission →
engine phases → backend queries). Work checks the token at natural
boundaries — phase transitions, incremental rounds, per-query — and raises
the appropriate typed :class:`~repro.util.errors.ServiceError` when the
budget is gone.

Backends sit several layers below the planner and must not grow token
parameters through every signature, so the module also provides a
thread-local *cancel scope*: the engine installs the active token with
:func:`cancel_scope` and backends consult :func:`current_token` /
:func:`check_current` without any plumbing. Scopes are per-thread; work
handed to helper threads (the parallel executor) is still bounded by the
phase-boundary and round-boundary checks on the coordinating thread.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.util.errors import Cancelled, ConfigError, DeadlineExceeded

__all__ = [
    "CancelToken",
    "Deadline",
    "cancel_scope",
    "check_current",
    "current_token",
]


class Deadline:
    """An absolute expiry instant on the monotonic clock."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(time.monotonic() + float(seconds))

    @classmethod
    def from_ms(cls, deadline_ms: "float | None") -> "Optional[Deadline]":
        """A deadline ``deadline_ms`` from now, or None when unset."""
        if deadline_ms is None:
            return None
        ms = float(deadline_ms)
        if ms <= 0:
            raise ConfigError(f"deadline_ms must be positive, got {deadline_ms!r}")
        return cls.after(ms / 1000.0)

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - time.monotonic()

    def remaining_ms(self) -> float:
        return self.remaining() * 1000.0

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


class CancelToken:
    """Explicit-cancel signal plus an optional deadline, checked cooperatively.

    ``cancel()`` is idempotent and thread-safe; callbacks registered with
    :meth:`on_cancel` run exactly once, on the cancelling thread (used
    e.g. to ``interrupt()`` a DuckDB connection). Deadline expiry is
    *polled* — :meth:`check` / :meth:`should_stop` compute it on demand —
    so no timer thread exists per request.
    """

    def __init__(self, deadline: "Deadline | None" = None):
        self.deadline = deadline
        self._lock = threading.Lock()
        self._cancelled = False
        self._reason = ""
        self._callbacks: "list[Callable[[], None]]" = []

    @property
    def cancelled(self) -> bool:
        """True only on explicit :meth:`cancel` — not on deadline expiry."""
        return self._cancelled

    def expired(self) -> bool:
        return self.deadline is not None and self.deadline.expired()

    def should_stop(self) -> bool:
        """Cheap predicate for hot loops (e.g. SQLite progress handler)."""
        return self._cancelled or self.expired()

    def cancel(self, reason: str = "request cancelled") -> None:
        with self._lock:
            if self._cancelled:
                return
            self._cancelled = True
            self._reason = reason
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback()
            except Exception:
                pass

    def on_cancel(self, callback: Callable[[], None]) -> Callable[[], None]:
        """Register ``callback`` to run on cancel; returns an unregister fn.

        If the token is already cancelled the callback fires immediately.
        """
        with self._lock:
            if not self._cancelled:
                self._callbacks.append(callback)

                def _unregister() -> None:
                    with self._lock:
                        try:
                            self._callbacks.remove(callback)
                        except ValueError:
                            pass

                return _unregister
        callback()
        return lambda: None

    def error(self) -> "Exception | None":
        """The typed error this token currently implies, or None."""
        if self._cancelled:
            return Cancelled(self._reason or "request cancelled")
        if self.expired():
            return DeadlineExceeded("deadline_ms budget exhausted")
        return None

    def check(self) -> None:
        """Raise ``Cancelled`` / ``DeadlineExceeded`` if the token stopped."""
        error = self.error()
        if error is not None:
            raise error

    def check_cancel(self) -> None:
        """Raise only on explicit cancel — lets deadline-partial work finish."""
        if self._cancelled:
            raise Cancelled(self._reason or "request cancelled")

    def remaining(self) -> "float | None":
        """Seconds of deadline budget left, or None when no deadline."""
        if self.deadline is None:
            return None
        return self.deadline.remaining()

    def remaining_ms(self) -> "float | None":
        remaining = self.remaining()
        return None if remaining is None else remaining * 1000.0


_SCOPE = threading.local()


def current_token() -> "CancelToken | None":
    """The cancel token installed for the calling thread, if any."""
    return getattr(_SCOPE, "token", None)


class cancel_scope:
    """Install ``token`` as the calling thread's current cancel token.

    ``with cancel_scope(token): ...`` — a ``None`` token is a no-op scope,
    so call sites need no conditional. Scopes nest; the previous token is
    restored on exit.
    """

    def __init__(self, token: "CancelToken | None"):
        self._token = token
        self._previous: "CancelToken | None" = None

    def __enter__(self) -> "CancelToken | None":
        self._previous = getattr(_SCOPE, "token", None)
        if self._token is not None:
            _SCOPE.token = self._token
        return self._token

    def __exit__(self, *exc_info) -> None:
        if self._token is not None:
            _SCOPE.token = self._previous


def check_current() -> None:
    """Raise if the calling thread's current cancel token has stopped."""
    token = current_token()
    if token is not None:
        token.check()
