"""Exception hierarchy for the SeeDB reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table schema is malformed or an attribute reference is invalid."""


class QueryError(ReproError):
    """A logical query is malformed or cannot be executed."""


class SqlSyntaxError(QueryError):
    """The SQL text handed to the parser is not in the supported subset.

    Carries the offending position so frontends can point at the error.
    """

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class BackendError(ReproError):
    """The underlying DBMS backend failed or lacks a required capability."""


class MetricError(ReproError):
    """A distance metric was misused (e.g. mismatched distributions)."""


class ConfigError(ReproError):
    """A SeeDB configuration value is out of its legal range."""


class PruningError(ReproError):
    """A pruning rule was configured with invalid thresholds."""


class SamplingError(ReproError):
    """A sampler was configured with an invalid rate or size."""


class ServiceError(ReproError):
    """Base class for request-lifecycle failures in the serving tier.

    Each subclass carries a stable machine-readable ``code`` and the HTTP
    status the frontend maps it to. Instances survive the cluster reply
    pipes: workers encode ``type(exc).__name__`` and the router's
    ``decode_error`` re-resolves the class by name from this module.
    """

    code = "service_error"
    http_status = 500
    retry_after: "float | None" = None


class DeadlineExceeded(ServiceError):
    """The request's ``deadline_ms`` budget expired before completion."""

    code = "deadline_exceeded"
    http_status = 504


class Overloaded(ServiceError):
    """Admission control shed the request; retry after ``retry_after``."""

    code = "overloaded"
    http_status = 429

    def __init__(self, message: str = "service overloaded", retry_after: "float | None" = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class Cancelled(ServiceError):
    """The request was cancelled (client disconnect or explicit cancel)."""

    code = "cancelled"
    http_status = 503


class WorkerLost(ServiceError):
    """Every dispatch attempt for the request died with its worker."""

    code = "worker_lost"
    http_status = 503
