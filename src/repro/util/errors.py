"""Exception hierarchy for the SeeDB reproduction.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A table schema is malformed or an attribute reference is invalid."""


class QueryError(ReproError):
    """A logical query is malformed or cannot be executed."""


class SqlSyntaxError(QueryError):
    """The SQL text handed to the parser is not in the supported subset.

    Carries the offending position so frontends can point at the error.
    """

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class BackendError(ReproError):
    """The underlying DBMS backend failed or lacks a required capability."""


class MetricError(ReproError):
    """A distance metric was misused (e.g. mismatched distributions)."""


class ConfigError(ReproError):
    """A SeeDB configuration value is out of its legal range."""


class PruningError(ReproError):
    """A pruning rule was configured with invalid thresholds."""


class SamplingError(ReproError):
    """A sampler was configured with an invalid rate or size."""
