"""Deterministic random-number helpers.

All stochastic components (dataset generators, samplers, experiment sweeps)
accept either an integer seed or a ready ``numpy.random.Generator``. These
helpers centralise that convention so every module resolves seeds the same
way, and so independent subsystems can derive non-overlapping streams from a
single experiment seed.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def derive_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``seed``.

    ``None`` yields a fresh nondeterministic generator; an ``int`` yields a
    deterministic one; an existing generator is passed through unchanged so
    callers can thread one stream through nested calls.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Derive ``count`` independent child seeds from a master ``seed``.

    Uses ``numpy``'s ``SeedSequence`` spawning so child streams are
    statistically independent — important when e.g. each synthetic column
    gets its own stream but the whole dataset must be reproducible.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    sequence = np.random.SeedSequence(seed)
    return [int(child.generate_state(1)[0]) for child in sequence.spawn(count)]
