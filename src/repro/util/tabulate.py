"""Minimal plain-text table formatter (no external dependency).

Used by the experiment harness and benchmark scripts to print the rows the
paper's demo scenarios report. Handles alignment by column type: numbers are
right-aligned, everything else left-aligned.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence


def _render_cell(value: Any, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    rows: Iterable[Sequence[Any]],
    headers: Sequence[str] | None = None,
    float_format: str = ".4g",
) -> str:
    """Format ``rows`` (sequences of cells) into an aligned text table.

    >>> print(format_table([["a", 1.0]], headers=["name", "value"]))
    name  value
    ----  -----
    a         1
    """
    materialized = [list(row) for row in rows]
    if headers is not None:
        n_columns = len(headers)
    elif materialized:
        n_columns = len(materialized[0])
    else:
        return "(empty table)"
    for row in materialized:
        if len(row) != n_columns:
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {n_columns}"
            )

    rendered = [[_render_cell(cell, float_format) for cell in row] for row in materialized]
    numeric = [
        all(
            isinstance(row[i], (int, float)) and not isinstance(row[i], bool)
            for row in materialized
        )
        and bool(materialized)
        for i in range(n_columns)
    ]

    header_cells = [str(h) for h in headers] if headers is not None else []
    widths = [
        max(
            ([len(header_cells[i])] if headers is not None else [])
            + [len(row[i]) for row in rendered]
            + [1]
        )
        for i in range(n_columns)
    ]

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if numeric[i]:
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if headers is not None:
        lines.append(render_row(header_cells))
        lines.append(render_row(["-" * w for w in widths]))
    lines.extend(render_row(row) for row in rendered)
    return "\n".join(lines)
