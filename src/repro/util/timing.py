"""Wall-clock timing utilities used by the optimizer and experiment harness.

SeeDB's evaluation is largely about *latency* (demo Scenario 2), so timing
is a first-class concern: the recommender reports a per-phase breakdown and
the benchmarks aggregate repeated measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


def format_duration(seconds: float) -> str:
    """Render a duration in the most readable unit (ns/µs/ms/s)."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.1f}µs"
    return f"{seconds * 1e9:.0f}ns"


class Timer:
    """Context manager measuring one wall-clock interval.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start

    def __repr__(self) -> str:
        return f"Timer(elapsed={format_duration(self.elapsed)})"


@dataclass
class Stopwatch:
    """Accumulates named timing phases (e.g. prune/execute/score/select).

    The SeeDB recommender threads one stopwatch through its pipeline and
    returns it with the recommendations so callers can see where time went.
    """

    phases: dict[str, float] = field(default_factory=dict)

    def time(self, phase: str) -> "_PhaseContext":
        """Return a context manager that adds its interval to ``phase``."""
        return _PhaseContext(self, phase)

    def add(self, phase: str, seconds: float) -> None:
        """Accumulate ``seconds`` into ``phase``."""
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    @property
    def total(self) -> float:
        """Sum of all recorded phases."""
        return sum(self.phases.values())

    def breakdown(self) -> str:
        """Human-readable one-line-per-phase report, longest first."""
        if not self.phases:
            return "(no phases recorded)"
        width = max(len(name) for name in self.phases)
        lines = [
            f"{name.ljust(width)}  {format_duration(elapsed)}"
            for name, elapsed in sorted(
                self.phases.items(), key=lambda kv: kv[1], reverse=True
            )
        ]
        lines.append(f"{'total'.ljust(width)}  {format_duration(self.total)}")
        return "\n".join(lines)


class _PhaseContext:
    """Context manager produced by :meth:`Stopwatch.time`."""

    def __init__(self, stopwatch: Stopwatch, phase: str) -> None:
        self._stopwatch = stopwatch
        self._phase = phase
        self._start = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stopwatch.add(self._phase, time.perf_counter() - self._start)
