"""Visualization generation.

"For each view delivered by the backend, the frontend creates a
visualization based on parameters such as the data type (e.g. ordinal,
numeric), number of distinct values, and semantics (e.g. geography vs.
time series)" (§3.2). This package is that translation layer: views become
:class:`ChartSpec` objects via rule-based chart selection, and specs render
to ASCII (terminal), SVG (files; matplotlib is unavailable offline), or
Vega-Lite JSON (browsers).
"""

from repro.viz.spec import ChartSpec, ChartType, Series, view_to_chart_spec
from repro.viz.chart_select import (
    ChartChoice,
    dimension_spec_for,
    select_chart,
    select_chart_type,
)
from repro.viz.render_text import render_ascii
from repro.viz.svg import render_svg
from repro.viz.vega import to_vega_lite
from repro.viz.vega_schema import VEGA_LITE_MINI_SCHEMA, validate_vega_lite
from repro.viz.render import build_visualizations
from repro.viz.export import export_recommendations
from repro.viz.html_report import (
    render_dashboard_page,
    render_html_report,
    write_html_report,
)

__all__ = [
    "ChartChoice",
    "ChartSpec",
    "ChartType",
    "Series",
    "view_to_chart_spec",
    "dimension_spec_for",
    "select_chart",
    "select_chart_type",
    "render_ascii",
    "render_svg",
    "to_vega_lite",
    "VEGA_LITE_MINI_SCHEMA",
    "validate_vega_lite",
    "build_visualizations",
    "export_recommendations",
    "render_dashboard_page",
    "render_html_report",
    "write_html_report",
]
