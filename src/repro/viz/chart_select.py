"""Rule-based chart-type selection (§3.2).

The frontend picks the visualization from the dimension's data type, its
distinct-value count, and its semantic tag — the three signals the paper
names. The rules are deliberately simple and transparent:

====================  ======================  ==================
dimension              condition               chart type
====================  ======================  ==================
semantic "geography"   —                       MAP
semantic "time"        —                       LINE
DATE dtype             —                       LINE
numeric dtype          > 12 distinct values    LINE
any                    <= 5 groups, 1 series   PIE-eligible (BAR by default)
otherwise              —                       GROUPED_BAR
====================  ======================  ==================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.schema import ColumnSpec, Schema
from repro.db.types import DataType
from repro.viz.spec import ChartType

#: Above this many distinct ordered values, bars become unreadable and a
#: line chart communicates the trend better.
LINE_THRESHOLD = 12

#: At or below this many groups, a single series reads as part-to-whole
#: and is pie-eligible (DataVizard's low-cardinality composition rule).
PIE_THRESHOLD = 5


@dataclass(frozen=True)
class ChartChoice:
    """A selected chart family plus the human-readable rule that chose it.

    The rationale travels to clients inside the v3 ``visualizations``
    response frames, so an analyst can see *why* a view rendered as a
    line rather than bars — the transparency DataVizard's
    presentation-recommendation rules are built around.
    """

    chart_type: ChartType
    rationale: str


def select_chart(
    dimension_spec: "ColumnSpec | None",
    n_groups: int,
    n_series: int = 1,
) -> ChartChoice:
    """Pick a chart for a view from its presentation signals.

    The three signals the paper names (§3.2: data type, distinct-value
    count, semantics) plus DataVizard's series-count rule. Evaluation
    order is specificity: semantic tags beat dtype, dtype beats
    cardinality, cardinality beats the bar fallback.
    """
    if dimension_spec is None:
        fallback = ChartType.GROUPED_BAR if n_series > 1 else ChartType.BAR
        return ChartChoice(
            fallback,
            "no schema context for the dimension; defaulting to bars",
        )
    if dimension_spec.semantic == "geography":
        return ChartChoice(
            ChartType.MAP,
            f"dimension {dimension_spec.name!r} is tagged 'geography'; "
            "values are regions",
        )
    if dimension_spec.semantic == "time":
        return ChartChoice(
            ChartType.LINE,
            f"dimension {dimension_spec.name!r} is tagged 'time'; a line "
            "shows the trend over an ordered axis",
        )
    if dimension_spec.dtype is DataType.DATE:
        return ChartChoice(
            ChartType.LINE,
            f"dimension {dimension_spec.name!r} is a DATE; a line shows "
            "the trend over an ordered axis",
        )
    if dimension_spec.dtype.is_numeric and n_groups > LINE_THRESHOLD:
        return ChartChoice(
            ChartType.LINE,
            f"numeric dimension with {n_groups} distinct values "
            f"(> {LINE_THRESHOLD}); bars would be unreadable",
        )
    if n_series == 1 and n_groups <= PIE_THRESHOLD:
        return ChartChoice(
            ChartType.PIE,
            f"single series over {n_groups} groups "
            f"(<= {PIE_THRESHOLD}); reads as part-to-whole",
        )
    if n_series > 1:
        return ChartChoice(
            ChartType.GROUPED_BAR,
            f"{n_series} series over {n_groups} categorical groups; "
            "grouped bars keep target and reference side by side",
        )
    return ChartChoice(
        ChartType.BAR,
        f"single series over {n_groups} categorical groups",
    )


def select_chart_type(
    dimension_spec: "ColumnSpec | None",
    n_groups: int,
) -> ChartType:
    """Pick a chart type for a view grouped by ``dimension_spec``.

    ``dimension_spec`` may be None when the caller lost schema context
    (e.g. charts built from bare tables); the fallback is a grouped bar.
    Kept as the stable pre-v3 entry point: SeeDB charts carry two series
    (target vs reference), so this delegates to :func:`select_chart` with
    ``n_series=2`` and returns exactly what it always did.
    """
    return select_chart(dimension_spec, n_groups, n_series=2).chart_type


def dimension_spec_for(view_spec, schema: "Schema | None") -> "ColumnSpec | None":
    """The :class:`ColumnSpec` of a view's grouping dimension, or None.

    Tolerates the contexts where schema knowledge degrades instead of
    crashing chart building: no schema at all, multi-dimension view specs
    (no single column to look up), and dimensions absent from ``schema``
    (derived or sampled tables whose column set drifted from the base
    table's).
    """
    if schema is None:
        return None
    dimension = getattr(view_spec, "dimension", None)
    if dimension is None:
        dimensions = tuple(getattr(view_spec, "dimensions", ()) or ())
        if len(dimensions) != 1:
            return None
        dimension = dimensions[0]
    if dimension not in schema:
        return None
    return schema[dimension]
