"""Rule-based chart-type selection (§3.2).

The frontend picks the visualization from the dimension's data type, its
distinct-value count, and its semantic tag — the three signals the paper
names. The rules are deliberately simple and transparent:

====================  ======================  ==================
dimension              condition               chart type
====================  ======================  ==================
semantic "geography"   —                       MAP
semantic "time"        —                       LINE
DATE dtype             —                       LINE
numeric dtype          > 12 distinct values    LINE
any                    <= 5 groups, 1 series   PIE-eligible (BAR by default)
otherwise              —                       GROUPED_BAR
====================  ======================  ==================
"""

from __future__ import annotations

from repro.db.schema import ColumnSpec
from repro.db.types import DataType
from repro.viz.spec import ChartType

#: Above this many distinct ordered values, bars become unreadable and a
#: line chart communicates the trend better.
LINE_THRESHOLD = 12


def select_chart_type(
    dimension_spec: "ColumnSpec | None",
    n_groups: int,
) -> ChartType:
    """Pick a chart type for a view grouped by ``dimension_spec``.

    ``dimension_spec`` may be None when the caller lost schema context
    (e.g. charts built from bare tables); the fallback is a grouped bar.
    """
    if dimension_spec is None:
        return ChartType.GROUPED_BAR
    if dimension_spec.semantic == "geography":
        return ChartType.MAP
    if dimension_spec.semantic == "time":
        return ChartType.LINE
    if dimension_spec.dtype is DataType.DATE:
        return ChartType.LINE
    if dimension_spec.dtype.is_numeric and n_groups > LINE_THRESHOLD:
        return ChartType.LINE
    return ChartType.GROUPED_BAR
