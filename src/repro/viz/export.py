"""Export recommended views as chart files.

"Once the analyst has identified interesting views, the analyst may then
... share these views with others" (§1 step 4). This writes each
recommended view as SVG, Vega-Lite JSON, and plain text under a directory.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.core.result import RecommendationResult
from repro.db.schema import Schema
from repro.viz.chart_select import dimension_spec_for
from repro.viz.render_text import render_ascii
from repro.viz.spec import view_to_chart_spec
from repro.viz.svg import render_svg
from repro.viz.vega import to_vega_lite_json


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "_", text.lower()).strip("_")


def export_recommendations(
    result: RecommendationResult,
    directory: "str | Path",
    schema: "Schema | None" = None,
    formats: tuple[str, ...] = ("svg", "vega", "txt"),
) -> list[Path]:
    """Write every recommended view to ``directory``; returns the paths.

    ``schema`` (of the base table) improves chart-type selection; without
    it every chart falls back to grouped bars.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for rank, view in enumerate(result.recommendations, start=1):
        # dimension_spec_for, not a direct schema[...] lookup: multiview
        # specs expose `dimensions` (no `.dimension` attribute) and must
        # export with the bar fallback instead of crashing.
        dimension_spec = dimension_spec_for(view.spec, schema)
        spec = view_to_chart_spec(view, dimension_spec)
        stem = f"{rank:02d}_{_slug(view.spec.label)}"
        if "svg" in formats:
            path = directory / f"{stem}.svg"
            path.write_text(render_svg(spec))
            written.append(path)
        if "vega" in formats:
            path = directory / f"{stem}.vl.json"
            path.write_text(to_vega_lite_json(spec))
            written.append(path)
        if "txt" in formats:
            path = directory / f"{stem}.txt"
            path.write_text(render_ascii(spec))
            written.append(path)
    return written
