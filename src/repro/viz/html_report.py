"""Self-contained HTML reports: the shareable artifact of a session.

"Once the analyst has identified interesting views, the analyst may then
either share these views with others ..." (§1 step 4). This renders a
:class:`RecommendationResult` as one standalone HTML file: the query, the
recommendation table, an embedded SVG chart per view, per-view metadata,
the pruning report, and the phase-timing breakdown. No external assets,
so the file mails/uploads as-is.
"""

from __future__ import annotations

import json
from pathlib import Path
from xml.sax.saxutils import escape

from repro.core.result import RecommendationResult
from repro.db.schema import Schema
from repro.util.timing import format_duration
from repro.viz.chart_select import dimension_spec_for
from repro.viz.spec import view_to_chart_spec
from repro.viz.svg import render_svg

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 960px; color: #1a1a2e; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { border: 1px solid #d0d4dd; padding: 0.35rem 0.7rem; font-size: 0.9rem;
         text-align: left; }
th { background: #eef0f5; }
.utility { font-variant-numeric: tabular-nums; }
.chart { margin: 1rem 0 2rem; border: 1px solid #e2e5ec; border-radius: 6px;
         padding: 0.5rem; }
.meta { color: #555; font-size: 0.85rem; }
.pruned { color: #8a5a00; font-size: 0.85rem; }
""".strip()


def render_html_report(
    result: RecommendationResult,
    schema: "Schema | None" = None,
    title: "str | None" = None,
    max_pruned_listed: int = 20,
) -> str:
    """Render ``result`` to a standalone HTML document string."""
    heading = title or f"SeeDB recommendations — {result.table}"
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(heading)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{escape(heading)}</h1>",
        (
            f'<p class="meta">query: <code>{escape(result.predicate_description)}'
            f"</code> &middot; metric: {escape(result.metric)} &middot; "
            f"k={result.k}</p>"
        ),
    ]

    # Summary table.
    parts.append("<h2>Recommended views</h2>")
    parts.append("<table><tr><th>rank</th><th>view</th><th>utility</th>"
                 "<th>groups</th><th>max deviation at</th></tr>")
    for rank, view in enumerate(result.recommendations, start=1):
        parts.append(
            "<tr>"
            f"<td>{rank}</td>"
            f"<td>{escape(view.spec.label)}</td>"
            f'<td class="utility">{view.utility:.4f}</td>'
            f"<td>{len(view.groups)}</td>"
            f"<td>{escape(repr(view.max_deviation_group))}</td>"
            "</tr>"
        )
    parts.append("</table>")

    # One embedded chart per recommendation.
    for rank, view in enumerate(result.recommendations, start=1):
        spec = view_to_chart_spec(view, dimension_spec_for(view.spec, schema))
        parts.append(f"<h2>#{rank} — {escape(view.spec.label)}</h2>")
        parts.append(f'<div class="chart">{render_svg(spec)}</div>')

    # Work accounting.
    parts.append("<h2>Work</h2>")
    parts.append(
        f'<p class="meta">{result.n_candidate_views} candidate views, '
        f"{result.n_executed_views} executed, "
        f"{len(result.pruned_views())} pruned; "
        f"{result.n_queries} DBMS queries; "
        f"total {format_duration(result.total_seconds)}</p>"
    )
    if result.stopwatch.phases:
        parts.append("<table><tr><th>phase</th><th>time</th></tr>")
        for phase, seconds in sorted(
            result.stopwatch.phases.items(), key=lambda kv: -kv[1]
        ):
            parts.append(
                f"<tr><td>{escape(phase)}</td>"
                f"<td>{format_duration(seconds)}</td></tr>"
            )
        parts.append("</table>")

    pruned = result.pruned_views()
    if pruned:
        parts.append("<h2>Pruned views</h2>")
        parts.append('<ul class="pruned">')
        for view, reason in pruned[:max_pruned_listed]:
            parts.append(f"<li><b>{escape(view.label)}</b>: {escape(reason)}</li>")
        if len(pruned) > max_pruned_listed:
            parts.append(f"<li>… and {len(pruned) - max_pruned_listed} more</li>")
        parts.append("</ul>")

    parts.append("</body></html>")
    return "\n".join(parts)


_DASHBOARD_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 1.5rem auto;
       max-width: 1100px; color: #1a1a2e; background: #fafbfc; }
h1 { font-size: 1.35rem; }
#status { color: #555; font-size: 0.9rem; margin: 0.5rem 0 1.25rem; }
#status .err { color: #b00020; }
#charts { display: grid; grid-template-columns: repeat(auto-fill, minmax(480px, 1fr));
          gap: 1rem; }
.card { background: #fff; border: 1px solid #e2e5ec; border-radius: 6px;
        padding: 0.6rem 0.8rem; }
.card h3 { font-size: 0.95rem; margin: 0 0 0.2rem; }
.card .why { color: #777; font-size: 0.78rem; margin: 0 0 0.4rem; }
.card.pending { opacity: 0.75; }
""".strip()

# The dashboard renders SeeDB's restricted Vega-Lite subset (flat
# {category, series, value} rows, bar/line marks — see
# repro.viz.vega_schema) with ~100 lines of inline JS, so the page needs
# no CDN and works offline. It is NOT a general Vega renderer.
_DASHBOARD_JS = """
'use strict';
const PALETTE = ['#4c78a8', '#f58518', '#54a24b', '#e45756', '#b279a2'];

function renderSpec(spec) {
  const W = 460, H = 240, M = {top: 28, right: 12, bottom: 52, left: 48};
  const rows = (spec.data && spec.data.values) || [];
  const cats = [], seriesNames = [];
  for (const r of rows) {
    if (!cats.includes(r.category)) cats.push(r.category);
    if (!seriesNames.includes(r.series)) seriesNames.push(r.series);
  }
  const val = {};
  for (const r of rows) val[r.series + '\\u0000' + r.category] = r.value;
  let lo = 0, hi = 0;
  for (const r of rows) {
    if (r.value == null) continue;
    lo = Math.min(lo, r.value); hi = Math.max(hi, r.value);
  }
  if (hi === lo) hi = lo + 1;
  const iw = W - M.left - M.right, ih = H - M.top - M.bottom;
  const y = v => M.top + ih - ((v - lo) / (hi - lo)) * ih;
  const xBand = iw / Math.max(cats.length, 1);
  const xMid = i => M.left + xBand * (i + 0.5);
  const esc = s => String(s).replace(/&/g, '&amp;').replace(/</g, '&lt;')
      .replace(/>/g, '&gt;').replace(/"/g, '&quot;');
  const bg = (spec.config && spec.config.background) || '#ffffff';
  const parts = ['<svg xmlns="http://www.w3.org/2000/svg" width="' + W +
      '" height="' + H + '" viewBox="0 0 ' + W + ' ' + H + '">',
      '<rect width="' + W + '" height="' + H + '" fill="' + esc(bg) + '"/>'];
  // axes + zero line
  parts.push('<line x1="' + M.left + '" y1="' + y(0) + '" x2="' + (W - M.right) +
      '" y2="' + y(0) + '" stroke="#9aa0b0"/>');
  parts.push('<line x1="' + M.left + '" y1="' + M.top + '" x2="' + M.left +
      '" y2="' + (M.top + ih) + '" stroke="#9aa0b0"/>');
  for (const t of [lo, (lo + hi) / 2, hi]) {
    parts.push('<text x="' + (M.left - 4) + '" y="' + (y(t) + 3) +
        '" font-size="9" text-anchor="end" fill="#3c3c50">' +
        esc(t.toPrecision(3)) + '</text>');
  }
  const maxTicks = Math.max(1, Math.floor(cats.length / 12) + 1);
  cats.forEach((c, i) => {
    if (i % maxTicks) return;
    parts.push('<text x="' + xMid(i) + '" y="' + (M.top + ih + 12) +
        '" font-size="9" text-anchor="middle" fill="#3c3c50">' +
        esc(String(c).slice(0, 12)) + '</text>');
  });
  if (spec.mark === 'line') {
    seriesNames.forEach((name, si) => {
      const pts = cats.map((c, i) => {
        const v = val[name + '\\u0000' + c];
        return v == null ? null : xMid(i) + ',' + y(v);
      }).filter(Boolean).join(' ');
      parts.push('<polyline fill="none" stroke="' + PALETTE[si % PALETTE.length] +
          '" stroke-width="1.6" points="' + pts + '"/>');
    });
  } else {
    const slot = xBand * 0.8 / Math.max(seriesNames.length, 1);
    seriesNames.forEach((name, si) => {
      cats.forEach((c, i) => {
        const v = val[name + '\\u0000' + c];
        if (v == null) return;
        const x0 = M.left + xBand * i + xBand * 0.1 + slot * si;
        const top = Math.min(y(v), y(0));
        parts.push('<rect x="' + x0 + '" y="' + top + '" width="' +
            Math.max(slot - 1, 1) + '" height="' + Math.abs(y(v) - y(0)) +
            '" fill="' + PALETTE[si % PALETTE.length] + '"/>');
      });
    });
  }
  seriesNames.forEach((name, si) => {
    const lx = M.left + 8 + si * 150;
    parts.push('<rect x="' + lx + '" y="' + (H - 12) +
        '" width="9" height="9" fill="' + PALETTE[si % PALETTE.length] + '"/>');
    parts.push('<text x="' + (lx + 13) + '" y="' + (H - 4) +
        '" font-size="9" fill="#3c3c50">' + esc(name) + '</text>');
  });
  parts.push('<text x="' + (W / 2) + '" y="14" font-size="11" ' +
      'text-anchor="middle" fill="#1a1a2e">' + esc(spec.title || '') + '</text>');
  parts.push('</svg>');
  return parts.join('');
}

function upsertCard(frame, isFinal) {
  const grid = document.getElementById('charts');
  const key = 'card-' + btoa(unescape(encodeURIComponent(frame.view)));
  let card = document.getElementById(key);
  if (!card) {
    card = document.createElement('div');
    card.id = key;
    card.className = 'card';
    card.innerHTML = '<h3></h3><p class="why"></p><div class="plot"></div>';
    grid.appendChild(card);
  }
  card.style.order = frame.rank;
  card.className = 'card' + (isFinal ? '' : ' pending');
  card.querySelector('h3').textContent = '#' + frame.rank + ' \\u2014 ' + frame.view;
  card.querySelector('.why').textContent =
      frame.chart_type + ': ' + frame.rationale;
  card.querySelector('.plot').innerHTML = renderSpec(frame.spec);
  return key;
}

async function run() {
  const cfg = window.SEEDB_DASHBOARD;
  const status = document.getElementById('status');
  const body = {
    schema_version: 3,
    target: cfg.where
        ? {sql: 'SELECT * FROM ' + cfg.table + ' WHERE ' + cfg.where}
        : {table: cfg.table},
    backend: cfg.backend,
    k: cfg.k,
    strategy: 'incremental',
    options: {render: {format: 'vega-lite'}},
  };
  const resp = await fetch('/recommend/stream', {
    method: 'POST',
    headers: {'Content-Type': 'application/json'},
    body: JSON.stringify(body),
  });
  if (!resp.ok) {
    status.innerHTML = '<span class="err">request failed: ' + resp.status +
        ' ' + (await resp.text()).replace(/</g, '&lt;') + '</span>';
    return;
  }
  const reader = resp.body.getReader();
  const decoder = new TextDecoder();
  let buf = '';
  const handle = round => {
    if (round.error) {
      status.innerHTML = '<span class="err">stream error: ' +
          String(round.error.message || round.error).replace(/</g, '&lt;') +
          '</span>';
      return;
    }
    status.textContent = 'round ' + round.round + '/' + round.n_rounds +
        ' \\u00b7 ' + round.views_alive + ' views alive, ' +
        round.views_pruned + ' pruned' +
        (round.epsilon != null ? ' \\u00b7 \\u03b5=' + round.epsilon.toFixed(4) : '') +
        (round.is_final ? ' \\u00b7 done' : ' \\u2026');
    const live = new Set();
    for (const frame of round.visualizations || []) {
      live.add(upsertCard(frame, round.is_final));
    }
    // views that fell out of the running top-k disappear
    for (const card of Array.from(document.querySelectorAll('.card'))) {
      if (!live.has(card.id)) card.remove();
    }
  };
  for (;;) {
    const {done, value} = await reader.read();
    if (done) break;
    buf += decoder.decode(value, {stream: true});
    let idx;
    while ((idx = buf.indexOf('\\n')) >= 0) {
      const line = buf.slice(0, idx).trim();
      buf = buf.slice(idx + 1);
      if (line) handle(JSON.parse(line));
    }
  }
}
document.addEventListener('DOMContentLoaded', run);
""".strip()


def render_dashboard_page(
    backend: str,
    table: str,
    k: int,
    where: "str | None" = None,
) -> str:
    """The live-dashboard HTML page for ``GET /dashboard``.

    Self-contained — inline styles, inline JS, no CDN — so it works
    offline and behind firewalls. On load the page POSTs an incremental
    v3 request with ``render.format="vega-lite"`` to
    ``/recommend/stream`` on the same origin and consumes the NDJSON
    rounds: each round's ``visualizations`` frames update the chart grid
    in place, so the analyst watches the top-k converge live. The final
    round's charts are exactly the blocking result's.
    """
    # </-escaping keeps embedded JSON from terminating the <script> block.
    config = json.dumps(
        {"backend": backend, "table": table, "k": k, "where": where}
    ).replace("</", "<\\/")
    heading = f"SeeDB live dashboard — {table} ({backend})"
    return "\n".join(
        [
            "<!DOCTYPE html>",
            '<html lang="en"><head><meta charset="utf-8">',
            f"<title>{escape(heading)}</title>",
            f"<style>{_DASHBOARD_STYLE}</style>",
            "</head><body>",
            f"<h1>{escape(heading)}</h1>",
            '<p id="status">connecting…</p>',
            '<div id="charts" style="display: grid;"></div>',
            f"<script>window.SEEDB_DASHBOARD = {config};</script>",
            f"<script>{_DASHBOARD_JS}</script>",
            "</body></html>",
        ]
    )


def write_html_report(
    result: RecommendationResult,
    path: "str | Path",
    schema: "Schema | None" = None,
    title: "str | None" = None,
) -> Path:
    """Write the HTML report to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_html_report(result, schema, title))
    return path
