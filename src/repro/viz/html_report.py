"""Self-contained HTML reports: the shareable artifact of a session.

"Once the analyst has identified interesting views, the analyst may then
either share these views with others ..." (§1 step 4). This renders a
:class:`RecommendationResult` as one standalone HTML file: the query, the
recommendation table, an embedded SVG chart per view, per-view metadata,
the pruning report, and the phase-timing breakdown. No external assets,
so the file mails/uploads as-is.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.core.result import RecommendationResult
from repro.db.schema import Schema
from repro.util.timing import format_duration
from repro.viz.spec import view_to_chart_spec
from repro.viz.svg import render_svg

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem auto;
       max-width: 960px; color: #1a1a2e; }
h1 { font-size: 1.5rem; } h2 { font-size: 1.15rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { border: 1px solid #d0d4dd; padding: 0.35rem 0.7rem; font-size: 0.9rem;
         text-align: left; }
th { background: #eef0f5; }
.utility { font-variant-numeric: tabular-nums; }
.chart { margin: 1rem 0 2rem; border: 1px solid #e2e5ec; border-radius: 6px;
         padding: 0.5rem; }
.meta { color: #555; font-size: 0.85rem; }
.pruned { color: #8a5a00; font-size: 0.85rem; }
""".strip()


def render_html_report(
    result: RecommendationResult,
    schema: "Schema | None" = None,
    title: "str | None" = None,
    max_pruned_listed: int = 20,
) -> str:
    """Render ``result`` to a standalone HTML document string."""
    heading = title or f"SeeDB recommendations — {result.table}"
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        f"<title>{escape(heading)}</title>",
        f"<style>{_STYLE}</style>",
        "</head><body>",
        f"<h1>{escape(heading)}</h1>",
        (
            f'<p class="meta">query: <code>{escape(result.predicate_description)}'
            f"</code> &middot; metric: {escape(result.metric)} &middot; "
            f"k={result.k}</p>"
        ),
    ]

    # Summary table.
    parts.append("<h2>Recommended views</h2>")
    parts.append("<table><tr><th>rank</th><th>view</th><th>utility</th>"
                 "<th>groups</th><th>max deviation at</th></tr>")
    for rank, view in enumerate(result.recommendations, start=1):
        parts.append(
            "<tr>"
            f"<td>{rank}</td>"
            f"<td>{escape(view.spec.label)}</td>"
            f'<td class="utility">{view.utility:.4f}</td>'
            f"<td>{len(view.groups)}</td>"
            f"<td>{escape(repr(view.max_deviation_group))}</td>"
            "</tr>"
        )
    parts.append("</table>")

    # One embedded chart per recommendation.
    for rank, view in enumerate(result.recommendations, start=1):
        dimension_spec = None
        if schema is not None and view.spec.dimension in schema:
            dimension_spec = schema[view.spec.dimension]
        spec = view_to_chart_spec(view, dimension_spec)
        parts.append(f"<h2>#{rank} — {escape(view.spec.label)}</h2>")
        parts.append(f'<div class="chart">{render_svg(spec)}</div>')

    # Work accounting.
    parts.append("<h2>Work</h2>")
    parts.append(
        f'<p class="meta">{result.n_candidate_views} candidate views, '
        f"{result.n_executed_views} executed, "
        f"{len(result.pruned_views())} pruned; "
        f"{result.n_queries} DBMS queries; "
        f"total {format_duration(result.total_seconds)}</p>"
    )
    if result.stopwatch.phases:
        parts.append("<table><tr><th>phase</th><th>time</th></tr>")
        for phase, seconds in sorted(
            result.stopwatch.phases.items(), key=lambda kv: -kv[1]
        ):
            parts.append(
                f"<tr><td>{escape(phase)}</td>"
                f"<td>{format_duration(seconds)}</td></tr>"
            )
        parts.append("</table>")

    pruned = result.pruned_views()
    if pruned:
        parts.append("<h2>Pruned views</h2>")
        parts.append('<ul class="pruned">')
        for view, reason in pruned[:max_pruned_listed]:
            parts.append(f"<li><b>{escape(view.label)}</b>: {escape(reason)}</li>")
        if len(pruned) > max_pruned_listed:
            parts.append(f"<li>… and {len(pruned) - max_pruned_listed} more</li>")
        parts.append("</ul>")

    parts.append("</body></html>")
    return "\n".join(parts)


def write_html_report(
    result: RecommendationResult,
    path: "str | Path",
    schema: "Schema | None" = None,
    title: "str | None" = None,
) -> Path:
    """Write the HTML report to ``path``; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_html_report(result, schema, title))
    return path
