"""Serving-side visualization assembly: the v3 ``render`` block's engine.

This is the one place recommendation views become response-ready chart
frames. The :class:`~repro.engine.phases.RenderPhase` calls it for the
final top-k, the streaming path calls it per progressive round for the
current estimate, and both produce the same frames for the same views —
which is what makes a stream's final round bit-identical to the blocking
result.

A frame is plain JSON: the paired view's label and rank, the chart type
with the selector's rationale (DataVizard-style presentation rules), and
the artifact itself — a Vega-Lite v5 spec or a standalone SVG document.
Frames attach to :class:`~repro.core.result.RecommendationResult` and ride
every transport (result LRU, coalesced joiners, the shm cluster codec)
without re-rendering.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.viz.chart_select import dimension_spec_for, select_chart
from repro.viz.spec import view_to_chart_spec
from repro.viz.svg import render_svg
from repro.viz.vega import to_vega_lite

if TYPE_CHECKING:
    from repro.db.schema import Schema
    from repro.model.view import ScoredView

#: SeeDB charts always plot target vs reference side by side.
_N_SERIES = 2


def build_visualizations(
    views: "Sequence[ScoredView]",
    schema: "Schema | None",
    render: "dict | None",
) -> list[dict]:
    """JSON-safe visualization frames for ``views`` (best first).

    ``render`` is a normalized ``options.render`` block (see
    :data:`repro.api.request.RENDER_OPTION_DEFAULTS`); a missing key falls
    back to its default, and ``format == "none"`` returns no frames.
    ``schema`` is the base table's — chart selection degrades to the
    bar fallback for any view whose dimension it cannot resolve.
    """
    render = render or {}
    fmt = render.get("format", "none")
    if fmt == "none":
        return []
    theme = render.get("theme", "light")
    max_charts = render.get("max_charts")
    frames: list[dict] = []
    for rank, view in enumerate(views, start=1):
        if max_charts is not None and rank > max_charts:
            break
        dimension_spec = dimension_spec_for(view.spec, schema)
        choice = select_chart(dimension_spec, len(view.groups), _N_SERIES)
        chart = view_to_chart_spec(
            view, dimension_spec, chart_type=choice.chart_type
        )
        frame = {
            "rank": rank,
            "view": view.spec.label,
            "chart_type": choice.chart_type.value,
            "rationale": choice.rationale,
            "format": fmt,
        }
        if fmt == "vega-lite":
            frame["spec"] = to_vega_lite(chart, theme=theme)
        else:  # "svg" — the request validator admits nothing else
            frame["svg"] = render_svg(chart)
        frames.append(frame)
    return frames
