"""ASCII chart rendering for terminal frontends.

Horizontal bars scaled to a character budget; two series render as paired
bars per category (target vs comparison), which is how the CLI shows
recommended views without any graphics stack.
"""

from __future__ import annotations

from repro.viz.spec import ChartSpec

_BAR_CHARS = {0: "█", 1: "░"}  # series index -> fill character


def render_ascii(spec: ChartSpec, width: int = 48) -> str:
    """Render ``spec`` as an ASCII chart, one bar row per (category, series)."""
    if width < 8:
        raise ValueError(f"width must be >= 8, got {width}")
    lines: list[str] = [spec.title, "=" * len(spec.title)]
    peak = max(
        (abs(value) for series in spec.series for value in series.values),
        default=0.0,
    )
    label_width = max((len(str(c)) for c in spec.categories), default=0)
    label_width = max(label_width, 4)
    name_width = max(len(s.name) for s in spec.series)

    for category_index, category in enumerate(spec.categories):
        for series_index, series in enumerate(spec.series):
            value = series.values[category_index]
            bar_length = 0 if peak == 0 else int(round(abs(value) / peak * width))
            fill = _BAR_CHARS.get(series_index, "▒")
            bar = fill * bar_length
            label = str(category) if series_index == 0 else ""
            lines.append(
                f"{label.ljust(label_width)} | "
                f"{series.name.ljust(name_width)} {bar} {value:g}"
            )
        if len(spec.series) > 1:
            lines.append("")

    legend = "   ".join(
        f"{_BAR_CHARS.get(i, '▒')} {series.name}" for i, series in enumerate(spec.series)
    )
    lines.append(legend)
    lines.extend(spec.notes)
    return "\n".join(line.rstrip() for line in lines)
