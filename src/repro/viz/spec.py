"""Chart specifications: the renderer-independent description of a plot."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.db.schema import ColumnSpec
from repro.model.view import ScoredView
from repro.util.errors import ReproError


class ChartType(enum.Enum):
    """Visualization families the chart selector can choose from."""

    BAR = "bar"
    GROUPED_BAR = "grouped_bar"
    LINE = "line"
    PIE = "pie"
    MAP = "map"  # geographic semantic; renderers fall back to bars


@dataclass(frozen=True)
class Series:
    """One named value series over the chart's category axis."""

    name: str
    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ReproError(f"series {self.name!r} has no values")


@dataclass(frozen=True)
class ChartSpec:
    """A complete, renderer-independent chart description."""

    chart_type: ChartType
    title: str
    x_label: str
    y_label: str
    categories: tuple[Any, ...]
    series: tuple[Series, ...]
    #: Free-form annotations (utility score, max-deviation group, ...).
    notes: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.series:
            raise ReproError("a chart needs at least one series")
        for series in self.series:
            if len(series.values) != len(self.categories):
                raise ReproError(
                    f"series {series.name!r} has {len(series.values)} values "
                    f"for {len(self.categories)} categories"
                )


def view_to_chart_spec(
    view: ScoredView,
    dimension_spec: "ColumnSpec | None" = None,
    normalized: bool = False,
    target_name: str = "query subset",
    comparison_name: str = "entire dataset",
    chart_type: "ChartType | None" = None,
) -> ChartSpec:
    """Translate a scored view into a chart spec.

    Shows target and comparison side by side — the comparison is what makes
    a recommended view interpretable (Figure 1 vs Figures 2/3 in the
    paper). ``normalized=True`` plots the probability distributions the
    utility was computed on instead of raw aggregate values. An explicit
    ``chart_type`` overrides the rule-based selector (callers that already
    ran :func:`~repro.viz.chart_select.select_chart` pass their choice so
    the chart and its recorded rationale cannot drift apart).
    """
    from repro.viz.chart_select import select_chart_type  # avoid cycle

    if normalized or view.target_values.size == 0:
        target_values = view.target_distribution
        comparison_values = view.comparison_distribution
        y_label = "probability mass"
    else:
        target_values = view.target_values
        comparison_values = view.comparison_values
        y_label = view.spec.aggregate.alias

    if chart_type is None:
        chart_type = select_chart_type(dimension_spec, len(view.groups))
    # Multi-attribute specs carry `dimensions`, not `dimension`; the axis
    # label must degrade, not crash, when charts are built from them.
    dimension = getattr(view.spec, "dimension", None)
    if dimension is None:
        dimension = " x ".join(getattr(view.spec, "dimensions", ())) or "group"
    notes = (
        f"utility={view.utility:.4f}",
        f"max deviation at {view.max_deviation_group!r}",
    )
    return ChartSpec(
        chart_type=chart_type,
        title=view.spec.label,
        x_label=dimension,
        y_label=y_label,
        categories=tuple(view.groups),
        series=(
            Series(target_name, tuple(float(v) for v in target_values)),
            Series(comparison_name, tuple(float(v) for v in comparison_values)),
        ),
        notes=notes,
    )


def single_series_spec(
    title: str,
    x_label: str,
    y_label: str,
    categories: Sequence[Any],
    values: Sequence[float],
    chart_type: ChartType = ChartType.BAR,
) -> ChartSpec:
    """Spec for a plain single-series chart (e.g. paper Figure 1)."""
    return ChartSpec(
        chart_type=chart_type,
        title=title,
        x_label=x_label,
        y_label=y_label,
        categories=tuple(categories),
        series=(Series(y_label, tuple(float(v) for v in np.asarray(values))),),
    )
