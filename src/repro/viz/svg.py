"""Pure-Python SVG rendering (no matplotlib in the offline environment).

Supports the chart families the selector emits: (grouped) bar charts and
line charts; MAP and PIE fall back to grouped bars with a note, keeping
every recommended view renderable. Output is a standalone ``<svg>``
document string.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

from repro.viz.spec import ChartSpec, ChartType

_SERIES_COLORS = ("#4c78a8", "#f58518", "#54a24b", "#e45756")

_WIDTH = 640
_HEIGHT = 400
_MARGIN_LEFT = 70
_MARGIN_RIGHT = 20
_MARGIN_TOP = 50
_MARGIN_BOTTOM = 90


def render_svg(spec: ChartSpec) -> str:
    """Render ``spec`` to an SVG document string."""
    if spec.chart_type is ChartType.LINE:
        body = _line_body(spec)
    else:
        body = _bar_body(spec)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{_WIDTH}" '
        f'height="{_HEIGHT}" viewBox="0 0 {_WIDTH} {_HEIGHT}" '
        f'font-family="sans-serif">',
        f'<rect width="{_WIDTH}" height="{_HEIGHT}" fill="white"/>',
        f'<text x="{_WIDTH / 2}" y="24" text-anchor="middle" '
        f'font-size="16" font-weight="bold">{escape(spec.title)}</text>',
    ]
    if spec.chart_type in (ChartType.MAP, ChartType.PIE):
        parts.append(
            f'<text x="{_WIDTH / 2}" y="40" text-anchor="middle" '
            f'font-size="10" fill="#888">({spec.chart_type.value} rendered '
            f"as bars)</text>"
        )
    parts.extend(body)
    parts.extend(_legend(spec))
    parts.extend(_notes(spec))
    parts.append("</svg>")
    return "\n".join(parts)


def _plot_area() -> tuple[float, float, float, float]:
    """(x0, y0, plot_width, plot_height) of the data region."""
    return (
        _MARGIN_LEFT,
        _MARGIN_TOP,
        _WIDTH - _MARGIN_LEFT - _MARGIN_RIGHT,
        _HEIGHT - _MARGIN_TOP - _MARGIN_BOTTOM,
    )


def _value_range(spec: ChartSpec) -> tuple[float, float]:
    values = [v for series in spec.series for v in series.values]
    low = min(values + [0.0])
    high = max(values + [0.0])
    if low == high:
        high = low + 1.0
    return low, high


def _y_position(value: float, low: float, high: float) -> float:
    x0, y0, _w, height = _plot_area()
    fraction = (value - low) / (high - low)
    return y0 + height * (1.0 - fraction)


def _axes(spec: ChartSpec, low: float, high: float) -> list[str]:
    x0, y0, width, height = _plot_area()
    parts = [
        f'<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y0 + height}" '
        f'stroke="#333"/>',
        f'<line x1="{x0}" y1="{y0 + height}" x2="{x0 + width}" '
        f'y2="{y0 + height}" stroke="#333"/>',
        f'<text x="16" y="{y0 + height / 2}" font-size="11" '
        f'text-anchor="middle" transform="rotate(-90 16 {y0 + height / 2})">'
        f"{escape(spec.y_label)}</text>",
        f'<text x="{x0 + width / 2}" y="{_HEIGHT - 8}" font-size="11" '
        f'text-anchor="middle">{escape(spec.x_label)}</text>',
    ]
    for i in range(5):
        value = low + (high - low) * i / 4
        y = _y_position(value, low, high)
        parts.append(
            f'<line x1="{x0 - 4}" y1="{y}" x2="{x0}" y2="{y}" stroke="#333"/>'
        )
        parts.append(
            f'<text x="{x0 - 8}" y="{y + 4}" font-size="10" '
            f'text-anchor="end">{value:.3g}</text>'
        )
    return parts


def _category_labels(spec: ChartSpec) -> list[str]:
    x0, y0, width, height = _plot_area()
    n = len(spec.categories)
    parts = []
    for i, category in enumerate(spec.categories):
        x = x0 + width * (i + 0.5) / max(n, 1)
        y = y0 + height + 14
        parts.append(
            f'<text x="{x}" y="{y}" font-size="10" text-anchor="end" '
            f'transform="rotate(-35 {x} {y})">{escape(str(category))}</text>'
        )
    return parts


def _bar_body(spec: ChartSpec) -> list[str]:
    x0, y0, width, height = _plot_area()
    low, high = _value_range(spec)
    parts = _axes(spec, low, high)
    n_categories = len(spec.categories)
    n_series = len(spec.series)
    slot = width / max(n_categories, 1)
    bar_width = slot * 0.8 / max(n_series, 1)
    zero_y = _y_position(0.0, low, high)
    for series_index, series in enumerate(spec.series):
        color = _SERIES_COLORS[series_index % len(_SERIES_COLORS)]
        for category_index, value in enumerate(series.values):
            x = (
                x0
                + slot * category_index
                + slot * 0.1
                + bar_width * series_index
            )
            y = _y_position(value, low, high)
            top, bar_height = (y, zero_y - y) if value >= 0 else (zero_y, y - zero_y)
            parts.append(
                f'<rect x="{x:.2f}" y="{top:.2f}" width="{bar_width:.2f}" '
                f'height="{max(bar_height, 0):.2f}" fill="{color}"/>'
            )
    parts.extend(_category_labels(spec))
    return parts


def _line_body(spec: ChartSpec) -> list[str]:
    x0, y0, width, height = _plot_area()
    low, high = _value_range(spec)
    parts = _axes(spec, low, high)
    n = len(spec.categories)
    for series_index, series in enumerate(spec.series):
        color = _SERIES_COLORS[series_index % len(_SERIES_COLORS)]
        points = []
        for i, value in enumerate(series.values):
            x = x0 + width * (i + 0.5) / max(n, 1)
            y = _y_position(value, low, high)
            points.append(f"{x:.2f},{y:.2f}")
        parts.append(
            f'<polyline points="{" ".join(points)}" fill="none" '
            f'stroke="{color}" stroke-width="2"/>'
        )
        for point in points:
            x, y = point.split(",")
            parts.append(f'<circle cx="{x}" cy="{y}" r="2.5" fill="{color}"/>')
    parts.extend(_category_labels(spec))
    return parts


def _legend(spec: ChartSpec) -> list[str]:
    parts = []
    x = _MARGIN_LEFT
    y = 36
    for series_index, series in enumerate(spec.series):
        color = _SERIES_COLORS[series_index % len(_SERIES_COLORS)]
        parts.append(f'<rect x="{x}" y="{y - 9}" width="10" height="10" fill="{color}"/>')
        parts.append(
            f'<text x="{x + 14}" y="{y}" font-size="11">{escape(series.name)}</text>'
        )
        x += 14 + 7 * len(series.name) + 20
    return parts


def _notes(spec: ChartSpec) -> list[str]:
    parts = []
    y = _HEIGHT - 46
    for note in spec.notes:
        parts.append(
            f'<text x="{_WIDTH - _MARGIN_RIGHT}" y="{y}" font-size="9" '
            f'fill="#666" text-anchor="end">{escape(note)}</text>'
        )
        y += 12
    return parts
