"""Vega-Lite emission: chart specs as JSON for browser frontends.

The real SeeDB demo rendered charts in a web frontend; emitting Vega-Lite
gives this reproduction the same path without bundling a renderer.
"""

from __future__ import annotations

import json
from typing import Any

from repro.viz.spec import ChartSpec, ChartType

_SCHEMA_URL = "https://vega.github.io/schema/vega-lite/v5.json"


def to_vega_lite(spec: ChartSpec) -> dict[str, Any]:
    """A Vega-Lite v5 specification dict for ``spec``."""
    rows = [
        {
            "category": str(category),
            "series": series.name,
            "value": float(series.values[i]),
        }
        for i, category in enumerate(spec.categories)
        for series in spec.series
    ]
    mark = "line" if spec.chart_type is ChartType.LINE else "bar"
    encoding: dict[str, Any] = {
        "x": {"field": "category", "type": "nominal", "title": spec.x_label,
              "sort": None},
        "y": {"field": "value", "type": "quantitative", "title": spec.y_label},
        "color": {"field": "series", "type": "nominal", "title": None},
    }
    if mark == "bar" and len(spec.series) > 1:
        encoding["xOffset"] = {"field": "series"}
    return {
        "$schema": _SCHEMA_URL,
        "title": spec.title,
        "description": "; ".join(spec.notes),
        "data": {"values": rows},
        "mark": mark,
        "encoding": encoding,
    }


def to_vega_lite_json(spec: ChartSpec, indent: int = 2) -> str:
    """The Vega-Lite spec serialized to a JSON string."""
    return json.dumps(to_vega_lite(spec), indent=indent)
