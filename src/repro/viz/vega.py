"""Vega-Lite emission: chart specs as JSON for browser frontends.

The real SeeDB demo rendered charts in a web frontend; emitting Vega-Lite
gives this reproduction the same path without bundling a renderer.
"""

from __future__ import annotations

import json
from typing import Any

from repro.viz.spec import ChartSpec, ChartType

_SCHEMA_URL = "https://vega.github.io/schema/vega-lite/v5.json"


def _theme_config(theme: str) -> dict[str, Any]:
    """The Vega-Lite ``config`` block for a named theme (fresh dict per
    call — specs are mutated by callers and must not share state)."""
    if theme == "dark":
        return {
            "background": "#16161e",
            "title": {"color": "#e8e8f0"},
            "axis": {
                "labelColor": "#c6c6d4",
                "titleColor": "#c6c6d4",
                "gridColor": "#2e2e3c",
                "domainColor": "#55556a",
            },
            "legend": {"labelColor": "#c6c6d4", "titleColor": "#c6c6d4"},
        }
    if theme == "light":
        return {
            "background": "#ffffff",
            "title": {"color": "#1a1a2e"},
            "axis": {
                "labelColor": "#3c3c50",
                "titleColor": "#3c3c50",
                "gridColor": "#e2e5ec",
                "domainColor": "#9aa0b0",
            },
            "legend": {"labelColor": "#3c3c50", "titleColor": "#3c3c50"},
        }
    from repro.util.errors import ReproError

    raise ReproError(f"unknown vega theme {theme!r}; expected light/dark")


def to_vega_lite(spec: ChartSpec, theme: "str | None" = None) -> dict[str, Any]:
    """A Vega-Lite v5 specification dict for ``spec``.

    ``theme`` (light/dark) adds a ``config`` color block; None keeps the
    pre-v3 output byte-identical for existing export files.
    """
    rows = [
        {
            "category": str(category),
            "series": series.name,
            "value": float(series.values[i]),
        }
        for i, category in enumerate(spec.categories)
        for series in spec.series
    ]
    mark = "line" if spec.chart_type is ChartType.LINE else "bar"
    encoding: dict[str, Any] = {
        "x": {"field": "category", "type": "nominal", "title": spec.x_label,
              "sort": None},
        "y": {"field": "value", "type": "quantitative", "title": spec.y_label},
        "color": {"field": "series", "type": "nominal", "title": None},
    }
    if mark == "bar" and len(spec.series) > 1:
        encoding["xOffset"] = {"field": "series"}
    doc: dict[str, Any] = {
        "$schema": _SCHEMA_URL,
        "title": spec.title,
        "description": "; ".join(spec.notes),
        "data": {"values": rows},
        "mark": mark,
        "encoding": encoding,
    }
    if theme is not None:
        doc["config"] = _theme_config(theme)
    return doc


def to_vega_lite_json(spec: ChartSpec, indent: int = 2) -> str:
    """The Vega-Lite spec serialized to a JSON string."""
    return json.dumps(to_vega_lite(spec), indent=indent)
