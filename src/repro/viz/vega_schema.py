"""Vendored Vega-Lite validation: a minimal JSON Schema, checked offline.

SeeDB emits a deliberately restricted Vega-Lite v5 subset — flat
``{category, series, value}`` rows, ``bar``/``line`` marks, x/y/color/
xOffset channels, an optional theme ``config`` block. This module vendors
a JSON Schema for exactly that subset plus a small pure-Python validator
for the draft-07 keywords the subset needs, so CI can verify every
emitted spec without network access to the real (multi-megabyte) upstream
schema and without a jsonschema dependency.

The point is drift detection, not Vega completeness: if a change to
:mod:`repro.viz.vega` starts emitting frames the documented subset does
not admit, :func:`validate_vega_lite` reports it and the hygiene job
fails.
"""

from __future__ import annotations

from typing import Any

#: The Vega-Lite v5 subset this repo emits, as a draft-07-style schema.
#: Vendored: CI validates against this document, never the network.
VEGA_LITE_MINI_SCHEMA: dict[str, Any] = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "$id": "seedb-vendored-vega-lite-v5-subset",
    "type": "object",
    "required": ["$schema", "data", "mark", "encoding"],
    "additionalProperties": False,
    "properties": {
        "$schema": {
            "const": "https://vega.github.io/schema/vega-lite/v5.json"
        },
        "title": {"type": "string"},
        "description": {"type": "string"},
        "data": {
            "type": "object",
            "required": ["values"],
            "additionalProperties": False,
            "properties": {
                "values": {
                    "type": "array",
                    "items": {
                        "type": "object",
                        "required": ["category", "series", "value"],
                        "additionalProperties": False,
                        "properties": {
                            "category": {"type": "string"},
                            "series": {"type": "string"},
                            "value": {"type": ["number", "null"]},
                        },
                    },
                }
            },
        },
        "mark": {"enum": ["bar", "line"]},
        "encoding": {
            "type": "object",
            "required": ["x", "y"],
            "additionalProperties": False,
            "properties": {
                "x": {"$ref": "#/definitions/channel"},
                "y": {"$ref": "#/definitions/channel"},
                "color": {"$ref": "#/definitions/channel"},
                "xOffset": {"$ref": "#/definitions/channel"},
            },
        },
        "config": {"type": "object"},
    },
    "definitions": {
        "channel": {
            "type": "object",
            "required": ["field"],
            "additionalProperties": False,
            "properties": {
                "field": {"type": "string"},
                "type": {
                    "enum": [
                        "nominal",
                        "ordinal",
                        "quantitative",
                        "temporal",
                    ]
                },
                "title": {"type": ["string", "null"]},
                "sort": {"type": ["string", "null", "array"]},
            },
        }
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float))
    and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def _resolve_ref(ref: str, root: dict) -> dict:
    if not ref.startswith("#/"):
        raise ValueError(f"only local $refs are supported, got {ref!r}")
    node: Any = root
    for part in ref[2:].split("/"):
        node = node[part]
    return node


def validate(
    instance: Any,
    schema: dict,
    root: "dict | None" = None,
    path: str = "$",
) -> list[str]:
    """Validate ``instance`` against a draft-07 schema subset.

    Returns human-readable error strings (empty = valid). Supports the
    keywords the vendored schema uses: ``type`` (incl. union lists),
    ``enum``, ``const``, ``required``, ``properties``,
    ``additionalProperties`` (boolean form), ``items``, and local
    ``$ref``. Unknown keywords are ignored, like a real draft-07
    validator would.
    """
    root = root if root is not None else schema
    if "$ref" in schema:
        schema = _resolve_ref(schema["$ref"], root)
    errors: list[str] = []

    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[name](instance) for name in allowed):
            return [
                f"{path}: expected type {expected!r}, got "
                f"{type(instance).__name__}"
            ]
    if "const" in schema and instance != schema["const"]:
        errors.append(
            f"{path}: expected const {schema['const']!r}, got {instance!r}"
        )
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(
            f"{path}: {instance!r} not in enum {schema['enum']!r}"
        )

    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required property {key!r}")
        properties = schema.get("properties", {})
        for key, subschema in properties.items():
            if key in instance:
                errors.extend(
                    validate(instance[key], subschema, root, f"{path}.{key}")
                )
        if schema.get("additionalProperties") is False:
            for key in sorted(set(instance) - set(properties)):
                errors.append(f"{path}: unexpected property {key!r}")

    if isinstance(instance, list) and "items" in schema:
        for index, item in enumerate(instance):
            errors.extend(
                validate(item, schema["items"], root, f"{path}[{index}]")
            )
    return errors


def validate_vega_lite(spec: dict) -> list[str]:
    """Errors for ``spec`` against the vendored subset schema (empty = ok)."""
    return validate(spec, VEGA_LITE_MINI_SCHEMA)
