"""Chaos suite: process-tier faults — worker kills, hangs, and shm tears.

The injector is installed in the *parent* before ``start()``; with the
``fork`` start method every worker (including monitor respawns) inherits
it, each with its own private copy of the schedule state. The invariant
is the same as the in-process suite's: bounded termination with a result
or a typed error — a SIGKILLed or wedged worker must never strand the
waiting client.
"""

import multiprocessing
import os
import signal
import time

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.service import ClusterTimeouts, single_backend_cluster
from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    install_injector,
    uninstall_injector,
)
from repro.util.errors import DeadlineExceeded, WorkerLost

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="chaos injection reaches workers by fork inheritance",
)

QUERY = RowSelectQuery("sales", col("product") == "Laserwave")

#: Fast teardown: a wedged worker should cost ~a second at close, not the
#: production-grade patience of the default join/terminate ladder.
FAST_TIMEOUTS = ClusterTimeouts(
    worker_join_s=1.0,
    worker_terminate_s=1.0,
    worker_kill_s=1.0,
    dispatch_grace_s=0.5,
)


@pytest.fixture(autouse=True)
def clean_injector():
    yield
    uninstall_injector()


def make_cluster(sales_table, **kwargs):
    backend = MemoryBackend()
    backend.register_table(sales_table)
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("result_cache_size", 0)
    kwargs.setdefault("timeouts", FAST_TIMEOUTS)
    return single_backend_cluster(
        backend, SeeDBConfig(k=3), start_method="fork", **kwargs
    )


class TestWorkerDeath:
    def test_dying_workers_yield_typed_worker_lost(self, sales_table):
        """Every worker dies mid-request, every retry dies too: the client
        gets ``WorkerLost`` within the retry budget — not a hang, not a
        raw ``EOFError`` off a torn pipe."""
        install_injector(FaultInjector([FaultSpec("worker.request", "die")]))
        service = make_cluster(sales_table)
        try:
            service.start()
            start = time.monotonic()
            with pytest.raises(WorkerLost, match="died mid-request"):
                service.recommend(QUERY)
            assert time.monotonic() - start < 60
            assert service.stats.failed == 1
        finally:
            service.close()

    def test_crash_loop_ejects_shard_and_degrades_health(self, sales_table):
        """One shard crash-loops (SIGKILL on every respawn) until its
        respawn budget is spent: it is ejected from the ring for good,
        ``health()`` turns degraded with the ejection count, and the
        surviving sibling keeps serving the whole keyspace correctly."""
        service = make_cluster(sales_table, workers=2)
        try:
            service.start()
            victim = service.health()["workers"][0]["id"]
            killed_pids = set()
            deadline = time.monotonic() + 120
            while service.health()["ejected_workers"] == 0:
                assert time.monotonic() < deadline, (
                    "crash loop never ejected the worker"
                )
                workers = {w["id"]: w for w in service.health()["workers"]}
                handle = workers.get(victim)
                if handle and handle["alive"] and handle["pid"] not in killed_pids:
                    killed_pids.add(handle["pid"])
                    os.kill(handle["pid"], signal.SIGKILL)
                time.sleep(0.02)
            # The sibling was never touched: the pool is degraded, not down.
            health = None
            poll_deadline = time.monotonic() + 10
            while time.monotonic() < poll_deadline:
                health = service.health()
                if health["status"] == "degraded":
                    break
                time.sleep(0.05)
            assert health is not None and health["status"] == "degraded", health
            assert health["ejected_workers"] >= 1
            assert victim not in {w["id"] for w in health["workers"]}
            assert service.snapshot()["cluster"]["ejections"] >= 1
            # The survivor inherited the ejected shard's keyspace.
            result = service.recommend(QUERY)
            assert len(result.recommendations) > 0
            assert service.stats.failed == 0
        finally:
            service.close()


class TestWorkerHang:
    def test_wedged_worker_hits_deadline_not_hang(self, sales_table):
        """A worker that stalls far past the request deadline: the router
        gives up at ``deadline + dispatch_grace`` with a typed
        ``DeadlineExceeded`` instead of waiting out the stall."""
        install_injector(
            FaultInjector(
                [FaultSpec("worker.request", "stall", delay_s=30.0, limit=1)]
            )
        )
        service = make_cluster(sales_table)
        try:
            service.start()
            start = time.monotonic()
            with pytest.raises(DeadlineExceeded):
                service.recommend(QUERY, deadline_ms=300)
            elapsed = time.monotonic() - start
            assert elapsed < 10, f"gave up after {elapsed:.1f}s, not at deadline"
            assert service.stats.deadline_exceeded == 1
        finally:
            service.close()


class TestShmTear:
    def test_torn_shm_write_falls_back_in_band(self, sales_table):
        """Every shared-memory publish tears mid-write: the worker ships
        the encoded result in-band instead, the client's answer is
        bit-identical to a serial run, and no half-written segment is
        ever visible to readers."""
        backend = MemoryBackend()
        backend.register_table(sales_table)
        expected = SeeDB(backend, SeeDBConfig(k=3)).recommend(QUERY)

        install_injector(FaultInjector([FaultSpec("shm.put", "tear")]))
        service = make_cluster(sales_table, result_cache_size=256)
        try:
            result = service.recommend(QUERY)
            assert [v.spec for v in result.recommendations] == [
                v.spec for v in expected.recommendations
            ]
            assert [v.utility for v in result.recommendations] == [
                v.utility for v in expected.recommendations
            ]
            assert service.stats.failed == 0
            # The tear actually fired: the router's own republish of the
            # in-band payload tore too (the injector lives parent-side as
            # well), and the counter proves the degraded path was taken.
            assert service._shm.put_failures >= 1
            # A repeat of the request still serves the same bits — the
            # torn, never-finalized segment is invisible to readers.
            repeat = service.recommend(QUERY)
            assert [v.spec for v in repeat.recommendations] == [
                v.spec for v in expected.recommendations
            ]
        finally:
            service.close()
