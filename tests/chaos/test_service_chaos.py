"""Chaos suite: the lifecycle invariant on the in-process serving tier.

The bar (request-lifecycle hardening): under ANY injected fault schedule,
every request terminates within ``deadline + grace`` with a full result,
a partial result, or a *typed* library error — never a hang, never a raw
``TypeError``/``KeyError`` escaping the service boundary. The schedules
below are seeded and deterministic; add new ones freely, the invariant
checker does not care what the schedule is.
"""

import time
from concurrent.futures import TimeoutError as FutureTimeout

import pytest

from repro.core.result import RecommendationResult
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.service import single_backend_service
from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    install_injector,
    uninstall_injector,
)
from repro.util.errors import Overloaded, ReproError

QUERY = RowSelectQuery("sales", col("product") == "Laserwave")

#: Slack on top of the request deadline before a test declares "hang".
#: Generous on purpose — CI boxes are slow; the invariant is *bounded
#: termination*, not latency.
GRACE_S = 20.0


@pytest.fixture(autouse=True)
def clean_injector():
    yield
    uninstall_injector()


def outcome_of(future, bound_s: float):
    """Resolve a submitted request into its terminal outcome.

    A result (full or partial) and a typed library error both satisfy the
    invariant; exceeding ``bound_s`` or any non-``ReproError`` exception
    is a violation.
    """
    try:
        return future.result(timeout=bound_s)
    except ReproError as exc:
        return exc
    except FutureTimeout:
        pytest.fail(f"request hung past its {bound_s:.0f}s termination bound")


def assert_terminal(outcome) -> None:
    assert isinstance(outcome, (RecommendationResult, ReproError)), (
        f"untyped outcome escaped the service: {outcome!r}"
    )


# Named, seeded fault schedules. "die" is deliberately absent here — that
# action kills the *process* and belongs to the cluster chaos suite.
SCHEDULES = {
    "stall-backend": [FaultSpec("backend.execute", "stall", delay_s=0.05)],
    "stall-rounds": [FaultSpec("engine.round", "stall", delay_s=0.05)],
    "error-backend": [FaultSpec("backend.execute", "error")],
    "error-rounds": [FaultSpec("engine.round", "error", after=1)],
    "flaky-mix": [
        FaultSpec("backend.execute", "stall", delay_s=0.05, probability=0.5),
        FaultSpec("backend.execute", "error", probability=0.3),
        FaultSpec("engine.round", "stall", delay_s=0.05, probability=0.5),
        FaultSpec("engine.round", "error", probability=0.2),
    ],
}


class TestLifecycleInvariant:
    @pytest.mark.parametrize("schedule", sorted(SCHEDULES))
    @pytest.mark.parametrize("seed", [0, 1])
    def test_every_request_terminates(self, memory_backend, schedule, seed):
        install_injector(FaultInjector(SCHEDULES[schedule], seed=seed))
        deadline_ms = 500
        with single_backend_service(
            memory_backend, max_workers=4, result_cache_size=0
        ) as service:
            futures = [
                service.submit(
                    QUERY, k=k, deadline_ms=deadline_ms, n_phases=4
                )
                for k in range(1, 7)
            ]
            bound = deadline_ms / 1000.0 + GRACE_S
            outcomes = [outcome_of(future, bound) for future in futures]
        for outcome in outcomes:
            assert_terminal(outcome)
        # The ledger balances: nothing admitted is unaccounted for.
        stats = service.stats
        assert stats.completed + stats.failed == stats.executions

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_streams_terminate_under_flaky_mix(self, memory_backend, seed):
        install_injector(FaultInjector(SCHEDULES["flaky-mix"], seed=seed))
        with single_backend_service(
            memory_backend, result_cache_size=0
        ) as service:
            for k in range(1, 4):
                start = time.monotonic()
                stream = service.recommend_stream(
                    QUERY, k=k, deadline_ms=500, n_phases=4
                )
                try:
                    rounds = list(stream)
                except ReproError:
                    rounds = []  # a typed failure is a legal terminal state
                assert time.monotonic() - start <= 0.5 + GRACE_S
                if rounds:
                    assert rounds[-1].is_final
                    assert rounds[-1].result is not None


class TestSaturation:
    def test_burst_sheds_typed_and_recovers(self, memory_backend):
        """Saturate a 1-slot, 1-deep service with slow requests: every
        submission either runs to a terminal outcome or is shed with
        ``Overloaded`` — and once the burst drains, the service is
        healthy again (no poisoned slots, no stuck admissions)."""
        install_injector(
            FaultInjector([FaultSpec("backend.execute", "stall", delay_s=0.1)])
        )
        service = single_backend_service(
            memory_backend, max_workers=1, max_queue_depth=1, result_cache_size=0
        )
        try:
            admitted, shed = [], 0
            for k in range(1, 8):
                try:
                    admitted.append(service.submit(QUERY, k=k))
                except Overloaded as exc:
                    shed += 1
                    assert exc.retry_after is not None and exc.retry_after > 0
            assert shed >= 1, "burst never tripped admission control"
            for future in admitted:
                assert_terminal(outcome_of(future, GRACE_S))
            assert service.stats.rejected == shed
            # Recovery: with the faults gone the same service serves.
            uninstall_injector()
            result = service.recommend(QUERY, k=2)
            assert result.partial is False
            assert len(result.recommendations) > 0
        finally:
            service.close()
