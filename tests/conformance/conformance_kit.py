"""Shared pieces of the backend conformance kit.

Importable by both the kit's ``conftest.py`` and its test modules (pytest
prepend-mode puts this directory on ``sys.path``): backend factory
registry, the canonical contract table, and group-comparison helpers.
"""

from __future__ import annotations

import numpy as np

from repro.backends.duckdb import DuckDbBackend, duckdb_available
from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.db.table import Table
from repro.db.types import AttributeRole

BACKEND_FACTORIES = {
    "memory": MemoryBackend,
    "sqlite": SqliteBackend,
    "duckdb": DuckDbBackend,
}

__all__ = [
    "BACKEND_FACTORIES",
    "assert_same_groups",
    "conformance_table",
    "duckdb_available",
    "groups_of",
    "normalize_key",
]


def conformance_table() -> Table:
    """The canonical contract table: NULL dimension values, NaN measures.

    16 rows. ``region`` carries two genuine NULLs (the NULL-group
    disambiguation cases), ``product`` is dense, ``amount`` holds one NaN
    (SQL NULL semantics), and the p0/r0 concentration plants a deviation
    every backend must surface identically.
    """
    regions = ["r0", "r1", "r2", "r0", None, "r1", "r2", "r0"] * 2
    products = ["p0", "p0", "p1", "p1", "p0", "p1", "p0", "p1"] * 2
    amounts = [10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0,
               15.0, 25.0, 35.0, float("nan"), 55.0, 65.0, 75.0, 85.0]
    units = [float(1 + (i % 4)) for i in range(16)]
    return Table.from_columns(
        "conformance",
        {
            "region": regions,
            "product": products,
            "amount": amounts,
            "units": units,
        },
        roles={
            "region": AttributeRole.DIMENSION,
            "product": AttributeRole.DIMENSION,
            "amount": AttributeRole.MEASURE,
            "units": AttributeRole.MEASURE,
        },
    )


def medium_workload():
    """A deterministic ~600-row table + analyst query with a planted
    deviation (product p0 concentrates in region r0), sized so the full
    pipeline runs in milliseconds but produces a stable, untied top-k."""
    n = 600
    regions = [f"r{i % 6}" for i in range(n)]
    products = [f"p{(i // 6) % 5}" for i in range(n)]
    for i in range(n):
        if products[i] == "p0" and i % 3 != 0:
            regions[i] = "r0"
    from repro.db.expressions import col

    table = Table.from_columns(
        "orders",
        {
            "region": regions,
            "product": products,
            "band": [f"q{1 + (i % 4)}" for i in range(n)],
            "amount": [float(10 + (i * 7) % 90) for i in range(n)],
            "units": [float(1 + (i % 5)) for i in range(n)],
        },
        roles={
            "region": AttributeRole.DIMENSION,
            "product": AttributeRole.DIMENSION,
            "band": AttributeRole.DIMENSION,
            "amount": AttributeRole.MEASURE,
            "units": AttributeRole.MEASURE,
        },
    )
    from repro.db.query import RowSelectQuery

    return table, RowSelectQuery("orders", col("product") == "p0")


def normalize_key(value):
    """Canonical comparison form of one group-key value.

    Backends legitimately differ in how they surface a NULL group key
    (``None`` from SQL backends, the string ``'None'`` from the memory
    engine's factorized object arrays); the *partitioning* contract is
    what conformance pins down.
    """
    if value is None:
        return None
    if isinstance(value, float) and np.isnan(value):
        return None
    if isinstance(value, str) and value == "None":
        return None
    if isinstance(value, np.generic):
        value = value.item()
    return value


def groups_of(table: Table, key: str, measure: str) -> dict:
    """``{normalized key -> aggregate value}`` for one result table."""
    keys = [normalize_key(v) for v in table.column(key)]
    values = [float(v) for v in table.column(measure)]
    assert len(set(keys)) == len(keys), f"duplicate groups in {keys}"
    return dict(zip(keys, values))


def assert_same_groups(left: Table, right: Table, key: str, measure: str):
    """Two result tables describe the same group -> value mapping."""
    lhs, rhs = groups_of(left, key, measure), groups_of(right, key, measure)
    assert set(lhs) == set(rhs)
    for group in lhs:
        np.testing.assert_allclose(
            lhs[group], rhs[group], rtol=1e-9, atol=1e-12,
            err_msg=f"group {group!r} of {measure}",
        )
