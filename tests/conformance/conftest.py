"""Backend conformance kit: one parameterized fixture, every backend.

Every registered :class:`~repro.backends.Backend` implementation runs the
same contract suite; a new backend joins by adding one factory line to
``conformance_kit.BACKEND_FACTORIES``. The ``duckdb`` cell skips cleanly
when the optional wheel is absent, and the ``SEEDB_CONFORMANCE_BACKENDS``
environment variable (comma-separated names) restricts the run to a
subset — the hook the CI backend matrix uses to run one
(Python, backend) cell per job.
"""

from __future__ import annotations

import os

import pytest

from conformance_kit import BACKEND_FACTORIES, conformance_table, duckdb_available
from repro.db.table import Table


def _selected_backends() -> list[str]:
    raw = os.environ.get("SEEDB_CONFORMANCE_BACKENDS", "")
    if not raw.strip():
        return list(BACKEND_FACTORIES)
    names = [name.strip() for name in raw.split(",") if name.strip()]
    unknown = [name for name in names if name not in BACKEND_FACTORIES]
    if unknown:
        raise ValueError(
            f"SEEDB_CONFORMANCE_BACKENDS names unknown backends {unknown}; "
            f"known: {sorted(BACKEND_FACTORIES)}"
        )
    return names


def backend_params():
    params = []
    for name in _selected_backends():
        marks = []
        if name == "duckdb" and not duckdb_available():
            marks.append(
                pytest.mark.skip(reason="optional 'duckdb' wheel not installed")
            )
        params.append(pytest.param(name, marks=marks, id=name))
    return params


@pytest.fixture(params=backend_params())
def backend_name(request) -> str:
    return request.param


@pytest.fixture
def make_backend(backend_name):
    """Factory fixture: every backend it constructs is closed on teardown."""
    created = []

    def _make():
        backend = BACKEND_FACTORIES[backend_name]()
        created.append(backend)
        return backend

    yield _make
    for backend in created:
        backend.close()


@pytest.fixture
def contract_table() -> Table:
    return conformance_table()


@pytest.fixture
def backend(make_backend, contract_table):
    """One backend of the matrix with the contract table registered."""
    instance = make_backend()
    instance.register_table(contract_table)
    return instance
