"""Contract: metadata discovery, registration, accounting, lifecycle."""

import dataclasses

import numpy as np
import pytest

from repro.backends.base import THREADING_MODELS, BackendCapabilities
from repro.db.query import AggregateQuery, RowSelectQuery
from repro.db.aggregates import Aggregate
from repro.db.types import AttributeRole
from repro.util.errors import ReproError


class TestCapabilityDeclaration:
    def test_capabilities_declared(self, backend):
        caps = backend.capabilities
        assert isinstance(caps, BackendCapabilities)
        for flag in (
            "grouping_sets",
            "parallel_queries",
            "native_var_std",
            "native_sampling",
            "zero_copy_extract",
        ):
            assert isinstance(getattr(caps, flag), bool), flag
        assert caps.threading_model in THREADING_MODELS

    def test_capabilities_are_immutable(self, backend):
        with pytest.raises(dataclasses.FrozenInstanceError):
            backend.capabilities.grouping_sets = not backend.capabilities.grouping_sets

    def test_name_declared(self, backend):
        assert backend.name
        assert isinstance(backend.name, str)


class TestSchemaDiscovery:
    def test_schema_preserves_columns_and_roles(self, backend, contract_table):
        schema = backend.schema("conformance")
        assert schema.names == contract_table.schema.names
        assert [spec.role for spec in schema] == [
            AttributeRole.DIMENSION,
            AttributeRole.DIMENSION,
            AttributeRole.MEASURE,
            AttributeRole.MEASURE,
        ]

    def test_row_count(self, backend):
        assert backend.row_count("conformance") == 16

    def test_has_table(self, backend):
        assert backend.has_table("conformance")
        assert not backend.has_table("missing")

    def test_unknown_table_raises(self, backend):
        with pytest.raises(ReproError):
            backend.schema("missing")
        with pytest.raises(ReproError):
            backend.row_count("missing")
        with pytest.raises(ReproError):
            backend.execute(RowSelectQuery("missing"))

    def test_fetch_table_roundtrip(self, backend, contract_table):
        fetched = backend.fetch_table("conformance")
        assert fetched.num_rows == 16
        assert fetched.schema.names == contract_table.schema.names
        # NaN measures survive the trip (as NaN, not 0 or a crash).
        amounts = np.asarray(fetched.column("amount"), dtype=float)
        assert int(np.isnan(amounts).sum()) == 1
        np.testing.assert_allclose(
            np.nansum(amounts), np.nansum(contract_table.column("amount"))
        )

    def test_fetch_table_max_rows(self, backend):
        assert backend.fetch_table("conformance", max_rows=5).num_rows == 5
        assert backend.fetch_table("conformance", max_rows=1000).num_rows == 16


class TestRegistration:
    def test_double_register_rejected(self, backend, contract_table):
        with pytest.raises(ReproError):
            backend.register_table(contract_table)
        backend.register_table(contract_table, replace=True)
        assert backend.row_count("conformance") == 16

    def test_drop_table(self, backend, contract_table):
        backend.register_table(contract_table.rename("doomed"))
        assert backend.has_table("doomed")
        backend.drop_table("doomed")
        assert not backend.has_table("doomed")
        with pytest.raises(ReproError):
            backend.drop_table("doomed")

    def test_data_version_bumps_on_writes_only(self, backend, contract_table):
        version = backend.data_version
        backend.register_table(contract_table.rename("other"))
        assert backend.data_version > version

        version = backend.data_version
        backend.execute(RowSelectQuery("conformance"))
        backend.execute(
            AggregateQuery("conformance", ("product",), (Aggregate("count"),))
        )
        backend.fetch_table("conformance", max_rows=3)
        assert backend.data_version == version  # reads never bump

        backend.drop_table("other")
        assert backend.data_version > version

    def test_derived_tables_do_not_bump_data_version(self, backend, contract_table):
        version = backend.data_version
        backend.create_sample("conformance", "conformance_sample", 1.0, seed=3)
        assert backend.has_table("conformance_sample")
        backend.register_derived(contract_table.rename("conformance_derived"))
        assert backend.has_table("conformance_derived")
        assert backend.data_version == version


class TestAccounting:
    def test_execute_counts_one_logical_query(self, backend):
        queries = backend.queries_executed
        statements = backend.statements_executed
        backend.execute(
            AggregateQuery("conformance", ("product",), (Aggregate("count"),))
        )
        assert backend.queries_executed == queries + 1
        assert backend.statements_executed == statements + 1

    def test_statements_never_exceed_queries(self, backend):
        from repro.db.query import GroupingSetsQuery

        backend.reset_counters()
        backend.execute(RowSelectQuery("conformance"))
        backend.execute_grouping_sets(
            GroupingSetsQuery(
                "conformance",
                (("region",), ("product",)),
                (Aggregate("count"),),
            )
        )
        assert 0 < backend.statements_executed <= backend.queries_executed

    def test_reset_counters(self, backend):
        backend.execute(RowSelectQuery("conformance"))
        backend.reset_counters()
        assert backend.queries_executed == 0
        assert backend.statements_executed == 0


class TestLifecycle:
    def test_close_is_idempotent(self, make_backend, contract_table):
        backend = make_backend()
        backend.register_table(contract_table)
        backend.close()
        backend.close()  # second close must be a no-op, not an error

    def test_close_releases_connections(self, make_backend, contract_table):
        backend = make_backend()
        backend.register_table(contract_table)
        backend.execute(RowSelectQuery("conformance"))
        if not hasattr(backend, "open_connections"):
            pytest.skip("backend does not track connections")
        assert backend.open_connections > 0
        backend.close()
        assert backend.open_connections == 0
