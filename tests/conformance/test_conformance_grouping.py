"""Contract: aggregation semantics, grouping sets, flag partitioning.

The semantic core of the kit: every backend must aggregate like SQL
(NaN/NULL-skipping), keep a grouping-sets result bit-identical to the
per-set single queries (including NULL *data* groups, which native
GROUPING SETS and the UNION ALL emulation must both keep distinct from
their "key absent from this set" placeholder NULLs), and partition
flag-combined reference queries exactly.
"""

import numpy as np
import pytest

from conformance_kit import assert_same_groups, groups_of, normalize_key
from repro.db.aggregates import Aggregate
from repro.db.expressions import col
from repro.db.query import AggregateQuery, FlagColumn, GroupingSetsQuery
from repro.optimizer.extract import FLAG_NAME


def nan_aware(values):
    """Ground-truth aggregate input: the non-NaN values of a group."""
    arr = np.asarray(values, dtype=float)
    return arr[~np.isnan(arr)]


class TestAggregationSemantics:
    AGGREGATES = (
        Aggregate("sum", "amount"),
        Aggregate("avg", "amount"),
        Aggregate("min", "amount"),
        Aggregate("max", "amount"),
        Aggregate("count"),
        Aggregate("var", "amount"),
        Aggregate("std", "amount"),
    )

    def test_groupby_matches_ground_truth(self, backend, contract_table):
        result = backend.execute(
            AggregateQuery("conformance", ("product",), self.AGGREGATES)
        )
        products = [normalize_key(v) for v in contract_table.column("product")]
        amounts = np.asarray(contract_table.column("amount"), dtype=float)
        for group in ("p0", "p1"):
            rows = [i for i, p in enumerate(products) if p == group]
            clean = nan_aware(amounts[rows])
            expected = {
                "sum(amount)": clean.sum(),
                "avg(amount)": clean.mean(),
                "min(amount)": clean.min(),
                "max(amount)": clean.max(),
                "count(*)": float(len(rows)),
                "var(amount)": clean.var(),
                "std(amount)": clean.std(),
            }
            for alias, value in expected.items():
                got = groups_of(result, "product", alias)[group]
                np.testing.assert_allclose(
                    got, value, rtol=1e-9, err_msg=f"{alias} of {group}"
                )

    def test_null_dimension_forms_its_own_group(self, backend, contract_table):
        result = backend.execute(
            AggregateQuery("conformance", ("region",), (Aggregate("count"),))
        )
        groups = groups_of(result, "region", "count(*)")
        # 2 genuine NULL region rows, partitioned away from r0/r1/r2.
        assert groups[None] == 2.0
        assert groups["r0"] == 6.0
        assert sum(groups.values()) == 16.0

    def test_predicate_pushdown(self, backend):
        result = backend.execute(
            AggregateQuery(
                "conformance",
                ("region",),
                (Aggregate("count"),),
                col("product") == "p0",
            )
        )
        groups = groups_of(result, "region", "count(*)")
        assert sum(groups.values()) == 8.0


class TestGroupingSets:
    SETS = (("region",), ("product",))
    AGGREGATES = (Aggregate("sum", "units"), Aggregate("count"))

    def query(self, predicate=None):
        return GroupingSetsQuery("conformance", self.SETS, self.AGGREGATES, predicate)

    def test_matches_per_set_single_queries(self, backend):
        combined = backend.execute_grouping_sets(self.query())
        singles = [backend.execute(q) for q in self.query().as_single_queries()]
        assert len(combined) == len(singles) == 2
        for merged, single, (key,) in zip(combined, singles, self.SETS):
            for alias in ("sum(units)", "count(*)"):
                assert_same_groups(merged, single, key, alias)

    def test_null_group_disambiguation(self, backend):
        """A NULL *data* value in one set's key must stay a real group of
        that set and never leak into (or absorb rows of) the other set —
        the exact confusion native GROUPING SETS placeholders invite."""
        region_result, product_result = backend.execute_grouping_sets(self.query())
        region_groups = groups_of(region_result, "region", "count(*)")
        product_groups = groups_of(product_result, "product", "count(*)")
        assert region_groups[None] == 2.0
        assert None not in product_groups  # product has no NULLs
        assert sum(region_groups.values()) == 16.0
        assert sum(product_groups.values()) == 16.0

    def test_with_predicate(self, backend):
        predicate = col("units") > 1.0
        combined = backend.execute_grouping_sets(self.query(predicate))
        singles = [
            backend.execute(q) for q in self.query(predicate).as_single_queries()
        ]
        for merged, single, (key,) in zip(combined, singles, self.SETS):
            assert_same_groups(merged, single, key, "count(*)")

    def test_logical_query_accounting_follows_capability(self, backend):
        """Native shared scans count once; emulations count one per set."""
        backend.reset_counters()
        backend.execute_grouping_sets(self.query())
        expected = 1 if backend.capabilities.grouping_sets else len(self.SETS)
        assert backend.queries_executed == expected
        assert backend.statements_executed == 1

    def test_single_set_degenerates_to_plain_query(self, backend):
        (only,) = backend.execute_grouping_sets(
            GroupingSetsQuery("conformance", (("product",),), self.AGGREGATES)
        )
        single = backend.execute(
            AggregateQuery("conformance", ("product",), self.AGGREGATES)
        )
        assert_same_groups(only, single, "product", "sum(units)")


class TestFlagPartitioning:
    """The combine-target/comparison mechanism: ``GROUP BY (flag, a)``."""

    def flag_query(self):
        return AggregateQuery(
            "conformance",
            (FlagColumn(FLAG_NAME, col("product") == "p0"), "region"),
            (Aggregate("sum", "units"), Aggregate("count")),
        )

    def test_partitions_are_exact(self, backend, contract_table):
        result = backend.execute(self.flag_query())
        flags = np.asarray(result.column(FLAG_NAME), dtype=int)
        assert set(flags.tolist()) <= {0, 1}

        products = [normalize_key(v) for v in contract_table.column("product")]
        regions = [normalize_key(v) for v in contract_table.column("region")]
        units = np.asarray(contract_table.column("units"), dtype=float)
        keys = [normalize_key(v) for v in result.column("region")]
        sums = np.asarray(result.column("sum(units)"), dtype=float)
        for flag, key, total in zip(flags, keys, sums):
            rows = [
                i
                for i in range(16)
                if regions[i] == key and (products[i] == "p0") == bool(flag)
            ]
            np.testing.assert_allclose(total, units[rows].sum())

    def test_partitions_cover_the_table(self, backend):
        result = backend.execute(self.flag_query())
        counts = np.asarray(result.column("count(*)"), dtype=float)
        assert counts.sum() == 16.0

    def test_flag_partition_agrees_with_predicate_queries(self, backend):
        """flag=1 rows == the target query, flag=0 == its complement."""
        result = backend.execute(self.flag_query())
        flags = np.asarray(result.column(FLAG_NAME), dtype=int)
        for flag, predicate in (
            (1, col("product") == "p0"),
            (0, col("product") != "p0"),
        ):
            direct = backend.execute(
                AggregateQuery(
                    "conformance", ("region",), (Aggregate("sum", "units"),), predicate
                )
            )
            expected = groups_of(direct, "region", "sum(units)")
            got = {
                normalize_key(key): float(value)
                for f, key, value in zip(
                    flags, result.column("region"), result.column("sum(units)")
                )
                if int(f) == flag
            }
            assert got == pytest.approx(expected)
