"""Contract: sample materialization, native and client-side."""

import dataclasses

import numpy as np
import pytest

from repro.backends.base import materialize_sample
from repro.util.errors import ReproError


def sorted_rows(table):
    return sorted(map(repr, table.to_rows()))


class TestNativeSampling:
    def test_full_fraction_keeps_every_row(self, backend):
        name = backend.create_sample("conformance", "s_full", 1.0, seed=5)
        assert backend.has_table(name)
        assert backend.row_count(name) == 16

    def test_sample_preserves_schema(self, backend):
        name = backend.create_sample("conformance", "s_schema", 0.5, seed=5)
        assert backend.schema(name).names == backend.schema("conformance").names

    def test_sampling_is_deterministic(self, backend):
        first = backend.create_sample("conformance", "s_a", 0.5, seed=9)
        second = backend.create_sample("conformance", "s_b", 0.5, seed=9)
        assert sorted_rows(backend.fetch_table(first)) == sorted_rows(
            backend.fetch_table(second)
        )

    def test_invalid_fraction_rejected(self, backend):
        for fraction in (0.0, -0.5, 1.5):
            with pytest.raises(ReproError):
                backend.create_sample("conformance", "s_bad", fraction)

    def test_sample_of_unknown_table_rejected(self, backend):
        with pytest.raises(ReproError):
            backend.create_sample("missing", "s_missing", 0.5)


class TestClientSideFallback:
    """Flipping ``native_sampling`` must reroute, not break, sampling."""

    @pytest.fixture
    def fallback_backend(self, backend, monkeypatch):
        monkeypatch.setattr(
            backend,
            "capabilities",
            dataclasses.replace(backend.capabilities, native_sampling=False),
        )
        return backend

    def test_materialize_sample_routes_clientside(self, fallback_backend, monkeypatch):
        calls = []
        original = fallback_backend.create_sample_clientside

        def tracing(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(
            fallback_backend, "create_sample_clientside", tracing
        )
        name = materialize_sample(fallback_backend, "conformance", "s_client", 0.5)
        assert calls
        assert fallback_backend.has_table(name)

    def test_clientside_sample_preserves_schema_and_rows(self, fallback_backend):
        name = materialize_sample(
            fallback_backend, "conformance", "s_client_full", 1.0, seed=2
        )
        sample = fallback_backend.fetch_table(name)
        assert sample.schema.names == fallback_backend.schema("conformance").names
        assert sample.num_rows == 16
        amounts = np.asarray(sample.column("amount"), dtype=float)
        assert int(np.isnan(amounts).sum()) == 1  # NaN survives the round trip

    def test_clientside_sample_does_not_bump_data_version(self, fallback_backend):
        version = fallback_backend.data_version
        materialize_sample(fallback_backend, "conformance", "s_client_v", 0.5, seed=3)
        assert fallback_backend.data_version == version

    def test_clientside_is_deterministic(self, fallback_backend):
        first = materialize_sample(
            fallback_backend, "conformance", "s_c1", 0.5, seed=11
        )
        second = materialize_sample(
            fallback_backend, "conformance", "s_c2", 0.5, seed=11
        )
        assert sorted_rows(fallback_backend.fetch_table(first)) == sorted_rows(
            fallback_backend.fetch_table(second)
        )

    def test_invalid_fraction_rejected(self, fallback_backend):
        with pytest.raises(ReproError):
            materialize_sample(fallback_backend, "conformance", "s_bad", 0.0)
