"""Contract: the planner's statistics pass and the cost-based choice.

Two promises every backend must keep:

* ``collect_statistics`` is *cheap and invisible* — at most two logical
  metadata queries, zero view-query round trips, and never a
  ``data_version`` bump (a stats pass must not invalidate caches) — and
  the pushed SQL path agrees exactly with the client-side numpy fallback.
* The cost-based planner is *equivalence-preserving* — whatever candidate
  it picks, the top-k recommendations are bit-identical to the static
  planner's, across every combining mode.
"""

import pytest

from conformance_kit import medium_workload
from repro.backends.base import collect_statistics
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.metadata.stats import profile_from_table
from repro.optimizer.plan import GroupByCombining


class TestStatisticsContract:
    def test_stats_cost_and_invisibility(self, backend):
        """<= 2 logical metadata queries, 0 view queries, no version bump."""
        version = backend.data_version
        queries = backend.queries_executed
        metadata_queries = backend.metadata_queries_executed

        profile = collect_statistics(backend, "conformance")

        assert backend.data_version == version
        assert backend.queries_executed == queries
        assert backend.metadata_queries_executed - metadata_queries <= 2
        assert profile.n_rows == 16

    def test_source_matches_capability_declaration(self, backend):
        profile = collect_statistics(backend, "conformance")
        expected = "pushed" if backend.capabilities.stats_pushdown else "clientside"
        assert profile.source == expected

    def test_pushed_agrees_with_clientside(self, backend, contract_table):
        """Both paths profile the NULL-bearing contract table identically."""
        collected = collect_statistics(backend, "conformance")
        reference = profile_from_table(contract_table)
        assert set(collected.attributes) == set(reference.attributes)
        assert collected.n_rows == reference.n_rows
        for name, expected in reference.attributes.items():
            actual = collected[name]
            assert actual.n_distinct == expected.n_distinct, name
            assert actual.null_fraction == pytest.approx(
                expected.null_fraction
            ), name
            assert actual.max_group_fraction == pytest.approx(
                expected.max_group_fraction
            ), name

    def test_region_nulls_are_profiled_not_counted_as_a_group(self, backend):
        """The contract table's NULL region rows: excluded from distinct
        and group-size accounting, surfaced as the null fraction."""
        profile = collect_statistics(backend, "conformance")
        region = profile["region"]
        assert region.n_distinct == 3  # r0/r1/r2, NULL excluded
        assert region.null_fraction == pytest.approx(2 / 16)
        assert region.max_group_fraction == pytest.approx(6 / 14)


class TestCostBasedEquivalence:
    MODES = (
        GroupByCombining.AUTO,
        GroupByCombining.GROUPING_SETS,
        GroupByCombining.ROLLUP,
        GroupByCombining.NONE,
    )

    def top_k(self, make_backend, table, query, config):
        backend = make_backend()
        backend.register_table(table)
        with SeeDB(backend, config) as seedb:
            result = seedb.recommend(query, k=5)
        return [(view.spec, view.utility) for view in result.recommendations]

    @pytest.mark.parametrize("mode", MODES, ids=lambda m: m.value)
    def test_top_k_bit_identical_to_static_planner(self, make_backend, mode):
        table, query = medium_workload()
        cost_based = self.top_k(
            make_backend, table, query, SeeDBConfig(groupby_combining=mode)
        )
        static = self.top_k(
            make_backend,
            table,
            query,
            SeeDBConfig(groupby_combining=mode, cost_based_planning=False),
        )
        assert cost_based == static
