"""Contract: thread-safety smoke and exact accounting under concurrency."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from conformance_kit import groups_of
from repro.db.aggregates import Aggregate
from repro.db.expressions import col
from repro.db.query import AggregateQuery

N_THREADS = 4
QUERIES_PER_THREAD = 8


def view_query(step: int) -> AggregateQuery:
    dimension = ("region", "product")[step % 2]
    predicate = None if step % 4 < 2 else col("units") > 1.0
    return AggregateQuery(
        "conformance",
        (dimension,),
        (Aggregate("sum", "units"), Aggregate("count")),
        predicate,
    )


@pytest.fixture
def concurrent_backend(backend):
    if not backend.capabilities.parallel_queries:
        pytest.skip("backend declares parallel_queries=False")
    return backend


def test_concurrent_results_match_serial(concurrent_backend):
    backend = concurrent_backend
    serial = [
        groups_of(
            backend.execute(view_query(step)),
            view_query(step).key_names[0],
            "sum(units)",
        )
        for step in range(QUERIES_PER_THREAD)
    ]

    def worker(_thread: int):
        out = []
        for step in range(QUERIES_PER_THREAD):
            result = backend.execute(view_query(step))
            out.append(groups_of(result, view_query(step).key_names[0], "sum(units)"))
        return out

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        results = list(pool.map(worker, range(N_THREADS)))

    for thread_results in results:
        assert len(thread_results) == len(serial)
        for got, want in zip(thread_results, serial):
            assert set(got) == set(want)
            for key in want:
                np.testing.assert_allclose(got[key], want[key])


def test_query_accounting_is_exact_under_concurrency(concurrent_backend):
    backend = concurrent_backend
    backend.reset_counters()

    def worker(_thread: int):
        for step in range(QUERIES_PER_THREAD):
            backend.execute(view_query(step))

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        list(pool.map(worker, range(N_THREADS)))

    assert backend.queries_executed == N_THREADS * QUERIES_PER_THREAD
    assert backend.statements_executed == N_THREADS * QUERIES_PER_THREAD


def test_concurrent_registration_and_reads(concurrent_backend, contract_table):
    """Reads racing a derived-table registration stay consistent."""
    backend = concurrent_backend

    def reader(_thread: int):
        for _ in range(5):
            result = backend.execute(
                AggregateQuery("conformance", ("product",), (Aggregate("count"),))
            )
            assert sum(groups_of(result, "product", "count(*)").values()) == 16.0

    def writer(_thread: int):
        for i in range(5):
            backend.register_derived(contract_table.rename(f"scratch_{i}"))

    with ThreadPoolExecutor(max_workers=4) as pool:
        futures = [pool.submit(reader, t) for t in range(3)]
        futures.append(pool.submit(writer, 0))
        for future in futures:
            future.result(timeout=60)
