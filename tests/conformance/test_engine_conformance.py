"""Contract: the full recommendation pipeline on every backend.

Beyond per-query semantics, a conforming backend must (a) let the planner
pick its execution paths purely from the declared capabilities and (b)
produce the same recommendations the memory reference backend does for
the same deterministic workload.
"""

import numpy as np
import pytest

from conformance_kit import BACKEND_FACTORIES, medium_workload
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.optimizer.plan import GroupByCombining, MultiDimStep


def run_recommend(backend_factory, config):
    table, query = medium_workload()
    backend = backend_factory()
    try:
        backend.register_table(table)
        seedb = SeeDB(backend, config)
        result = seedb.recommend(query, k=5)
        queries = backend.queries_executed
        seedb.close()
        return result, queries
    finally:
        backend.close()


BASE_CONFIG = dict(
    metric="js",
    aggregate_functions=("sum", "avg"),
    prune_low_variance=False,
    prune_cardinality=False,
    prune_correlated=False,
)


class TestPipelineEquivalence:
    @pytest.mark.parametrize(
        "combining",
        [GroupByCombining.NONE, GroupByCombining.AUTO],
        ids=["no_combining", "auto_combining"],
    )
    def test_matches_memory_reference(self, backend_name, combining):
        config = SeeDBConfig(groupby_combining=combining, **BASE_CONFIG)
        reference, _ = run_recommend(BACKEND_FACTORIES["memory"], config)
        result, _ = run_recommend(BACKEND_FACTORIES[backend_name], config)
        assert [v.spec.label for v in result.recommendations] == [
            v.spec.label for v in reference.recommendations
        ]
        np.testing.assert_allclose(
            [v.utility for v in result.recommendations],
            [v.utility for v in reference.recommendations],
            rtol=1e-6,
        )

    def test_sampling_pipeline_runs(self, backend_name):
        config = SeeDBConfig(
            sample_fraction=0.8,
            min_rows_for_sampling=0,
            sample_seed=7,
            **BASE_CONFIG,
        )
        result, _ = run_recommend(BACKEND_FACTORIES[backend_name], config)
        assert result.recommendations


class TestCapabilityDrivenPlanning:
    def test_auto_combining_follows_declared_capability(self, backend):
        """AUTO picks the shared-scan step iff the *declaration* says so."""
        from repro.core.space import enumerate_views
        from repro.optimizer.plan import Planner, PlannerConfig

        views = enumerate_views(
            backend.schema("conformance"), functions=("sum", "avg")
        )
        plan = Planner(
            PlannerConfig(groupby_combining=GroupByCombining.AUTO)
        ).plan(
            views,
            "conformance",
            col("product") == "p0",
            {"region": 4, "product": 2},
            backend.capabilities,
        )
        uses_shared_scan = any(
            isinstance(step, MultiDimStep) for step in plan.steps
        )
        assert uses_shared_scan == backend.capabilities.grouping_sets

    def test_shared_scan_issues_fewer_queries_than_separate(self, backend_name):
        """On backends with native grouping sets, AUTO must beat NONE on
        issued logical queries for the same view space."""
        auto = SeeDBConfig(groupby_combining=GroupByCombining.AUTO, **BASE_CONFIG)
        none = SeeDBConfig(groupby_combining=GroupByCombining.NONE, **BASE_CONFIG)
        result_auto, queries_auto = run_recommend(
            BACKEND_FACTORIES[backend_name], auto
        )
        result_none, queries_none = run_recommend(
            BACKEND_FACTORIES[backend_name], none
        )
        if BACKEND_FACTORIES[backend_name].capabilities.grouping_sets:
            assert queries_auto < queries_none
        else:
            assert queries_auto <= queries_none
        assert [v.spec.label for v in result_auto.recommendations] == [
            v.spec.label for v in result_none.recommendations
        ]


@pytest.fixture
def query_preview(backend):
    return backend.execute(RowSelectQuery("conformance", col("product") == "p0"))


def test_row_select_preview(query_preview):
    assert query_preview.num_rows == 8
