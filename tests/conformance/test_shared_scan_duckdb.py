"""DuckDB-only: the native shared-scan path against its own fallback.

The acceptance probe for the paper's headline optimization on a real
columnar engine: one DuckDB backend running native GROUPING SETS must
issue strictly fewer logical queries (and no more statements) than the
same backend forced onto the UNION ALL emulation, for the same view
space, while recommending identical views. Skips cleanly when the
optional wheel is missing.
"""

import numpy as np
import pytest

from conformance_kit import duckdb_available, medium_workload
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.aggregates import Aggregate
from repro.db.query import GroupingSetsQuery
from repro.optimizer.plan import GroupByCombining

pytestmark = pytest.mark.skipif(
    not duckdb_available(), reason="optional 'duckdb' wheel not installed"
)


def make_backend(force_union_fallback: bool):
    from repro.backends.duckdb import DuckDbBackend

    return DuckDbBackend(force_union_fallback=force_union_fallback)


def run(force_union_fallback: bool):
    table, query = medium_workload()
    backend = make_backend(force_union_fallback)
    try:
        backend.register_table(table)
        config = SeeDBConfig(
            metric="js",
            aggregate_functions=("sum", "avg"),
            groupby_combining=GroupByCombining.AUTO,
            prune_low_variance=False,
            prune_cardinality=False,
            prune_correlated=False,
        )
        seedb = SeeDB(backend, config)
        result = seedb.recommend(query, k=5)
        counters = (backend.queries_executed, backend.statements_executed)
        seedb.close()
        return result, counters
    finally:
        backend.close()


def test_native_shared_scan_issues_fewer_queries_than_union_fallback():
    native_result, (native_queries, native_statements) = run(False)
    fallback_result, (fallback_queries, fallback_statements) = run(True)

    # Same recommendations either way — sharing is a physical optimization
    # (float tolerance: parallel aggregation may combine partials in
    # either plan's order).
    assert [v.spec.label for v in native_result.recommendations] == [
        v.spec.label for v in fallback_result.recommendations
    ]
    np.testing.assert_allclose(
        [v.utility for v in native_result.recommendations],
        [v.utility for v in fallback_result.recommendations],
        rtol=1e-6,
    )

    # The point: native GROUPING SETS shares the scan *and* the logical
    # query; the emulation still evaluates one arm per grouping set.
    assert native_queries < fallback_queries
    assert native_statements <= fallback_statements


def test_native_grouping_sets_count_one_logical_query():
    backend = make_backend(False)
    try:
        table, _query = medium_workload()
        backend.register_table(table)
        backend.reset_counters()
        backend.execute_grouping_sets(
            GroupingSetsQuery(
                "orders",
                (("region",), ("product",), ("band",)),
                (Aggregate("sum", "amount"), Aggregate("count")),
            )
        )
        assert backend.queries_executed == 1
        assert backend.statements_executed == 1
    finally:
        backend.close()


def test_union_fallback_counts_one_logical_query_per_set():
    backend = make_backend(True)
    try:
        table, _query = medium_workload()
        backend.register_table(table)
        backend.reset_counters()
        backend.execute_grouping_sets(
            GroupingSetsQuery(
                "orders",
                (("region",), ("product",), ("band",)),
                (Aggregate("sum", "amount"), Aggregate("count")),
            )
        )
        assert backend.queries_executed == 3
        assert backend.statements_executed == 1
    finally:
        backend.close()
