"""Shared fixtures: small canonical tables and backends."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.db.expressions import col
from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.testing import sanitizer

# SEEDB_SANITIZE=1 turns on the tsan-lite lock-order sanitizer for the
# whole run: every lock the code under test creates from here on is
# tracked, and an observed acquisition-order inversion raises instead of
# maybe deadlocking some other day. Installed at import time so locks
# born in module/fixture setup are covered too.
if sanitizer.enabled_by_env():
    sanitizer.install()


@pytest.fixture
def sales_table() -> Table:
    """A small deterministic sales table (the paper's running example shape).

    12 rows; 4 Laserwave rows with the Table 1 amounts, 8 "Other" rows of
    10.0 each spread over the same stores.
    """
    stores = [
        "Cambridge, MA",
        "Seattle, WA",
        "New York, NY",
        "San Francisco, CA",
    ]
    return Table.from_columns(
        "sales",
        {
            "store": stores * 3,
            "product": ["Laserwave"] * 4 + ["Other"] * 8,
            "month": [1, 2, 3, 4] * 3,
            "amount": [180.55, 145.50, 122.00, 90.13] + [10.0] * 8,
            "profit": [18.0, 14.0, 12.0, 9.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        },
        roles={
            "store": AttributeRole.DIMENSION,
            "product": AttributeRole.DIMENSION,
            "month": AttributeRole.DIMENSION,
            "amount": AttributeRole.MEASURE,
            "profit": AttributeRole.MEASURE,
        },
        semantics={"store": "geography", "month": "time"},
    )


@pytest.fixture
def laserwave_predicate():
    return col("product") == "Laserwave"


@pytest.fixture
def memory_backend(sales_table) -> MemoryBackend:
    backend = MemoryBackend()
    backend.register_table(sales_table)
    return backend


@pytest.fixture
def sqlite_backend(sales_table):
    backend = SqliteBackend()
    backend.register_table(sales_table)
    yield backend
    backend.close()


def make_medium_table() -> Table:
    """A deterministic ~3k-row table with a planted deviation.

    Products p0..p4 over regions r0..r5; rows of product p0 concentrate in
    region r0, everything else is spread uniformly (deterministically, via
    modular arithmetic — no RNG, so failures are reproducible by eye).
    """
    n = 3_000
    regions = [f"r{i % 6}" for i in range(n)]
    products = [f"p{(i // 6) % 5}" for i in range(n)]
    for i in range(n):
        if products[i] == "p0" and i % 3 != 0:
            regions[i] = "r0"
    amounts = [float(10 + (i * 7) % 90) for i in range(n)]
    quantity = [1 + (i % 5) for i in range(n)]
    return Table.from_columns(
        "orders",
        {
            "region": regions,
            "product": products,
            "quantity_band": [f"q{q}" for q in quantity],
            "amount": amounts,
            "units": [float(q) for q in quantity],
        },
        roles={
            "region": AttributeRole.DIMENSION,
            "product": AttributeRole.DIMENSION,
            "quantity_band": AttributeRole.DIMENSION,
            "amount": AttributeRole.MEASURE,
            "units": AttributeRole.MEASURE,
        },
    )


@pytest.fixture
def medium_table() -> Table:
    return make_medium_table()


@pytest.fixture
def nan_table() -> Table:
    """A table whose float measure contains NaN (SQL NULL semantics)."""
    return Table.from_columns(
        "readings",
        {
            "sensor": ["a", "a", "b", "b", "c"],
            "value": [1.0, float("nan"), 3.0, 5.0, float("nan")],
        },
        roles={
            "sensor": AttributeRole.DIMENSION,
            "value": AttributeRole.MEASURE,
        },
    )
