"""Integration tests for the declarative request API (ISSUE 4 acceptance).

One canonical :class:`RecommendationRequest` flows through SeeDB,
SeeDBService, AnalystSession, and HTTP; ``from_sql()`` + ``Reference.query()``
produce correct query-vs-query recommendations on both backends;
``recommend_iter()`` delivers monotonically-refining partial top-k whose
final round is bit-identical to the blocking result; and all pre-existing
call signatures remain equivalent to their request-API forms via the
deprecation adapters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import PartialResult, RecommendationRequest, Reference
from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.basic import BasicFramework
from repro.core.config import SeeDBConfig
from repro.core.incremental import IncrementalRecommender
from repro.core.multiview import MultiViewRecommender
from repro.core.recommender import SeeDB
from repro.core.space import enumerate_views
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.frontend.session import AnalystSession
from repro.service import single_backend_service

SQL = "SELECT * FROM orders WHERE product = 'p0'"


@pytest.fixture(params=["memory", "sqlite"])
def backend(request, medium_table):
    if request.param == "memory":
        backend = MemoryBackend()
        backend.register_table(medium_table)
        yield backend
    else:
        backend = SqliteBackend()
        backend.register_table(medium_table)
        yield backend
        backend.close()


def assert_same_scores(result_a, result_b):
    """Bit-identical utilities and the same ranked specs."""
    assert [v.spec for v in result_a.recommendations] == [
        v.spec for v in result_b.recommendations
    ]
    assert [v.utility for v in result_a.recommendations] == [
        v.utility for v in result_b.recommendations
    ]
    assert set(result_a.all_scored) == set(result_b.all_scored)
    for spec, view in result_a.all_scored.items():
        assert view.utility == result_b.all_scored[spec].utility


class TestReferences:
    def test_query_vs_query_on_both_backends(self, backend):
        """Reference.query() compares two arbitrary selections correctly:
        utilities equal hand-computed distances of the two slices."""
        request = RecommendationRequest.from_sql(
            "SELECT * FROM orders WHERE product = 'p0'",
            reference=Reference.query("SELECT * FROM orders WHERE product = 'p1'"),
            k=3,
            dimensions=("region",),
            measures=("amount",),
        )
        with SeeDB(backend, SeeDBConfig(k=3)) as seedb:
            result = seedb.recommend(request)
            assert result.reference_description.startswith("query[")
            top = result.recommendations[0]

            # Hand-check one view against direct per-slice aggregation.
            from repro.metrics.normalize import align_series, normalize_distribution
            from repro.metrics.registry import get_metric
            from repro.optimizer.extract import table_series

            view = top.spec
            target = backend.execute(
                view.target_query("orders", col("product") == "p0")
            )
            reference = backend.execute(
                view.target_query("orders", col("product") == "p1")
            )
            t_keys, t_values = table_series(target, view.dimension, view.aggregate.alias)
            r_keys, r_values = table_series(
                reference, view.dimension, view.aggregate.alias
            )
            _groups, aligned_t, aligned_r = align_series(
                t_keys, t_values, r_keys, r_values
            )
            expected = get_metric("js").distance(
                normalize_distribution(aligned_t, SeeDBConfig().normalization),
                normalize_distribution(aligned_r, SeeDBConfig().normalization),
            )
            assert top.utility == pytest.approx(expected, abs=1e-12)

    def test_complement_flag_and_separate_paths_agree(self, backend):
        request = RecommendationRequest.from_sql(
            SQL, reference=Reference.complement(), k=3
        )
        combined = SeeDBConfig(k=3, combine_target_comparison=True)
        separate = SeeDBConfig(k=3, combine_target_comparison=False)
        with SeeDB(backend) as seedb:
            result_flag = seedb.recommend(request, config=combined)
            result_sep = seedb.recommend(request, config=separate)
        for spec, view in result_flag.all_scored.items():
            assert view.utility == pytest.approx(
                result_sep.all_scored[spec].utility, abs=1e-12
            )

    def test_table_reference_matches_legacy_default(self, backend):
        """An explicit Reference.table() is the pre-API behavior."""
        with SeeDB(backend, SeeDBConfig(k=3)) as seedb:
            legacy = seedb.recommend(SQL, k=3)
            via_request = seedb.recommend(
                RecommendationRequest.from_sql(SQL, reference=Reference.table(), k=3)
            )
        assert_same_scores(legacy, via_request)

    def test_query_reference_vs_equivalent_complement(self, backend):
        """query(everything-else) ≡ complement — two spellings, one row set."""
        complement = RecommendationRequest.from_sql(
            SQL, reference=Reference.complement(), k=3
        )
        spelled_out = RecommendationRequest.from_sql(
            SQL,
            reference=Reference.query("SELECT * FROM orders WHERE product != 'p0'"),
            k=3,
        )
        # Separate-queries config: both references then issue WHERE-filtered
        # comparison queries over identical row sets.
        config = SeeDBConfig(k=3, combine_target_comparison=False)
        with SeeDB(backend, config) as seedb:
            a = seedb.recommend(complement)
            b = seedb.recommend(spelled_out)
        for spec, view in a.all_scored.items():
            assert view.utility == pytest.approx(
                b.all_scored[spec].utility, abs=1e-12
            )


class TestAdapters:
    """Deprecation adapters produce bit-identical results to the request API."""

    def test_seedb_positional_equals_request(self, backend):
        query = RowSelectQuery("orders", col("product") == "p0")
        with SeeDB(backend, SeeDBConfig(k=4)) as seedb:
            legacy = seedb.recommend(query, k=4)
            request = seedb.recommend(
                RecommendationRequest(target=query, k=4)
            )
        assert_same_scores(legacy, request)

    def test_basic_framework_positional_equals_request(self, backend):
        basic = BasicFramework(backend)
        query = RowSelectQuery("orders", col("product") == "p0")
        legacy = basic.recommend(query, k=3)
        request = basic.recommend_request(
            RecommendationRequest(target=query, k=3)
        )
        assert_same_scores(legacy, request)

    def test_incremental_positional_equals_request(self, medium_table):
        views = enumerate_views(medium_table.schema)
        predicate = col("product") == "p0"
        legacy = IncrementalRecommender(medium_table).recommend(
            predicate, views, k=3, n_phases=5
        )
        request = RecommendationRequest(
            target=RowSelectQuery("orders", predicate),
            k=3,
            strategy="incremental",
            options={"n_phases": 5},
        )
        via_request = IncrementalRecommender(medium_table).recommend_request(
            request, views
        )
        assert [(v.spec, v.utility) for v in legacy.recommendations] == [
            (v.spec, v.utility) for v in via_request.recommendations
        ]
        assert legacy.utilities == via_request.utilities
        assert legacy.pruned_at_phase == via_request.pruned_at_phase

    def test_multiview_positional_equals_request(self, backend):
        query = RowSelectQuery("orders", col("product") == "p0")
        with MultiViewRecommender(backend) as legacy_rec:
            legacy = legacy_rec.recommend(query, k=3)
        with MultiViewRecommender(backend) as request_rec:
            via_request = request_rec.recommend_request(
                RecommendationRequest(target=query, k=3)
            )
        assert [(v.spec, v.utility) for v in legacy] == [
            (v.spec, v.utility) for v in via_request
        ]

    def test_request_metric_honored_by_every_canonical_entry(self, medium_table):
        """recommend_request must score with the request's metric, not the
        recommender's constructor default — a migrating caller would
        otherwise get silently wrong rankings."""
        backend = MemoryBackend()
        backend.register_table(medium_table)
        query = RowSelectQuery("orders", col("product") == "p0")
        request = RecommendationRequest(target=query, k=3, metric="euclidean")

        euclid_basic = BasicFramework(backend, metric="euclidean").recommend(query, k=3)
        via_request = BasicFramework(backend).recommend_request(request)
        assert_same_scores(euclid_basic, via_request)

        with MultiViewRecommender(backend, metric="euclidean") as expected_rec:
            expected = expected_rec.recommend(query, k=3)
        with MultiViewRecommender(backend) as request_rec:
            got = request_rec.recommend_request(request)
        assert [(v.spec, v.utility) for v in expected] == [
            (v.spec, v.utility) for v in got
        ]

        views = enumerate_views(medium_table.schema)
        bounded = RecommendationRequest(target=query, k=3, metric="total_variation")
        expected_inc = IncrementalRecommender(
            medium_table, metric="total_variation"
        ).recommend(query.predicate, views, k=3)
        got_inc = IncrementalRecommender(medium_table).recommend_request(
            bounded, views
        )
        assert expected_inc.utilities == got_inc.utilities
        from repro.api import ApiError

        with pytest.raises(ApiError):
            IncrementalRecommender(medium_table).recommend_request(
                RecommendationRequest(target=query, metric="kl"), views
            )

    def test_service_positional_equals_request(self, backend):
        with single_backend_service(backend, SeeDBConfig(k=3)) as service:
            legacy = service.recommend(SQL, k=3, metric="euclidean")
            via_request = service.recommend(
                RecommendationRequest.from_sql(SQL, k=3, metric="euclidean")
            )
        assert_same_scores(legacy, via_request)


class TestProgressive:
    def test_stream_final_round_bit_identical_to_blocking(self, backend):
        request = RecommendationRequest.from_sql(
            SQL, k=3, strategy="incremental", options={"n_phases": 6}
        )
        with SeeDB(backend, SeeDBConfig(k=3)) as seedb:
            blocking = seedb.recommend(request)
            rounds = list(seedb.recommend_iter(request))
        assert all(isinstance(r, PartialResult) for r in rounds)
        partials, final = rounds[:-1], rounds[-1]
        assert final.is_final and final.result is not None
        assert not any(p.is_final for p in partials)
        # Partial rounds count up and carry non-empty top-k estimates.
        assert [p.round for p in partials] == list(range(1, len(partials) + 1))
        assert all(p.recommendations for p in partials)
        # Estimates refine monotonically toward the final answer: the last
        # partial round's estimates ARE the final utilities (same
        # accumulated state, same scorer), and pruning only shrinks the
        # candidate set.
        alive = [p.views_alive for p in partials]
        assert all(a >= b for a, b in zip(alive, alive[1:]))
        last = partials[-1]
        final_utilities = {v.spec: v.utility for v in final.result.recommendations}
        for view in last.recommendations[: len(final_utilities)]:
            if view.spec in final_utilities:
                assert view.utility == final_utilities[view.spec]
        # Bit-identical to the blocking incremental result.
        assert [(v.spec, v.utility) for v in final.result.recommendations] == [
            (v.spec, v.utility) for v in blocking.recommendations
        ]
        assert final.result.utilities == blocking.utilities

    def test_stream_with_query_reference(self, backend):
        request = RecommendationRequest.from_sql(
            "SELECT * FROM orders WHERE product = 'p0'",
            reference=Reference.query("SELECT * FROM orders WHERE product = 'p1'"),
            k=2,
            options={"n_phases": 4},
        )
        with SeeDB(backend) as seedb:
            rounds = list(seedb.recommend_iter(request))
            blocking = seedb.recommend(
                request if request.strategy == "incremental" else request
            )
        final = rounds[-1]
        assert final.is_final
        assert final.result.reference_description.startswith("query[")
        assert len(final.result.recommendations) == 2

    def test_service_stream_fans_out_one_execution(self, medium_table):
        from concurrent.futures import ThreadPoolExecutor

        backend = MemoryBackend()
        backend.register_table(medium_table)
        request = RecommendationRequest.from_sql(
            SQL, k=3, options={"n_phases": 4}
        )
        with single_backend_service(
            backend, SeeDBConfig(k=3), owned=True, max_workers=4
        ) as service:
            def consume(_):
                return [
                    (p.round, p.is_final)
                    for p in service.recommend_stream(request)
                ]

            with ThreadPoolExecutor(max_workers=4) as pool:
                sequences = list(pool.map(consume, range(4)))
            assert all(sequence == sequences[0] for sequence in sequences)
            assert service.stats.streams == 4
            assert service.stats.executions == 1
            assert service.stats.coalesced == 3

    def test_stream_rejects_unbounded_metric_on_every_path(self, medium_table):
        """The legacy (SQL-string) stream path validates the bounded-metric
        precondition exactly like the request path — streaming always runs
        the incremental machinery, so an unbounded metric must be refused
        before execution, not silently pruned with an invalid bound."""
        from repro.api import ApiError

        backend = MemoryBackend()
        backend.register_table(medium_table)
        with single_backend_service(backend, SeeDBConfig(k=3)) as service:
            with pytest.raises(ApiError) as excinfo:
                next(iter(service.recommend_stream(SQL, metric="kl")))
            assert excinfo.value.code == "invalid_value"
            with pytest.raises(ApiError):
                next(
                    iter(
                        service.recommend_stream(
                            RecommendationRequest.from_sql(SQL, metric="kl")
                        )
                    )
                )

    def test_unknown_backend_uses_wire_taxonomy(self, medium_table):
        from repro.api import ApiError

        backend = MemoryBackend()
        backend.register_table(medium_table)
        with single_backend_service(backend) as service:
            with pytest.raises(ApiError) as excinfo:
                service.recommend(SQL, backend="nope")
            assert excinfo.value.code == "unknown_backend"
            assert excinfo.value.field == "backend"

    def test_explicit_k_overrides_request_k_on_every_facade(self, medium_table):
        backend = MemoryBackend()
        backend.register_table(medium_table)
        query = RowSelectQuery("orders", col("product") == "p0")
        request = RecommendationRequest(target=query, k=2)
        with SeeDB(backend) as seedb:
            assert len(seedb.recommend(request, k=4).recommendations) == 4
        assert len(BasicFramework(backend).recommend(request, k=4).recommendations) == 4
        with MultiViewRecommender(backend) as multi:
            assert len(multi.recommend(request, k=4)) == 4

    def test_analyst_session_streams_and_records_history(self, backend):
        with single_backend_service(backend, SeeDBConfig(k=2)) as service:
            with AnalystSession(service=service) as session:
                rounds = list(session.issue_stream(SQL))
                assert rounds[-1].is_final
                assert session.last_result is rounds[-1].result


class TestViewSpaceFilters:
    def test_dimension_and_measure_filters_restrict_space(self, backend):
        request = RecommendationRequest.from_sql(
            "SELECT * FROM orders WHERE product = 'p0'",
            k=5,
            dimensions=("region", "quantity_band"),
            measures=("amount",),
        )
        with SeeDB(backend) as seedb:
            result = seedb.recommend(request)
        for view in result.all_scored:
            assert view.dimension in ("region", "quantity_band")
            assert view.measure in (None, "amount")
