"""Integration: the Figure 4 architecture flow, module by module.

Exercises the pipeline exactly as §3.1 narrates it — Metadata Collector →
Query Generator (enumerate + prune) → Optimizer → DBMS → View Processor →
top-k — asserting each stage's output feeds the next.
"""

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.core.space import enumerate_views, split_predicate_dimensions
from repro.core.topk import top_k_views
from repro.core.view_processor import ViewProcessor
from repro.datasets.synthetic import add_constant_column
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.metadata.collector import MetadataCollector
from repro.metrics.registry import get_metric
from repro.optimizer.plan import Planner, PlannerConfig
from repro.pruning.pipeline import PruningPipeline
from repro.pruning.variance import VariancePruner


class TestStageByStage:
    def test_manual_pipeline_matches_recommender(self, sales_table):
        table = add_constant_column(sales_table, "const_dim")
        backend = MemoryBackend()
        backend.register_table(table)
        predicate = col("product") == "Laserwave"

        # 1. Metadata Collector
        collector = MetadataCollector()
        metadata = collector.collect(table)
        assert metadata.stats.n_rows == 12

        # 2. Query Generator: enumerate + exclude predicate dims + prune
        candidates = enumerate_views(table.schema, functions=("sum", "avg"))
        candidates, excluded = split_predicate_dimensions(candidates, predicate)
        assert {v.dimension for v, _ in excluded} == {"product"}
        surviving, reports = PruningPipeline([VariancePruner()]).apply(
            candidates, metadata
        )
        assert len(surviving) < len(candidates)  # const_dim pruned
        pruned_dimensions = {v.dimension for v, _ in reports[0].pruned}
        assert pruned_dimensions == {"const_dim"}

        # 3. Optimizer
        cardinalities = {
            s.name: metadata.stats[s.name].n_distinct
            for s in table.schema.dimensions
        }
        plan = Planner(PlannerConfig()).plan(
            surviving, "sales", predicate, cardinalities, backend.capabilities
        )
        assert plan.total_queries() < 2 * len(surviving)  # sharing happened

        # 4. DBMS execution + 5. View Processor
        raw = plan.run(backend)
        processor = ViewProcessor(get_metric("js"))
        scored = processor.score_all(raw)
        assert set(scored) == set(surviving)

        # 6. top-k
        top = top_k_views(scored.values(), 3)
        assert len(top) == 3
        assert top[0].utility >= top[1].utility >= top[2].utility

        # The packaged recommender must agree with the manual pipeline.
        seedb = SeeDB(
            backend,
            SeeDBConfig(
                prune_cardinality=False,
                prune_correlated=False,
            ),
        )
        result = seedb.recommend(RowSelectQuery("sales", predicate), k=3)
        assert [v.spec for v in result.recommendations] == [v.spec for v in top]
        for spec, view in result.all_scored.items():
            assert view.utility == pytest.approx(scored[spec].utility)

    def test_phase_timings_recorded(self, memory_backend):
        seedb = SeeDB(memory_backend)
        result = seedb.recommend(
            RowSelectQuery("sales", col("product") == "Laserwave")
        )
        for phase in ("metadata", "enumerate", "prune", "plan", "execute",
                      "score", "select"):
            assert phase in result.stopwatch.phases

    def test_access_log_learns_from_queries(self, memory_backend):
        seedb = SeeDB(memory_backend)
        seedb.recommend(RowSelectQuery("sales", col("product") == "Laserwave"))
        log = seedb.metadata.access_log
        assert log.count("sales", "product") >= 1

    def test_sql_string_input(self, memory_backend):
        seedb = SeeDB(memory_backend)
        result = seedb.recommend(
            "SELECT * FROM sales WHERE product = 'Laserwave'", k=2
        )
        assert len(result.recommendations) == 2

    def test_bad_query_type_rejected(self, memory_backend):
        from repro.util.errors import QueryError

        with pytest.raises(QueryError, match="RowSelectQuery"):
            SeeDB(memory_backend).recommend(12345)
