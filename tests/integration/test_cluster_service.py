"""Integration: the multi-process sharded serving tier is serial-correct.

The acceptance bar for the cluster refactor mirrors the thread-tier one,
one level up: N clients hammering a :class:`ClusterService` must get
*bit-identical* results to a serial facade — on memory AND sqlite — with
identical concurrent requests coalescing onto ONE execution in ONE worker
process. On top of that, the process tier adds lifecycle guarantees the
thread tier never needed: workers are respawned after a crash (in-flight
work retried on a sibling shard), ``update_table`` invalidates every
replica and shared-memory cache entry atomically, and closing the service
leaves zero segments behind in ``/dev/shm``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.service import single_backend_cluster
from repro.service.shm import list_segments

from tests.conftest import make_medium_table
from tests.integration.test_service_concurrency import (
    QUERIES,
    fingerprint,
    make_backend,
)

N_CLIENTS = 8


def make_cluster(backend_kind: str, table, **kwargs):
    backend = make_backend(backend_kind, table)
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("max_workers", N_CLIENTS)
    return single_backend_cluster(
        backend,
        SeeDBConfig(k=3),
        owned=(backend_kind == "sqlite"),
        **kwargs,
    )


def serial_expected(backend_kind: str, table, queries=QUERIES) -> dict:
    backend = make_backend(backend_kind, table)
    facade = SeeDB(backend, SeeDBConfig(k=3))
    expected = {}
    for index, query in enumerate(queries):
        expected[index % len(queries)] = fingerprint(facade.recommend(query))
    facade.close()
    if backend_kind == "sqlite":
        backend.close()
    return expected


class TestCrossProcessCoalescing:
    @pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
    def test_identical_concurrent_requests_execute_once(self, backend_kind):
        """The headline guarantee: N identical concurrent requests → one
        execution, on one worker, bit-identical to serial — across
        process boundaries."""
        table = make_medium_table()
        expected = serial_expected(backend_kind, table)[0]
        service = make_cluster(backend_kind, table)
        try:
            service.start()
            barrier = threading.Barrier(N_CLIENTS)
            query = QUERIES[0]

            def client(_: int):
                barrier.wait(timeout=30)
                return fingerprint(service.recommend(query))

            with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
                results = list(pool.map(client, range(N_CLIENTS)))

            assert all(result == expected for result in results)
            stats = service.stats
            assert stats.requests == N_CLIENTS
            assert stats.executions == 1
            assert stats.failed == 0
            assert stats.coalesced + stats.result_cache_hits == N_CLIENTS - 1
        finally:
            service.close()

    @pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
    def test_mixed_workload_matches_serial(self, backend_kind):
        table = make_medium_table()
        expected = serial_expected(backend_kind, table)
        service = make_cluster(backend_kind, table)
        try:
            def client(worker: int) -> list:
                out = []
                for step in range(len(QUERIES)):
                    index = (worker + step) % len(QUERIES)
                    result = service.recommend(QUERIES[index])
                    out.append((index, fingerprint(result)))
                return out

            with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
                all_results = list(pool.map(client, range(N_CLIENTS)))

            for per_client in all_results:
                for index, got in per_client:
                    assert got == expected[index], (
                        f"cluster result for query #{index} diverged from serial"
                    )
            stats = service.stats
            assert stats.failed == 0
            assert stats.requests == N_CLIENTS * len(QUERIES)
            assert stats.executions < stats.requests
        finally:
            service.close()

    def test_coalescing_without_result_cache(self):
        """With the shm cache off (in-band transport) coalescing alone
        still collapses identical in-flight requests."""
        table = make_medium_table()
        service = make_cluster("memory", table, result_cache_size=0)
        try:
            barrier = threading.Barrier(N_CLIENTS)

            def client(_: int):
                barrier.wait(timeout=30)
                return fingerprint(service.recommend(QUERIES[0]))

            with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
                results = list(pool.map(client, range(N_CLIENTS)))
            assert len(set(results)) == 1
            assert service.stats.coalesced > 0
            assert service.stats.executions < N_CLIENTS
            assert service._shm.live_segments() == []  # nothing published
        finally:
            service.close()


class TestWorkerCrash:
    def test_kill_under_load_stays_serial_correct(self):
        """SIGKILL one worker while clients are mid-flight: every client
        still gets a bit-identical-to-serial answer (in-flight work is
        retried on a sibling), and the pool heals by respawning."""
        table = make_medium_table()
        expected = serial_expected("memory", table)
        # No result cache: every non-coalesced request round-trips to a
        # worker, so the kill window is full of real in-flight dispatches.
        service = make_cluster("memory", table, result_cache_size=0)
        try:
            service.start()
            total = N_CLIENTS * len(QUERIES)

            def client(worker: int) -> list:
                out = []
                for step in range(len(QUERIES)):
                    index = (worker + step) % len(QUERIES)
                    result = service.recommend(QUERIES[index])
                    out.append((index, fingerprint(result)))
                return out

            with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
                futures = [pool.submit(client, i) for i in range(N_CLIENTS)]
                # Gate the kill on observed progress — NOT a sleep: the
                # run must be provably mid-flight when the worker dies
                # (SIGKILL delivery is async; a timer can miss the load
                # window entirely on a slow or single-core box).
                deadline = time.monotonic() + 60
                while service.stats.completed < 2:
                    if time.monotonic() > deadline:
                        pytest.fail("no request progress before kill window")
                    time.sleep(0.005)
                victim = service.health()["workers"][0]
                os.kill(victim["pid"], signal.SIGKILL)
                all_results = [f.result(timeout=240) for f in futures]

            for per_client in all_results:
                for index, got in per_client:
                    assert got == expected[index], (
                        f"post-crash result for query #{index} diverged"
                    )
            stats = service.stats
            assert stats.failed == 0
            assert stats.requests == total
            assert stats.completed == stats.executions

            # The pool healed: the victim respawned (new generation) or —
            # if it died idle — is simply still the same live process.
            deadline = time.monotonic() + 30
            while True:
                workers = {w["id"]: w for w in service.health()["workers"]}
                healed = victim["id"] in workers and workers[victim["id"]]["alive"]
                if healed or time.monotonic() > deadline:
                    break
                time.sleep(0.05)
            assert healed, f"worker {victim['id']} never respawned: {workers}"
            assert workers[victim["id"]]["pid"] != victim["pid"]
            assert service.respawns >= 1

            # And the healed pool still serves correctly.
            assert fingerprint(service.recommend(QUERIES[0])) == expected[0]
        finally:
            service.close()


class TestInvalidation:
    def test_update_table_invalidates_every_replica_and_cache(self):
        """A table republish must bump ``data_version`` everywhere: the
        shm cache entry is retired, every worker replica re-executes on
        the new rows, and the answer matches a fresh serial engine."""
        table = make_medium_table()
        service = make_cluster("memory", table)
        try:
            query = QUERIES[0]
            before = fingerprint(service.recommend(query))
            assert fingerprint(service.recommend(query)) == before
            assert service.stats.result_cache_hits >= 1

            # Rebuild the table with visibly different data: clip to the
            # first 1000 rows, which changes every p0 distribution.
            from repro.db.table import Table

            updated = Table(
                name=table.name,
                schema=table.schema,
                columns={
                    name: column[:1000] for name, column in table.columns.items()
                },
            )
            service.update_table(updated)

            after = fingerprint(service.recommend(query))

            fresh_backend = MemoryBackend()
            fresh_backend.register_table(updated)
            fresh = SeeDB(fresh_backend, SeeDBConfig(k=3))
            assert after == fingerprint(fresh.recommend(query))
            fresh.close()
            assert after != before  # the data actually changed
            assert service.stats.failed == 0
        finally:
            service.close()


class TestLifecycle:
    def test_close_unlinks_every_shm_segment(self):
        table = make_medium_table()
        service = make_cluster("memory", table)
        prefix = service._shm.prefix
        try:
            for query in QUERIES:
                service.recommend(query)
            assert len(list_segments(prefix)) > 0  # cache is populated
        finally:
            service.close()
        assert list_segments(prefix) == [], "leaked /dev/shm segments"

    def test_close_is_idempotent_and_joins_workers(self):
        table = make_medium_table()
        service = make_cluster("memory", table)
        service.recommend(QUERIES[0])
        pids = [w["pid"] for w in service.health()["workers"]]
        service.close()
        service.close()  # second close is a no-op
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: the process is gone

    def test_health_reports_per_worker_liveness(self):
        table = make_medium_table()
        service = make_cluster("memory", table)
        try:
            assert service.health()["workers"] == []  # not started yet
            service.start()
            health = service.health()
            assert health["status"] == "ok"
            assert health["mode"] == "processes"
            assert len(health["workers"]) == 2
            assert all(w["alive"] for w in health["workers"])
            # "booted" flips when the router processes each worker's "up"
            # handshake — asynchronous, so poll.
            deadline = time.monotonic() + 30
            while not all(w["booted"] for w in service.health()["workers"]):
                if time.monotonic() > deadline:
                    pytest.fail(f"workers never booted: {service.health()}")
                time.sleep(0.02)
        finally:
            service.close()


class TestHttpFrontend:
    def test_healthz_and_stats_aggregate_workers(self):
        from repro.frontend.server import serve_in_thread

        table = make_medium_table()
        service = make_cluster("memory", table)
        service.start()
        server, thread = serve_in_thread(service)
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            def get(path: str) -> dict:
                with urllib.request.urlopen(base + path, timeout=30) as response:
                    return json.loads(response.read())

            def post(path: str, payload: dict) -> dict:
                request = urllib.request.Request(
                    base + path,
                    data=json.dumps(payload).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
                with urllib.request.urlopen(request, timeout=60) as response:
                    return json.loads(response.read())

            health = get("/healthz")
            assert health["status"] == "ok"
            assert health["mode"] == "processes"
            assert [w["alive"] for w in health["workers"]] == [True, True]

            payload = {"sql": "SELECT * FROM orders WHERE product = 'p0'"}
            first = post("/recommend", payload)
            second = post("/recommend", payload)
            assert first["recommendations"] == second["recommendations"]

            stats = get("/stats")
            assert stats["requests"] == 2
            assert stats["executions"] == 1
            assert stats["cluster"]["started"] is True
            assert stats["cluster"]["live_workers"] == 2
            assert stats["cluster"]["executed_total"] == 1
            # Puts happen worker-side; the router's cache view shows the
            # second request's hit.
            assert stats["cluster"]["shm_cache"]["hits"] >= 1
            assert stats["cluster"]["shm_segments_live"] >= 1
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.close()


class TestServeGracefulShutdown:
    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        """``seedb serve --workers 2`` must drain on SIGTERM: stop
        accepting, join every worker, close replicas, exit 0."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
        )
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.frontend.cli",
                "serve",
                "--dataset",
                "store_orders",
                "--workers",
                "2",
                "--port",
                "0",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=str(tmp_path),  # any artifacts land in a throwaway dir
        )
        try:
            banner = process.stdout.readline()
            assert "seedb serving" in banner
            assert "2 worker processes" in banner
            process.stdout.readline()  # endpoints line
            # The server is accepting; now ask it to stop.
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=120)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=30)
        assert process.returncode == 0, f"serve exited {process.returncode}: {out}"
        assert "received SIGTERM, draining" in out
        assert "drained; workers joined; backends closed" in out
