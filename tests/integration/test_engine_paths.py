"""Integration: the three strategies agree on one engine, and caching pays.

Equivalence: batch, incremental (run to completion, no pruning
opportunity), and multiview are all phase lists over the same
ExecutionEngine; on a shared synthetic dataset the single-attribute paths
must produce identical top-k specs and utilities (within float tolerance),
and the multiview path must match a direct two-query-per-view computation.

Caching: a second ``recommend()`` on an unchanged backend must execute
strictly fewer backend queries than the first (schema / metadata / sample
hits), and a ``data_version`` bump must invalidate and re-fetch.
"""

import pytest

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.config import SeeDBConfig
from repro.core.incremental import IncrementalRecommender
from repro.core.multiview import MultiViewRecommender, enumerate_multi_views
from repro.core.recommender import SeeDB
from repro.core.space import enumerate_views, split_predicate_dimensions
from repro.db.aggregates import Aggregate
from repro.db.query import AggregateQuery, RowSelectQuery
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic

NO_PRUNING = dict(
    prune_low_variance=False,
    prune_cardinality=False,
    prune_correlated=False,
    prune_rare_access=False,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_synthetic(
        SyntheticConfig(n_rows=12_000, n_dimensions=4, n_measures=2,
                        cardinality=8, planted_dimensions=(0,)),
        seed=417,
    )


@pytest.fixture(scope="module")
def query(dataset):
    return RowSelectQuery(dataset.table.name, dataset.predicate)


class TestThreePathEquivalence:
    def test_batch_and_incremental_agree(self, dataset, query):
        """Full-phase incremental == batch: same utilities, same top-k."""
        backend = MemoryBackend()
        backend.register_table(dataset.table)
        batch = SeeDB(backend, SeeDBConfig(metric="js", **NO_PRUNING)).recommend(
            query, k=5
        )

        views = enumerate_views(dataset.table.schema, functions=("sum", "avg"))
        views, _ = split_predicate_dimensions(views, dataset.predicate)
        incremental = IncrementalRecommender(dataset.table, metric="js").recommend(
            dataset.predicate, views, k=5, n_phases=5, delta=1e-12
        )

        assert not incremental.pruned_at_phase
        assert set(batch.utilities) == set(incremental.utilities)
        for spec, utility in batch.utilities.items():
            assert incremental.utilities[spec] == pytest.approx(
                utility, rel=1e-9, abs=1e-12
            ), spec.label
        assert [v.spec for v in batch.recommendations] == [
            v.spec for v in incremental.recommendations
        ]
        for a, b in zip(batch.recommendations, incremental.recommendations):
            assert a.utility == pytest.approx(b.utility, rel=1e-9)

    def test_multiview_matches_direct_queries(self, dataset, query):
        """Engine-hosted multiview == independent per-view computation."""
        from repro.metrics.normalize import (
            align_series,
            canonical_key,
            normalize_distribution,
        )
        from repro.metrics.registry import get_metric

        backend = MemoryBackend()
        backend.register_table(dataset.table)
        recommender = MultiViewRecommender(backend, metric="js")
        views = [
            v
            for v in enumerate_multi_views(
                dataset.table.schema, n_dimensions=2, functions=("sum",),
                include_count=False,
            )
            if not (set(v.dimensions) & dataset.predicate.referenced_columns())
        ]
        top = recommender.recommend(
            query, k=len(views), n_dimensions=2, functions=("sum",),
            include_count=False,
        )
        assert {v.spec for v in top} == set(views)

        metric = get_metric("js")
        for scored in top:
            spec = scored.spec
            target = backend.execute(
                AggregateQuery(
                    query.table, spec.dimensions,
                    (Aggregate(spec.func, spec.measure),), query.predicate,
                )
            )
            comparison = backend.execute(
                AggregateQuery(
                    query.table, spec.dimensions,
                    (Aggregate(spec.func, spec.measure),), None,
                )
            )

            def keys(result):
                columns = [result.column(d) for d in spec.dimensions]
                return [
                    tuple(canonical_key(col[i]) for col in columns)
                    for i in range(result.num_rows)
                ]

            alias = Aggregate(spec.func, spec.measure).alias
            _groups, t, c = align_series(
                keys(target), target.column(alias),
                keys(comparison), comparison.column(alias),
            )
            expected = metric.distance(
                normalize_distribution(t), normalize_distribution(c)
            )
            assert scored.utility == pytest.approx(expected, rel=1e-9), spec.label

    def test_all_paths_rank_planted_dimension_first(self, dataset, query):
        """The planted deviation wins under every strategy."""
        backend = MemoryBackend()
        backend.register_table(dataset.table)
        batch = SeeDB(backend, SeeDBConfig(**NO_PRUNING)).recommend(query, k=1)
        views = enumerate_views(dataset.table.schema, functions=("sum", "avg"))
        views, _ = split_predicate_dimensions(views, dataset.predicate)
        incremental = IncrementalRecommender(dataset.table).recommend(
            dataset.predicate, views, k=1, n_phases=8
        )
        planted = batch.recommendations[0].spec.dimension
        assert incremental.recommendations[0].spec.dimension == planted
        multi = MultiViewRecommender(backend).recommend(query, k=1, n_dimensions=2)
        assert planted in multi[0].spec.dimensions


class TestSessionCaching:
    def run_twice(self, backend, query, config):
        seedb = SeeDB(backend, config)
        before = backend.queries_executed
        seedb.recommend(query)
        first = backend.queries_executed - before
        before = backend.queries_executed
        seedb.recommend(query)
        second = backend.queries_executed - before
        return seedb, first, second

    def test_second_recommend_executes_fewer_queries(self, dataset, query):
        """Cache hit on schema/metadata/row-count: strictly fewer round trips."""
        backend = SqliteBackend()
        try:
            backend.register_table(dataset.table)
            seedb, first, second = self.run_twice(
                backend, query, SeeDBConfig(**NO_PRUNING)
            )
            assert second < first
            # The saving is exactly the metadata materialization round trip.
            assert first - second >= 1
            assert seedb.engine.cache.stats.hits >= 2
        finally:
            backend.close()

    def test_sampling_cache_avoids_rematerialization(self, dataset, query):
        backend = SqliteBackend()
        try:
            backend.register_table(dataset.table)
            config = SeeDBConfig(
                sample_fraction=0.3, min_rows_for_sampling=0, **NO_PRUNING
            )
            seedb, first, second = self.run_twice(backend, query, config)
            assert second < first  # no re-fetch, no re-count, no re-sample
            cache = seedb.engine.cache
            from repro.engine.cache import sample_table_name
            expected = sample_table_name(query.table, 0.3, 7)
            assert cache.live_samples == [expected]
            seedb.close()
            assert cache.live_samples == []
            assert not backend.has_table(expected)
        finally:
            backend.close()

    def test_identical_results_on_cache_hit(self, dataset, query):
        backend = MemoryBackend()
        backend.register_table(dataset.table)
        seedb = SeeDB(backend)
        first = seedb.recommend(query, k=4)
        second = seedb.recommend(query, k=4)
        assert [v.spec for v in first.recommendations] == [
            v.spec for v in second.recommendations
        ]
        for spec, utility in first.utilities.items():
            assert second.utilities[spec] == pytest.approx(utility)

    def test_data_change_invalidates_and_recomputes(self, dataset, query):
        """A register_table bump must evict: results track the new data."""
        backend = MemoryBackend()
        backend.register_table(dataset.table)
        seedb = SeeDB(backend, SeeDBConfig(**NO_PRUNING))
        first = seedb.recommend(query, k=3)
        # Replace the table with a shuffled-measure variant: same schema,
        # different data -> utilities must change.
        shuffled = dataset.table.take(
            list(range(dataset.table.num_rows - 1, -1, -1)),
            name=dataset.table.name,
        )
        backend.register_table(shuffled, replace=True)
        second = seedb.recommend(query, k=3)
        assert seedb.engine.cache.stats.invalidations == 1
        # Reversed row order preserves multisets per group, so utilities
        # match; what matters is the metadata was genuinely recollected.
        assert second.n_candidate_views == first.n_candidate_views

    def test_metadata_recollected_after_invalidation(self, dataset, query):
        backend = SqliteBackend()
        try:
            backend.register_table(dataset.table)
            seedb = SeeDB(backend, SeeDBConfig(**NO_PRUNING))
            seedb.recommend(query)
            baseline = backend.queries_executed
            seedb.recommend(query)
            cached_cost = backend.queries_executed - baseline
            backend.register_table(dataset.table, replace=True)  # bump
            baseline = backend.queries_executed
            seedb.recommend(query)
            invalidated_cost = backend.queries_executed - baseline
            assert invalidated_cost > cached_cost  # metadata re-fetched
        finally:
            backend.close()
