"""Integration: semantics are invariant to backend and optimization level.

The strongest correctness property of the reproduction: for any
combination of {memory, sqlite} x {flag combining on/off} x {aggregate
combining on/off} x {none, grouping sets, rollup}, every view's utility
must match the basic framework to floating-point accuracy.
"""

import numpy as np
import pytest

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.basic import BasicFramework
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.optimizer.plan import GroupByCombining

PREDICATE = col("product") == "p0"
QUERY = RowSelectQuery("orders", PREDICATE)

NO_PRUNING = dict(
    prune_low_variance=False,
    prune_cardinality=False,
    prune_correlated=False,
    prune_rare_access=False,
)


@pytest.fixture(scope="module")
def truth(medium_table_module):
    backend = MemoryBackend()
    backend.register_table(medium_table_module)
    return BasicFramework(
        backend, aggregate_functions=("sum", "avg", "min", "max", "var")
    ).recommend(QUERY, k=5)


@pytest.fixture(scope="module")
def medium_table_module():
    # Rebuild the conftest medium table at module scope for reuse.
    from tests.conftest import make_medium_table

    return make_medium_table()


@pytest.mark.parametrize("backend_cls", [MemoryBackend, SqliteBackend])
@pytest.mark.parametrize(
    "mode",
    [GroupByCombining.NONE, GroupByCombining.GROUPING_SETS, GroupByCombining.ROLLUP],
)
@pytest.mark.parametrize("combine_flag", [True, False])
def test_all_configurations_match_basic(
    medium_table_module, truth, backend_cls, mode, combine_flag
):
    backend = backend_cls()
    backend.register_table(medium_table_module)
    try:
        config = SeeDBConfig(
            aggregate_functions=("sum", "avg", "min", "max", "var"),
            combine_target_comparison=combine_flag,
            combine_aggregates=True,
            groupby_combining=mode,
            **NO_PRUNING,
        )
        result = SeeDB(backend, config).recommend(QUERY, k=5)
        assert set(result.utilities) == set(truth.utilities)
        for spec, expected in truth.utilities.items():
            assert result.utilities[spec] == pytest.approx(
                expected, rel=1e-9, abs=1e-12
            ), f"{spec.label} mismatch under {backend_cls.__name__}/{mode}/{combine_flag}"
        assert [v.spec for v in result.recommendations] == [
            v.spec for v in truth.recommendations
        ]
    finally:
        if isinstance(backend, SqliteBackend):
            backend.close()


def test_metric_changes_scores_but_pipeline_holds(medium_table_module):
    backend = MemoryBackend()
    backend.register_table(medium_table_module)
    utilities = {}
    for metric in ("js", "emd", "euclidean", "kl", "total_variation"):
        config = SeeDBConfig(metric=metric, **NO_PRUNING)
        result = SeeDB(backend, config).recommend(QUERY, k=3)
        utilities[metric] = result.utilities
        assert all(np.isfinite(u) for u in result.utilities.values())
    # Different metrics genuinely differ in scale.
    a_spec = next(iter(utilities["js"]))
    assert utilities["js"][a_spec] != pytest.approx(utilities["emd"][a_spec])
