"""Integration: edge cases and injected failures across the full pipeline.

A production system's behaviour on hostile inputs is part of its spec:
empty selections, degenerate tables, unicode, all-NULL measures, dropped
tables mid-session, and malformed SQL must all fail loudly with library
errors (or succeed with well-defined semantics) — never crash with a raw
TypeError or produce NaN utilities.
"""

import numpy as np
import pytest

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.util.errors import ReproError, SchemaError, SqlSyntaxError

NO_PRUNING = dict(
    prune_low_variance=False,
    prune_cardinality=False,
    prune_correlated=False,
)


def build_backend(table):
    backend = MemoryBackend()
    backend.register_table(table)
    return backend


class TestEmptySelections:
    def test_predicate_matching_nothing(self, sales_table):
        backend = build_backend(sales_table)
        seedb = SeeDB(backend, SeeDBConfig(**NO_PRUNING))
        result = seedb.recommend(
            RowSelectQuery("sales", col("product") == "Nonexistent"), k=3
        )
        # Empty target: distributions fall back to uniform; utilities must
        # be finite and the pipeline must not crash.
        assert len(result.recommendations) == 3
        for view in result.all_scored.values():
            assert np.isfinite(view.utility)

    def test_predicate_matching_everything(self, sales_table):
        backend = build_backend(sales_table)
        seedb = SeeDB(backend, SeeDBConfig(**NO_PRUNING))
        result = seedb.recommend(
            RowSelectQuery("sales", col("amount") > -1e12), k=3
        )
        # Target == comparison -> all utilities ~ 0.
        for view in result.all_scored.values():
            assert view.utility == pytest.approx(0.0, abs=1e-9)


class TestDegenerateTables:
    def test_single_row_table(self):
        table = Table.from_columns(
            "tiny",
            {"k": ["only"], "v": [1.0]},
            roles={"k": AttributeRole.DIMENSION, "v": AttributeRole.MEASURE},
        )
        backend = build_backend(table)
        seedb = SeeDB(backend, SeeDBConfig(**NO_PRUNING))
        result = seedb.recommend(RowSelectQuery("tiny", col("v") > 0), k=2)
        for view in result.all_scored.values():
            assert np.isfinite(view.utility)

    def test_all_nan_measure(self):
        table = Table.from_columns(
            "nulls",
            {
                "k": ["a", "b", "a", "b"],
                "v": [float("nan")] * 4,
            },
            roles={"k": AttributeRole.DIMENSION, "v": AttributeRole.MEASURE},
        )
        backend = build_backend(table)
        seedb = SeeDB(backend, SeeDBConfig(**NO_PRUNING))
        result = seedb.recommend(RowSelectQuery("nulls", col("k") == "a"), k=2)
        for view in result.all_scored.values():
            assert np.isfinite(view.utility)  # NaN-sums become zero mass

    def test_unicode_dimension_values(self):
        table = Table.from_columns(
            "unicode",
            {
                "city": ["京都", "Zürich", "Montréal", "京都", "Zürich", "成都"],
                "note": ["x'y\"z"] * 6,
                "v": [1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
            },
            roles={
                "city": AttributeRole.DIMENSION,
                "note": AttributeRole.DIMENSION,
                "v": AttributeRole.MEASURE,
            },
        )
        for backend_factory in (MemoryBackend, SqliteBackend):
            backend = backend_factory()
            backend.register_table(table)
            try:
                seedb = SeeDB(backend, SeeDBConfig(**NO_PRUNING))
                result = seedb.recommend(
                    RowSelectQuery("unicode", col("city") == "京都"), k=2
                )
                assert result.recommendations
            finally:
                if isinstance(backend, SqliteBackend):
                    backend.close()

    def test_no_measures_only_count_views(self):
        table = Table.from_columns(
            "dims_only",
            {"a": ["x", "y", "x"], "b": ["p", "p", "q"]},
            roles={"a": AttributeRole.DIMENSION, "b": AttributeRole.DIMENSION},
        )
        backend = build_backend(table)
        seedb = SeeDB(backend, SeeDBConfig(**NO_PRUNING))
        result = seedb.recommend(RowSelectQuery("dims_only", col("b") == "p"), k=2)
        assert all(v.spec.func == "count" for v in result.all_scored.values())

    def test_no_usable_views_returns_empty(self):
        # Single dimension constrained by the predicate -> nothing to show.
        table = Table.from_columns(
            "one_dim",
            {"a": ["x", "y"], "v": [1.0, 2.0]},
            roles={"a": AttributeRole.DIMENSION, "v": AttributeRole.MEASURE},
        )
        backend = build_backend(table)
        seedb = SeeDB(backend, SeeDBConfig(**NO_PRUNING))
        result = seedb.recommend(RowSelectQuery("one_dim", col("a") == "x"), k=3)
        assert result.recommendations == []
        assert result.n_executed_views == 0


class TestInjectedFailures:
    def test_unknown_table_raises_library_error(self, memory_backend):
        seedb = SeeDB(memory_backend)
        with pytest.raises(ReproError):
            seedb.recommend(RowSelectQuery("no_such_table"), k=1)

    def test_unknown_predicate_column(self, memory_backend):
        seedb = SeeDB(memory_backend)
        with pytest.raises(ReproError):
            seedb.recommend(RowSelectQuery("sales", col("ghost") == 1), k=1)

    def test_malformed_sql_raises_syntax_error(self, memory_backend):
        seedb = SeeDB(memory_backend)
        with pytest.raises(SqlSyntaxError):
            seedb.recommend("SELEKT * FROM sales", k=1)

    def test_dropped_table_mid_session(self, sales_table):
        backend = SqliteBackend()
        backend.register_table(sales_table)
        try:
            seedb = SeeDB(backend)
            seedb.recommend(
                RowSelectQuery("sales", col("product") == "Laserwave"), k=1
            )
            backend.drop_table("sales")
            with pytest.raises(ReproError):
                seedb.recommend(
                    RowSelectQuery("sales", col("product") == "Laserwave"), k=1
                )
        finally:
            backend.close()

    def test_incomparable_predicate_type(self, memory_backend):
        seedb = SeeDB(memory_backend, SeeDBConfig(**NO_PRUNING))
        with pytest.raises(ReproError, match="compare"):
            seedb.recommend(
                RowSelectQuery("sales", col("amount") > "a string"), k=1
            )
