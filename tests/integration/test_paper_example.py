"""Integration: the paper's running example end to end (E1-E3).

Table 1 must regenerate exactly; the sales-by-store view must be
interesting under the Scenario A data and uninteresting under Scenario B;
and running full SeeDB on the Scenario A fact table must put a
store-dimension view at the top of the recommendations.
"""

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.laserwave import laserwave_sales_history
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.experiments.figures import (
    figure_1_spec,
    figures_2_3_utilities,
    verify_table_1,
)


class TestTable1:
    def test_exact_regeneration(self):
        result = verify_table_1(n_rows=5000)
        assert result["max_abs_error"] < 0.01
        assert result["computed"]["Cambridge, MA"] == pytest.approx(180.55, abs=0.01)


class TestFigure1:
    def test_chart_spec(self):
        spec = figure_1_spec()
        assert spec.categories[0] == "Cambridge, MA"
        assert spec.series[0].values[0] == pytest.approx(180.55)


class TestFigures2And3:
    def test_scenario_a_beats_b_for_every_metric(self):
        rows = figures_2_3_utilities()
        assert len(rows) >= 4
        for row in rows:
            assert row["utility_scenario_a"] > 5 * row["utility_scenario_b"], row


class TestFullPipelineOnLaserwave:
    @pytest.mark.parametrize("scenario,expect_store_top", [("a", True), ("b", False)])
    def test_store_view_ranking_depends_on_scenario(self, scenario, expect_store_top):
        backend = MemoryBackend()
        backend.register_table(
            laserwave_sales_history(n_rows=8000, seed=4, scenario=scenario)
        )
        seedb = SeeDB(backend, SeeDBConfig(prune_correlated=False))
        result = seedb.recommend(
            RowSelectQuery("sales", col("product") == "Laserwave"), k=3
        )
        top_dimensions = [v.spec.dimension for v in result.recommendations]
        if expect_store_top:
            assert top_dimensions[0] == "store"
        else:
            # Same-trend scenario: the store view must NOT be the headline
            # recommendation (its deviation is tiny by construction).
            store_views = [
                v for v in result.all_scored.values() if v.spec.dimension == "store"
            ]
            month_views = [
                v for v in result.all_scored.values() if v.spec.dimension == "month"
            ]
            assert max(v.utility for v in store_views) < 0.2

    def test_summary_mentions_recommendations(self):
        backend = MemoryBackend()
        backend.register_table(laserwave_sales_history(n_rows=3000, seed=4))
        result = SeeDB(backend).recommend(
            RowSelectQuery("sales", col("product") == "Laserwave")
        )
        summary = result.summary()
        assert "SeeDB recommendations" in summary
        assert "utility" in summary
