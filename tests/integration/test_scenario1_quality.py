"""Integration: demo Scenario 1 — SeeDB surfaces the planted-interesting
views, and the metric choice affects (but does not destroy) that.
"""

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.db.query import RowSelectQuery
from repro.experiments.accuracy import metric_quality_on_planted, precision_at_k


@pytest.fixture(scope="module")
def dataset():
    return generate_synthetic(
        SyntheticConfig(
            n_rows=30_000,
            n_dimensions=6,
            n_measures=2,
            cardinality=12,
            planted_dimensions=(0, 3),
            target_fraction=0.2,
        ),
        seed=17,
    )


class TestPlantedRecovery:
    def test_planted_views_dominate_topk(self, dataset):
        backend = MemoryBackend()
        backend.register_table(dataset.table)
        seedb = SeeDB(backend, SeeDBConfig(prune_correlated=False))
        result = seedb.recommend(
            RowSelectQuery(dataset.table.name, dataset.predicate), k=5
        )
        assert precision_at_k(result, dataset) >= 0.8

    def test_unplanted_dimensions_rank_low(self, dataset):
        backend = MemoryBackend()
        backend.register_table(dataset.table)
        seedb = SeeDB(backend, SeeDBConfig(prune_correlated=False))
        result = seedb.recommend(
            RowSelectQuery(dataset.table.name, dataset.predicate), k=5
        )
        planted = set(dataset.planted_dimensions)
        unplanted_utilities = [
            v.utility
            for v in result.all_scored.values()
            if v.spec.dimension not in planted and v.spec.dimension != "segment"
        ]
        planted_utilities = [
            v.utility
            for v in result.all_scored.values()
            if v.spec.dimension in planted
        ]
        assert max(planted_utilities) > 3 * max(unplanted_utilities)

    def test_every_metric_achieves_reasonable_precision(self, dataset):
        rows = metric_quality_on_planted(dataset, k=5)
        assert len(rows) >= 7
        for row in rows:
            # The segment dimension trivially deviates too, so precision
            # floors differ per metric, but none should collapse to zero.
            assert row["precision_at_k"] >= 0.4, row

    def test_bad_views_available_for_demo(self, dataset):
        backend = MemoryBackend()
        backend.register_table(dataset.table)
        result = SeeDB(backend, SeeDBConfig(prune_correlated=False)).recommend(
            RowSelectQuery(dataset.table.name, dataset.predicate), k=3
        )
        worst = result.worst_views(3)
        assert len(worst) == 3
        assert worst[0].utility <= result.recommendations[-1].utility
