"""Integration: demo Scenario 2 — optimizations change work, not answers.

Deterministic work-counter assertions (scan counts, query counts) for each
optimization family, plus sampling and parallelism behaviour.
"""

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.datasets.synthetic import (
    SyntheticConfig,
    add_constant_column,
    add_correlated_copy,
    generate_synthetic,
)
from repro.db.query import RowSelectQuery
from repro.optimizer.plan import GroupByCombining
from repro.sampling.accuracy import topk_precision

NO_PRUNING = dict(
    prune_low_variance=False,
    prune_cardinality=False,
    prune_correlated=False,
    prune_rare_access=False,
)


@pytest.fixture(scope="module")
def dataset():
    return generate_synthetic(
        SyntheticConfig(n_rows=20_000, n_dimensions=5, n_measures=2, cardinality=10),
        seed=23,
    )


def run(dataset, **overrides):
    backend = MemoryBackend()
    backend.register_table(dataset.table)
    config = SeeDBConfig(**{**NO_PRUNING, **overrides})
    seedb = SeeDB(backend, config)
    result = seedb.recommend(
        RowSelectQuery(dataset.table.name, dataset.predicate), k=5
    )
    return backend, result


class TestQueryCombining:
    def test_flag_halves_queries(self, dataset):
        _b1, separate = run(dataset, combine_target_comparison=False,
                            combine_aggregates=False)
        _b2, combined = run(dataset, combine_target_comparison=True,
                            combine_aggregates=False)
        assert combined.n_queries * 2 == separate.n_queries

    def test_aggregate_combining_scales_with_dimensions(self, dataset):
        _b, result = run(dataset, combine_target_comparison=True,
                         combine_aggregates=True)
        n_dimensions = 5  # 5 generated; segment is predicate-excluded
        assert result.n_queries == n_dimensions

    def test_grouping_sets_single_query(self, dataset):
        _b, result = run(dataset, groupby_combining=GroupByCombining.GROUPING_SETS)
        assert result.n_queries == 1

    def test_scan_counts_drop_with_sharing(self, dataset):
        backend_a, basic = run(dataset, combine_target_comparison=False,
                               combine_aggregates=False)
        backend_b, shared = run(dataset, groupby_combining=GroupByCombining.GROUPING_SETS)
        # Each backend is fresh, so total scans == view-query scans + metadata.
        assert backend_b.engine.stats.table_scans < backend_a.engine.stats.table_scans

    def test_rollup_fits_budget(self, dataset):
        _b, result = run(
            dataset,
            groupby_combining=GroupByCombining.ROLLUP,
            memory_budget_cells=500,
        )
        # Budget 500 (250 with flag): 10*10=100 fits, 10*10*10 doesn't.
        assert result.n_queries >= 2
        assert "rollup" in result.plan_description


class TestPruning:
    def test_pruning_reduces_executed_views(self, dataset):
        table = add_constant_column(dataset.table, "constant")
        table = add_correlated_copy(table, "d1", "d1_copy")
        backend = MemoryBackend()
        backend.register_table(table)
        config = SeeDBConfig()  # default pruning on
        result = SeeDB(backend, config).recommend(
            RowSelectQuery(table.name, dataset.predicate), k=5
        )
        assert result.n_executed_views < result.n_candidate_views
        pruned_dimensions = {v.dimension for v, _reason in result.pruned_views()}
        assert "constant" in pruned_dimensions
        assert ("d1" in pruned_dimensions) or ("d1_copy" in pruned_dimensions)

    def test_pruning_preserves_topk_quality(self, dataset):
        _b1, unpruned = run(dataset)
        backend = MemoryBackend()
        backend.register_table(dataset.table)
        pruned_result = SeeDB(backend, SeeDBConfig(prune_correlated=False)).recommend(
            RowSelectQuery(dataset.table.name, dataset.predicate), k=5
        )
        top_unpruned = [v.spec for v in unpruned.recommendations]
        top_pruned = [v.spec for v in pruned_result.recommendations]
        assert len(set(top_unpruned) & set(top_pruned)) >= 4


class TestSampling:
    def test_sampling_reduces_scanned_rows(self, dataset):
        backend_exact, exact = run(dataset)
        backend_sampled, sampled = run(
            dataset, sample_fraction=0.1, min_rows_for_sampling=0
        )
        assert sampled.sample_fraction == 0.1
        assert (
            backend_sampled.engine.stats.rows_scanned
            < 0.5 * backend_exact.engine.stats.rows_scanned
        )

    def test_sampled_topk_close_to_exact(self, dataset):
        _b1, exact = run(dataset)
        _b2, sampled = run(dataset, sample_fraction=0.2, min_rows_for_sampling=0)
        precision = topk_precision(exact.utilities, sampled.utilities, k=5)
        assert precision >= 0.6

    def test_small_tables_skip_sampling(self, memory_backend):
        from repro.db.expressions import col

        config = SeeDBConfig(sample_fraction=0.5, min_rows_for_sampling=10_000)
        result = SeeDB(memory_backend, config).recommend(
            RowSelectQuery("sales", col("product") == "Laserwave")
        )
        assert result.sample_fraction is None


class TestParallelism:
    def test_parallel_same_answers(self, dataset):
        _b1, sequential = run(dataset, combine_aggregates=True)
        _b2, parallel = run(dataset, combine_aggregates=True, n_workers=4)
        for spec, utility in sequential.utilities.items():
            assert parallel.utilities[spec] == pytest.approx(utility)

    def test_parallel_on_sqlite(self, dataset):
        from repro.backends.sqlite import SqliteBackend

        backend = SqliteBackend()
        try:
            backend.register_table(dataset.table)
            config = SeeDBConfig(n_workers=4, **NO_PRUNING)
            result = SeeDB(backend, config).recommend(
                RowSelectQuery(dataset.table.name, dataset.predicate), k=3
            )
            assert len(result.recommendations) == 3
        finally:
            backend.close()
