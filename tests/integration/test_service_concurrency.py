"""Integration: concurrent multi-session serving is exactly serial-correct.

The acceptance bar for the serving refactor: N threads hammering one
shared service must produce *bit-identical* results to a serial loop — on
both backends, with request coalescing on and off — and a writer bumping
``data_version`` mid-flight must never corrupt the shared cache (runs see
a consistent snapshot; post-write runs see the new data).
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.service import single_backend_service

from tests.conftest import make_medium_table

N_THREADS = 8

#: A mixed workload: distinct predicates (some repeated across threads so
#: coalescing and the result cache both engage).
QUERIES = [
    RowSelectQuery("orders", col("product") == "p0"),
    RowSelectQuery("orders", col("product") == "p1"),
    RowSelectQuery("orders", col("region") == "r0"),
    RowSelectQuery("orders", col("product") == "p0"),  # repeat on purpose
]


def fingerprint(result) -> tuple:
    """Everything that must match bit-for-bit between serial and threaded
    runs: the ranked specs and every executed view's exact utility."""
    return (
        tuple(view.spec for view in result.recommendations),
        tuple(sorted((spec, view.utility) for spec, view in result.all_scored.items())),
    )


def make_backend(kind: str, table):
    backend = MemoryBackend() if kind == "memory" else SqliteBackend()
    backend.register_table(table)
    return backend


@pytest.mark.parametrize("backend_kind", ["memory", "sqlite"])
@pytest.mark.parametrize("coalesce", [True, False])
def test_threaded_service_matches_serial(backend_kind, coalesce):
    table = make_medium_table()

    # Serial ground truth: a plain facade, one query at a time.
    serial_backend = make_backend(backend_kind, table)
    serial = SeeDB(serial_backend, SeeDBConfig(k=3))
    expected = {}
    for index, query in enumerate(QUERIES):
        expected[index % len(QUERIES)] = fingerprint(serial.recommend(query))
    serial.close()
    if backend_kind == "sqlite":
        serial_backend.close()

    # Threaded: N sessions × the whole workload against one shared service.
    backend = make_backend(backend_kind, table)
    service = single_backend_service(
        backend,
        SeeDBConfig(k=3),
        owned=(backend_kind == "sqlite"),
        max_workers=N_THREADS,
        coalesce_requests=coalesce,
    )
    try:
        def session(worker: int) -> list[tuple[int, tuple]]:
            out = []
            # Stagger starting offsets so distinct queries overlap in flight.
            for step in range(len(QUERIES)):
                index = (worker + step) % len(QUERIES)
                result = service.recommend(QUERIES[index])
                out.append((index, fingerprint(result)))
            return out

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            all_results = list(pool.map(session, range(N_THREADS)))

        for per_session in all_results:
            for index, got in per_session:
                assert got == expected[index], (
                    f"threaded result for query #{index} diverged from serial"
                )
        stats = service.stats
        assert stats.requests == N_THREADS * len(QUERIES)
        assert stats.failed == 0
        assert stats.requests == (
            stats.executions + stats.coalesced + stats.result_cache_hits
        )
        # The whole point of the shared service: far fewer executions than
        # requests once coalescing + the shared result cache engage.
        assert stats.executions < stats.requests
    finally:
        service.close()


def test_coalescing_observed_under_concurrency():
    """With the result cache off, simultaneous identical requests must
    coalesce onto in-flight executions (the /stats signal the serving
    benchmark asserts on)."""
    table = make_medium_table()
    backend = make_backend("memory", table)
    service = single_backend_service(
        backend,
        SeeDBConfig(k=3),
        max_workers=N_THREADS,
        result_cache_size=0,
    )
    try:
        barrier = threading.Barrier(N_THREADS)
        query = QUERIES[0]

        def session(_: int):
            barrier.wait(timeout=30)  # release all threads at once
            return fingerprint(service.recommend(query))

        with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
            results = list(pool.map(session, range(N_THREADS)))
        assert len(set(results)) == 1
        assert service.stats.coalesced > 0
        assert service.stats.executions < N_THREADS
    finally:
        service.close()


class TestInvalidationUnderWrite:
    def test_writer_racing_readers_never_corrupts(self):
        """A writer republishing the table (bumping ``data_version``) while
        readers recommend: every read succeeds, and once writes stop the
        service serves exactly what a fresh engine computes on final data.
        """
        table = make_medium_table()
        backend = MemoryBackend()
        backend.register_table(table)
        # No result cache: every request exercises engine + shared
        # EngineCache sync against the moving data_version.
        service = single_backend_service(
            backend, SeeDBConfig(k=3), max_workers=4, result_cache_size=0
        )
        query = QUERIES[0]
        stop = threading.Event()
        writer_errors = []

        def writer():
            while not stop.is_set():
                try:
                    backend.register_table(table, replace=True)
                except Exception as exc:  # noqa: BLE001
                    writer_errors.append(exc)
                    return

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            with ThreadPoolExecutor(max_workers=4) as pool:
                futures = [
                    pool.submit(service.recommend, query) for _ in range(24)
                ]
                results = [f.result(timeout=120) for f in futures]
        finally:
            stop.set()
            thread.join(timeout=30)
        assert not writer_errors
        # Same data republished: every racing run saw a consistent snapshot
        # and must agree with serial ground truth.
        fresh = SeeDB(backend, SeeDBConfig(k=3))
        expected = fingerprint(fresh.recommend(query))
        fresh.close()
        for result in results:
            assert fingerprint(result) == expected
        # After the dust settles the service itself also agrees.
        assert fingerprint(service.recommend(query)) == expected
        assert service.engine().cache.stats.invalidations > 0
        service.close()


class TestSqliteConnectionLifecycle:
    def test_worker_thread_connections_closed_with_backend(self, sales_table):
        backend = SqliteBackend()
        path = backend._path
        backend.register_table(sales_table)
        service = single_backend_service(
            backend,
            SeeDBConfig(k=2),
            owned=True,
            max_workers=4,
            result_cache_size=0,
            coalesce_requests=False,
        )
        queries = [
            RowSelectQuery("sales", col("product") == "Laserwave"),
            RowSelectQuery("sales", col("product") == "Other"),
        ]
        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [
                pool.submit(service.recommend, queries[i % 2]) for i in range(8)
            ]
            for future in futures:
                future.result(timeout=120)
        # Service worker threads each opened a thread-local connection.
        assert backend.open_connections > 1
        service.close()
        # The leak fix: every tracked connection is closed, and the
        # database file plus its WAL sidecars are gone.
        assert backend.open_connections == 0
        for leftover in (path, path + "-wal", path + "-shm"):
            assert not os.path.exists(leftover)

    def test_close_is_idempotent_across_threads(self, sales_table):
        backend = SqliteBackend()
        backend.register_table(sales_table)
        with ThreadPoolExecutor(max_workers=4) as pool:
            for future in [pool.submit(backend.row_count, "sales")] * 4:
                future.result(timeout=30)
        backend.close()
        backend.close()  # second close finds nothing to do
        assert backend.open_connections == 0


class TestAtomicAccounting:
    def test_query_counter_exact_under_concurrent_load(self, sales_table):
        """Satellite check: concurrent runs sum to exactly the serial
        query count times the number of runs (no lost increments)."""
        for backend_factory in (MemoryBackend, SqliteBackend):
            backend = backend_factory()
            backend.register_table(sales_table)
            try:
                query = RowSelectQuery("sales", col("product") == "Laserwave")
                seedb = SeeDB(backend, SeeDBConfig(k=2))
                seedb.recommend(query)  # warm the engine cache first
                baseline = backend.queries_executed
                seedb.recommend(query)
                per_run = backend.queries_executed - baseline
                assert per_run > 0
                backend.reset_counters()
                runs = 12
                with ThreadPoolExecutor(max_workers=4) as pool:
                    futures = [
                        pool.submit(seedb.recommend, query) for _ in range(runs)
                    ]
                    for future in futures:
                        future.result(timeout=120)
                assert backend.queries_executed == per_run * runs
                seedb.close()
            finally:
                close = getattr(backend, "close", None)
                if close is not None:
                    close()

    def test_data_version_bumps_are_not_lost(self, sales_table):
        backend = MemoryBackend()
        backend.register_table(sales_table)
        before = backend.data_version
        bumps_per_thread = 50
        def churn():
            for _ in range(bumps_per_thread):
                backend.register_table(sales_table, replace=True)
        threads = [threading.Thread(target=churn) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert backend.data_version == before + 4 * bumps_per_thread
