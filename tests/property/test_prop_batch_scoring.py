"""Property tests: the columnar Score path equals the per-view path.

The batch data plane (``align_batch`` → ``normalize_batch`` →
``distance_batch`` via ``ViewProcessor.score_batch``) must produce
bit-for-bit the same utilities, distributions, and group universes as the
classic per-view loop — across every metric, every normalization policy,
and the messy edges of real view results: missing groups on either side,
NaN aggregates, negative measures, and entirely empty views. The same
equivalence is asserted end-to-end through both backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.core.view_processor import ViewProcessor
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.metrics.normalize import NormalizationPolicy
from repro.metrics.registry import available_metrics, get_metric
from repro.model.view import RawViewData, ViewSpec

ALL_METRICS = tuple(available_metrics())

#: Mixed-type key pool: strings and ints exercise the deterministic
#: (type name, value) union ordering.
KEY_POOL = [f"g{i}" for i in range(8)] + [1, 2, 3]


def _values(draw, size: int, allow_negative: bool) -> list[float]:
    lower = -100.0 if allow_negative else 0.0
    element = st.one_of(
        st.floats(min_value=lower, max_value=100.0, allow_nan=False),
        st.just(float("nan")),
        st.just(0.0),
    )
    return draw(st.lists(element, min_size=size, max_size=size))


@st.composite
def view_workload(draw, allow_negative: bool = True) -> list[RawViewData]:
    """Raw views over 1-2 dimensions with independent target/comparison
    key sets (so group alignment actually has work to do)."""
    raws: list[RawViewData] = []
    n_dimensions = draw(st.integers(1, 2))
    for d in range(n_dimensions):
        target_keys = draw(
            st.lists(st.sampled_from(KEY_POOL), unique=True, max_size=6)
        )
        comparison_keys = draw(
            st.lists(st.sampled_from(KEY_POOL), unique=True, max_size=6)
        )
        n_views = draw(st.integers(1, 3))
        for m in range(n_views):
            raws.append(
                RawViewData(
                    spec=ViewSpec(f"d{d}", f"m{m}", "sum"),
                    target_keys=target_keys,
                    target_values=np.asarray(
                        _values(draw, len(target_keys), allow_negative)
                    ),
                    comparison_keys=comparison_keys,
                    comparison_values=np.asarray(
                        _values(draw, len(comparison_keys), allow_negative)
                    ),
                )
            )
    return raws


def assert_identical(per_view, batch):
    assert set(per_view) == set(batch)
    for spec, scalar in per_view.items():
        columnar = batch[spec]
        assert scalar.utility == columnar.utility, spec
        assert list(scalar.groups) == list(columnar.groups), spec
        assert np.array_equal(
            scalar.target_distribution, columnar.target_distribution
        ), spec
        assert np.array_equal(
            scalar.comparison_distribution, columnar.comparison_distribution
        ), spec
        assert np.array_equal(
            scalar.target_values, columnar.target_values, equal_nan=True
        ), spec
        assert np.array_equal(
            scalar.comparison_values, columnar.comparison_values, equal_nan=True
        ), spec


@pytest.mark.parametrize("metric_name", ALL_METRICS)
@pytest.mark.parametrize(
    "policy", [NormalizationPolicy.SHIFT, NormalizationPolicy.ABSOLUTE]
)
@settings(max_examples=25, deadline=None)
@given(raws=view_workload(allow_negative=True))
def test_batch_bitwise_equals_per_view(metric_name, policy, raws):
    processor = ViewProcessor(get_metric(metric_name), policy)
    assert_identical(processor.score_all(raws), processor.score_batch(raws))


@pytest.mark.parametrize("metric_name", ALL_METRICS)
@settings(max_examples=15, deadline=None)
@given(raws=view_workload(allow_negative=False))
def test_batch_bitwise_equals_per_view_strict(metric_name, raws):
    processor = ViewProcessor(get_metric(metric_name), NormalizationPolicy.STRICT)
    assert_identical(processor.score_all(raws), processor.score_batch(raws))


def test_empty_views_score_zero_on_both_paths():
    raw = RawViewData(
        spec=ViewSpec("d", "m", "sum"),
        target_keys=[],
        target_values=np.empty(0),
        comparison_keys=[],
        comparison_values=np.empty(0),
    )
    processor = ViewProcessor(get_metric("js"), NormalizationPolicy.SHIFT)
    assert_identical(processor.score_all([raw]), processor.score_batch([raw]))
    assert processor.score_batch([raw])[raw.spec].utility == 0.0


def test_custom_scalar_metric_falls_back_to_loop():
    """A metric implementing only the scalar _distance still batch-scores."""
    from repro.metrics.base import DistanceMetric

    class FirstBinGap(DistanceMetric):
        name = "first_bin_gap"

        def _distance(self, p, q):
            return abs(float(p[0]) - float(q[0]))

    processor = ViewProcessor(FirstBinGap(), NormalizationPolicy.SHIFT)
    raws = [
        RawViewData(
            spec=ViewSpec("d", f"m{i}", "sum"),
            target_keys=["a", "b"],
            target_values=np.array([1.0, 3.0 + i]),
            comparison_keys=["a", "b", "c"],
            comparison_values=np.array([2.0, 2.0, 2.0]),
        )
        for i in range(3)
    ]
    assert_identical(processor.score_all(raws), processor.score_batch(raws))


@pytest.fixture(params=["memory", "sqlite"])
def backend_factory(request, medium_table):
    def make():
        backend = (
            MemoryBackend() if request.param == "memory" else SqliteBackend()
        )
        backend.register_table(medium_table)
        return backend

    made = []

    def tracked():
        backend = make()
        made.append(backend)
        return backend

    yield tracked
    for backend in made:
        if isinstance(backend, SqliteBackend):
            backend.close()


@pytest.mark.parametrize("metric_name", ALL_METRICS)
def test_engine_batch_equals_per_view_on_backends(backend_factory, metric_name):
    """End-to-end: batch vs per-view scoring through the full engine on both
    backends — identical utilities, rankings, and query counts."""
    query = RowSelectQuery("orders", col("product") == "p0")
    results = {}
    queries = {}
    for batch in (False, True):
        backend = backend_factory()
        config = SeeDBConfig(metric=metric_name, batch_scoring=batch)
        results[batch] = SeeDB(backend, config).recommend(query, k=3)
        queries[batch] = backend.queries_executed
    per_view, columnar = results[False], results[True]
    assert queries[True] == queries[False]
    assert per_view.n_queries == columnar.n_queries
    assert [v.spec for v in per_view.recommendations] == [
        v.spec for v in columnar.recommendations
    ]
    for spec, utility in per_view.utilities.items():
        assert columnar.utilities[spec] == utility  # bit-for-bit
