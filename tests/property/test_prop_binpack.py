"""Property tests: bin-packing invariants for both solvers."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.binpack import (
    branch_and_bound_pack,
    first_fit_decreasing,
    pack_dimensions,
)


@st.composite
def packing_instances(draw):
    n = draw(st.integers(1, 10))
    weights = {
        f"item{i}": draw(st.floats(0.1, 20.0, allow_nan=False)) for i in range(n)
    }
    capacity = draw(st.floats(1.0, 25.0, allow_nan=False))
    return weights, capacity


def assert_packing_valid(packed, weights, capacity):
    flattened = [name for members in packed.bins for name in members]
    assert sorted(flattened) == sorted(weights)  # exactly once each
    for members in packed.bins:
        load = sum(weights[name] for name in members)
        if len(members) > 1:
            assert load <= capacity + 1e-9
        else:
            # Single items may legitimately exceed capacity (oversized).
            pass


@settings(max_examples=80, deadline=None)
@given(instance=packing_instances())
def test_ffd_valid(instance):
    weights, capacity = instance
    packed = first_fit_decreasing(weights, capacity)
    assert_packing_valid(packed, weights, capacity)


@settings(max_examples=80, deadline=None)
@given(instance=packing_instances())
def test_exact_valid_and_never_worse_than_ffd(instance):
    weights, capacity = instance
    ffd = first_fit_decreasing(weights, capacity)
    exact = branch_and_bound_pack(weights, capacity)
    assert_packing_valid(exact, weights, capacity)
    assert exact.n_bins <= ffd.n_bins


@settings(max_examples=80, deadline=None)
@given(instance=packing_instances())
def test_exact_respects_lower_bound(instance):
    weights, capacity = instance
    exact = branch_and_bound_pack(weights, capacity)
    packable_total = sum(w for w in weights.values() if w <= capacity)
    oversized = sum(1 for w in weights.values() if w > capacity)
    lower_bound = math.ceil(packable_total / capacity - 1e-9) + oversized
    assert exact.n_bins >= max(lower_bound, 1 if weights else 0)


@settings(max_examples=50, deadline=None)
@given(
    cardinalities=st.dictionaries(
        st.sampled_from([f"d{i}" for i in range(8)]),
        st.integers(2, 5000),
        min_size=1,
        max_size=8,
    ),
    budget=st.integers(4, 100_000),
)
def test_pack_dimensions_products_fit_budget(cardinalities, budget):
    packed = pack_dimensions(cardinalities, budget_cells=budget)
    for members in packed.bins:
        if len(members) > 1:
            product = math.prod(cardinalities[name] for name in members)
            assert product <= budget * (1 + 1e-9)
