"""Property tests: the plan cost estimator orders work sensibly.

The cost model never has to be *accurate* to be useful — the planner only
compares candidates — but it must be *monotone* in the things that make
plans expensive: more rows never gets cheaper, native grouping sets never
cost more than their UNION ALL emulation, and smaller sampling fractions
never scan more. These are the invariants the argmin choice leans on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.base import BackendCapabilities
from repro.metadata.calibration import SEEDED_COEFFICIENTS
from repro.model.view import ViewSpec
from repro.optimizer.cost import (
    CostModel,
    choose_sample_fraction,
    estimate_plan_cost,
    hoeffding_epsilon,
    sample_fraction_from_table,
)
from repro.optimizer.plan import GroupByCombining, Planner, PlannerConfig

DIMS = ("d0", "d1", "d2", "d3", "d4")

NATIVE = BackendCapabilities(
    grouping_sets=True, parallel_queries=True, native_var_std=True
)
EMULATED = BackendCapabilities(
    grouping_sets=False, parallel_queries=True, native_var_std=True
)


@st.composite
def plan_inputs(draw):
    """Random view set + cardinalities + a combining mode to plan with."""
    dims = draw(st.lists(st.sampled_from(DIMS), min_size=1, max_size=5, unique=True))
    views = []
    for dim in dims:
        for func in draw(
            st.lists(st.sampled_from(["sum", "avg"]), min_size=1, max_size=2, unique=True)
        ):
            views.append(ViewSpec(dim, "m", func))
    cardinalities = {
        dim: draw(st.integers(min_value=2, max_value=200)) for dim in DIMS
    }
    mode = draw(
        st.sampled_from(
            [
                GroupByCombining.NONE,
                GroupByCombining.GROUPING_SETS,
                GroupByCombining.ROLLUP,
            ]
        )
    )
    return views, cardinalities, mode


def build_plan(views, cardinalities, mode, capabilities, table="t"):
    planner = Planner(PlannerConfig(groupby_combining=mode))
    return planner.plan(views, table, None, cardinalities, capabilities)


@settings(max_examples=60, deadline=None)
@given(inputs=plan_inputs(), rows=st.integers(1, 10**6), extra=st.integers(1, 10**6))
def test_more_rows_never_cheaper(inputs, rows, extra):
    """Scan-bound monotonicity: growing the table never lowers the cost."""
    views, cardinalities, mode = inputs
    plan = build_plan(views, cardinalities, mode, NATIVE)
    small = estimate_plan_cost(plan, rows, cardinalities, NATIVE)
    large = estimate_plan_cost(plan, rows + extra, cardinalities, NATIVE)
    assert large.rows_scanned >= small.rows_scanned
    for model in (CostModel(), *(CostModel(c) for c in SEEDED_COEFFICIENTS.values())):
        assert model.predict_seconds(large) >= model.predict_seconds(small)


@settings(max_examples=60, deadline=None)
@given(inputs=plan_inputs(), rows=st.integers(1, 10**6))
def test_native_grouping_sets_never_dearer_than_fanout(inputs, rows):
    """The same grouping-sets plan costs no more with native support:
    the UNION ALL emulation re-scans the base table once per set."""
    views, cardinalities, _ = inputs
    plan = build_plan(views, cardinalities, GroupByCombining.GROUPING_SETS, NATIVE)
    native = estimate_plan_cost(plan, rows, cardinalities, NATIVE)
    fanout = estimate_plan_cost(plan, rows, cardinalities, EMULATED)
    assert native.n_queries <= fanout.n_queries
    assert native.n_scans <= fanout.n_scans
    assert native.rows_scanned <= fanout.rows_scanned
    assert native.n_statements == fanout.n_statements  # one UNION ALL batch
    for model in (CostModel(), *(CostModel(c) for c in SEEDED_COEFFICIENTS.values())):
        assert model.predict_seconds(native) <= model.predict_seconds(fanout)


@settings(max_examples=60, deadline=None)
@given(
    inputs=plan_inputs(),
    rows=st.integers(100, 10**6),
    fractions=st.tuples(st.floats(0.01, 1.0), st.floats(0.01, 1.0)),
)
def test_smaller_sample_fraction_never_scans_more(inputs, rows, fractions):
    views, cardinalities, mode = inputs
    lo, hi = min(fractions), max(fractions)
    plan = build_plan(
        views, cardinalities, mode, NATIVE, table="t__seedb_sample_500000_7"
    )
    small = estimate_plan_cost(plan, rows, cardinalities, NATIVE, sample_fraction=lo)
    large = estimate_plan_cost(plan, rows, cardinalities, NATIVE, sample_fraction=hi)
    assert small.rows_scanned <= large.rows_scanned
    assert small.n_queries == large.n_queries  # sampling changes rows, not shape


@settings(max_examples=100, deadline=None)
@given(st.integers(1, 10**8))
def test_hoeffding_epsilon_shrinks_with_n(n):
    assert hoeffding_epsilon(2 * n) < hoeffding_epsilon(n)


@settings(max_examples=100, deadline=None)
@given(rows=st.integers(1, 10**8), epsilon=st.floats(1e-4, 1.0))
def test_chosen_fraction_meets_epsilon_budget(rows, epsilon):
    fraction = choose_sample_fraction(rows, epsilon)
    if fraction is not None:
        assert hoeffding_epsilon(int(rows * fraction)) <= epsilon


def test_sample_fraction_roundtrips_through_table_name():
    from repro.engine.cache import sample_table_name

    name = sample_table_name("orders", 0.05, 7)
    assert sample_fraction_from_table(name) == 0.05
    assert sample_fraction_from_table("orders") is None
