"""Property tests: CSV write/read roundtrip preserves tables."""

import string
from datetime import date, timedelta

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.csvio import read_csv, write_csv
from repro.db.table import Table

# Text that survives the type-inference roundtrip unchanged: non-empty,
# no leading/trailing whitespace, and not parseable as another type
# (read_csv treats true/t/yes/false/f/no as booleans by design).
_SAFE_ALPHABET = string.ascii_lowercase + "_:;!@#()[] "
_BOOL_WORDS = {"true", "t", "yes", "false", "f", "no"}


def _safe_text(value: str) -> bool:
    return (
        bool(value)
        and value == value.strip()
        and value.lower() not in _BOOL_WORDS
    )


safe_strings = st.text(_SAFE_ALPHABET, min_size=1, max_size=12).filter(_safe_text)


@st.composite
def tables(draw):
    n = draw(st.integers(1, 40))

    def column_of(strategy):
        return draw(st.lists(strategy, min_size=n, max_size=n))

    data = {
        "label": column_of(safe_strings),
        "count": column_of(st.integers(-10**9, 10**9)),
        "ratio": column_of(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False).map(
                lambda v: round(v, 6)
            )
        ),
        "flag": column_of(st.booleans()),
        "day": column_of(
            st.integers(0, 3000).map(lambda d: date(2018, 1, 1) + timedelta(days=d))
        ),
    }
    return Table.from_columns("t", data)


@settings(max_examples=60, deadline=None)
@given(table=tables())
def test_roundtrip_preserves_rows_and_types(table, tmp_path_factory):
    path = tmp_path_factory.mktemp("csv") / "t.csv"
    write_csv(table, path)
    loaded = read_csv(path)
    assert loaded.schema.names == table.schema.names
    for name in table.schema.names:
        original = table.schema[name].dtype
        roundtripped = loaded.schema[name].dtype
        assert roundtripped is original, name
    original_rows = table.to_rows()
    loaded_rows = loaded.to_rows()
    assert len(original_rows) == len(loaded_rows)
    for row_a, row_b in zip(original_rows, loaded_rows):
        for cell_a, cell_b in zip(row_a, row_b):
            if isinstance(cell_a, float):
                assert cell_b == pytest.approx(cell_a, rel=1e-12)
            else:
                assert str(cell_a) == str(cell_b)
