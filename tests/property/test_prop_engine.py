"""Property tests: the engine agrees with brute-force Python aggregation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.aggregates import Aggregate
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.expressions import col
from repro.db.query import AggregateQuery, FlagColumn, GroupingSetsQuery
from repro.db.table import Table
from repro.db.types import AttributeRole


@st.composite
def random_tables(draw):
    n_rows = draw(st.integers(1, 60))
    keys = draw(
        st.lists(
            st.sampled_from(["a", "b", "c", "d"]),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    second = draw(
        st.lists(st.sampled_from(["x", "y"]), min_size=n_rows, max_size=n_rows)
    )
    values = draw(
        st.lists(
            st.one_of(
                st.floats(-1000, 1000, allow_nan=False, allow_infinity=False),
                st.just(float("nan")),
            ),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    return Table.from_columns(
        "t",
        {"k": keys, "j": second, "v": values},
        roles={
            "k": AttributeRole.DIMENSION,
            "j": AttributeRole.DIMENSION,
            "v": AttributeRole.MEASURE,
        },
    )


def brute_force(table, func):
    """Reference group-by via plain Python dicts (NaN = NULL)."""
    groups = {}
    for key, value in zip(table.column("k"), table.column("v")):
        groups.setdefault(str(key), []).append(float(value))
    result = {}
    for key, values in groups.items():
        valid = [v for v in values if not math.isnan(v)]
        if func == "count":
            result[key] = float(len(values))
        elif func == "sum":
            result[key] = float(sum(valid))
        elif func == "countv":
            result[key] = float(len(valid))
        elif func == "avg":
            result[key] = sum(valid) / len(valid) if valid else float("nan")
        elif func == "min":
            result[key] = min(valid) if valid else float("nan")
        elif func == "max":
            result[key] = max(valid) if valid else float("nan")
    return result


@settings(max_examples=50, deadline=None)
@given(table=random_tables(), func=st.sampled_from(["count", "sum", "avg", "min", "max", "countv"]))
def test_groupby_matches_brute_force(table, func):
    catalog = Catalog()
    catalog.register(table)
    engine = Engine(catalog)
    aggregate = Aggregate(func) if func == "count" else Aggregate(func, "v")
    result = engine.execute(AggregateQuery("t", ("k",), (aggregate,)))
    expected = brute_force(table, func)
    assert result.num_rows == len(expected)
    for key, value in zip(result.column("k"), result.column(aggregate.alias)):
        reference = expected[str(key)]
        if math.isnan(reference):
            assert math.isnan(value)
        else:
            assert value == pytest.approx(reference, rel=1e-9, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(table=random_tables())
def test_grouping_sets_equal_independent_queries(table):
    catalog = Catalog()
    catalog.register(table)
    engine = Engine(catalog)
    query = GroupingSetsQuery(
        "t",
        (("k",), ("j",), ("k", "j")),
        (Aggregate("sum", "v"), Aggregate("count")),
    )
    shared = engine.execute_grouping_sets(query)
    for single, shared_result in zip(query.as_single_queries(), shared):
        independent = engine.execute(single)
        assert independent.num_rows == shared_result.num_rows
        for column in independent.schema.names:
            a = independent.column(column)
            b = shared_result.column(column)
            if a.dtype.kind == "f":
                np.testing.assert_allclose(a, b, equal_nan=True)
            else:
                assert list(a) == list(b)


@settings(max_examples=40, deadline=None)
@given(table=random_tables())
def test_flag_partitions_cover_table(table):
    """flag=1 rows + flag=0 rows must account for every row exactly once."""
    catalog = Catalog()
    catalog.register(table)
    engine = Engine(catalog)
    flag = FlagColumn("f", col("j") == "x")
    result = engine.execute(
        AggregateQuery("t", (flag, "k"), (Aggregate("count"),))
    )
    assert float(np.sum(result.column("count(*)"))) == table.num_rows


@settings(max_examples=40, deadline=None)
@given(table=random_tables())
def test_filter_then_group_consistent(table):
    """Predicate + group-by == group-by over a pre-filtered table."""
    catalog = Catalog()
    catalog.register(table)
    engine = Engine(catalog)
    predicate = col("j") == "x"
    direct = engine.execute(
        AggregateQuery("t", ("k",), (Aggregate("count"),), predicate)
    )
    mask = predicate.evaluate(table)
    filtered = table.mask(mask, name="t2")
    catalog.register(filtered)
    indirect = engine.execute(AggregateQuery("t2", ("k",), (Aggregate("count"),)))
    assert direct.to_rows() == indirect.to_rows()
