"""Property tests: metric axioms on random probability distributions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.normalize import normalize_distribution
from repro.metrics.registry import available_metrics, get_metric

SYMMETRIC_METRICS = ("euclidean", "js", "total_variation", "chisquare", "maxdev", "emd")
BOUNDED_BY_ONE = ("js", "total_variation", "chisquare", "maxdev")


@st.composite
def distribution_pairs(draw, min_size=2, max_size=12):
    size = draw(st.integers(min_size, max_size))
    positive = st.floats(0.0, 100.0, allow_nan=False)
    raw_p = draw(
        st.lists(positive, min_size=size, max_size=size).filter(
            lambda values: sum(values) > 0
        )
    )
    raw_q = draw(
        st.lists(positive, min_size=size, max_size=size).filter(
            lambda values: sum(values) > 0
        )
    )
    return (
        normalize_distribution(np.array(raw_p)),
        normalize_distribution(np.array(raw_q)),
    )


@settings(max_examples=60, deadline=None)
@given(pair=distribution_pairs())
def test_non_negative_and_finite(pair):
    p, q = pair
    for name in available_metrics():
        value = get_metric(name).distance(p, q)
        assert value >= 0.0, name
        assert np.isfinite(value), name


@settings(max_examples=60, deadline=None)
@given(pair=distribution_pairs())
def test_identity_of_indiscernibles(pair):
    p, _q = pair
    for name in available_metrics():
        assert get_metric(name).distance(p, p.copy()) == pytest.approx(
            0.0, abs=1e-9
        ), name


@settings(max_examples=60, deadline=None)
@given(pair=distribution_pairs())
def test_symmetry(pair):
    p, q = pair
    for name in SYMMETRIC_METRICS:
        metric = get_metric(name)
        assert metric.distance(p, q) == pytest.approx(
            metric.distance(q, p), rel=1e-9, abs=1e-12
        ), name


@settings(max_examples=60, deadline=None)
@given(pair=distribution_pairs())
def test_bounded_metrics_stay_in_unit_interval(pair):
    p, q = pair
    for name in BOUNDED_BY_ONE:
        assert get_metric(name).distance(p, q) <= 1.0 + 1e-9, name


@st.composite
def distribution_triples(draw):
    size = draw(st.integers(2, 8))
    positive = st.floats(0.0, 100.0, allow_nan=False)

    def one():
        raw = draw(
            st.lists(positive, min_size=size, max_size=size).filter(
                lambda values: sum(values) > 0
            )
        )
        return normalize_distribution(np.array(raw))

    return one(), one(), one()


@settings(max_examples=60, deadline=None)
@given(triple=distribution_triples())
def test_triangle_inequality_for_true_metrics(triple):
    p, q, r = triple
    for name in ("euclidean", "js", "total_variation", "maxdev"):
        metric = get_metric(name)
        assert metric.distance(p, r) <= (
            metric.distance(p, q) + metric.distance(q, r) + 1e-9
        ), name


@settings(max_examples=60, deadline=None)
@given(
    raw=st.lists(
        st.floats(-50.0, 100.0, allow_nan=False), min_size=1, max_size=20
    )
)
def test_normalize_always_valid_under_shift(raw):
    from repro.metrics.normalize import NormalizationPolicy

    result = normalize_distribution(np.array(raw), NormalizationPolicy.SHIFT)
    assert result.sum() == pytest.approx(1.0)
    assert (result >= 0).all()


@settings(max_examples=60, deadline=None)
@given(pair=distribution_pairs(min_size=2, max_size=6))
def test_kl_smoothing_monotone_in_epsilon_limit(pair):
    """Smaller epsilon keeps KL closer to the unsmoothed value when the
    support matches (no zeros in q)."""
    from repro.metrics.kl import KLDivergence

    p, q = pair
    if (q <= 1e-12).any() or (p <= 1e-12).any():
        return  # unsmoothed KL undefined; skip
    exact = float(np.sum(p * np.log(p / q)))
    error_small = abs(KLDivergence(1e-12).distance(p, q) - exact)
    error_large = abs(KLDivergence(1e-2).distance(p, q) - exact)
    assert error_small <= error_large + 1e-9
