"""Property tests: every plan shape extracts identical view data.

The optimizer's central contract — combining strategies change *work*, not
*answers* — verified on randomized tables (random group structures, NaN
measures, random predicates) against the two-independent-queries baseline.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.memory import MemoryBackend
from repro.db.expressions import col
from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.model.view import ViewSpec
from repro.optimizer.plan import (
    ExecutionPlan,
    FlagStep,
    MultiDimStep,
    RollupStep,
    SeparateStep,
    ViewGroup,
)

FUNCS = ["sum", "avg", "min", "max", "count", "var"]


@st.composite
def workloads(draw):
    n_rows = draw(st.integers(2, 80))
    d1 = draw(st.lists(st.sampled_from(["a", "b", "c"]), min_size=n_rows, max_size=n_rows))
    d2 = draw(st.lists(st.sampled_from(["x", "y", "z", "w"]), min_size=n_rows, max_size=n_rows))
    measures = draw(
        st.lists(
            st.one_of(
                st.floats(-100, 100, allow_nan=False, allow_infinity=False),
                st.just(float("nan")),
            ),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    table = Table.from_columns(
        "t",
        {"d1": d1, "d2": d2, "m": measures},
        roles={
            "d1": AttributeRole.DIMENSION,
            "d2": AttributeRole.DIMENSION,
            "m": AttributeRole.MEASURE,
        },
    )
    predicate_value = draw(st.sampled_from(["x", "y", "z", "w"]))
    funcs = draw(
        st.lists(st.sampled_from(FUNCS), min_size=1, max_size=3, unique=True)
    )
    views = []
    for func in funcs:
        measure = None if func == "count" else "m"
        views.append(ViewSpec("d1", measure, func))
    return table, (col("d2") == predicate_value), views


def baseline(backend, predicate, views):
    plan = ExecutionPlan(
        [SeparateStep("t", predicate, ViewGroup(v.dimension, (v,))) for v in views]
    )
    return plan.run(backend)


def assert_matches(actual, expected):
    assert set(actual) == set(expected)
    for spec in expected:
        a, e = actual[spec], expected[spec]
        assert a.target_keys == e.target_keys, spec.label
        assert a.comparison_keys == e.comparison_keys, spec.label
        np.testing.assert_allclose(
            a.target_values, e.target_values, equal_nan=True, atol=1e-9,
            err_msg=spec.label,
        )
        np.testing.assert_allclose(
            a.comparison_values, e.comparison_values, equal_nan=True, atol=1e-9,
            err_msg=spec.label,
        )


@settings(max_examples=40, deadline=None)
@given(workload=workloads())
def test_flag_step_equals_baseline(workload):
    table, predicate, views = workload
    backend = MemoryBackend()
    backend.register_table(table)
    expected = baseline(backend, predicate, views)
    plan = ExecutionPlan([FlagStep("t", predicate, ViewGroup("d1", tuple(views)))])
    assert_matches(plan.run(backend), expected)


@settings(max_examples=40, deadline=None)
@given(workload=workloads(), combine_flag=st.booleans())
def test_multidim_step_equals_baseline(workload, combine_flag):
    table, predicate, views = workload
    backend = MemoryBackend()
    backend.register_table(table)
    expected = baseline(backend, predicate, views)
    # Add a second dimension group to force real grouping-sets execution.
    extra = ViewSpec("d2", "m", "sum")
    expected.update(baseline(backend, predicate, [extra]))
    plan = ExecutionPlan(
        [
            MultiDimStep(
                "t",
                predicate,
                (ViewGroup("d1", tuple(views)), ViewGroup("d2", (extra,))),
                combine_flag=combine_flag,
            )
        ]
    )
    assert_matches(plan.run(backend), expected)


@settings(max_examples=40, deadline=None)
@given(workload=workloads(), combine_flag=st.booleans())
def test_rollup_step_equals_baseline(workload, combine_flag):
    table, predicate, views = workload
    backend = MemoryBackend()
    backend.register_table(table)
    expected = baseline(backend, predicate, views)
    extra = ViewSpec("d2", "m", "avg")
    expected.update(baseline(backend, predicate, [extra]))
    plan = ExecutionPlan(
        [
            RollupStep(
                "t",
                predicate,
                (ViewGroup("d1", tuple(views)), ViewGroup("d2", (extra,))),
                combine_flag=combine_flag,
            )
        ]
    )
    assert_matches(plan.run(backend), expected)
