"""Property tests: sampler invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.table import Table
from repro.sampling import BernoulliSampler, ReservoirSampler, StratifiedSampler
from repro.sampling.reservoir import reservoir_indices


@st.composite
def tables(draw):
    n = draw(st.integers(1, 300))
    keys = draw(
        st.lists(st.sampled_from(["g1", "g2", "g3"]), min_size=n, max_size=n)
    )
    return Table.from_columns(
        "t", {"k": keys, "v": [float(i) for i in range(n)]}
    )


@settings(max_examples=50, deadline=None)
@given(table=tables(), fraction=st.floats(0.05, 1.0), seed=st.integers(0, 1000))
def test_bernoulli_rows_are_subset_without_duplicates(table, fraction, seed):
    sample = BernoulliSampler(fraction).sample(table, seed=seed)
    assert sample.num_rows <= table.num_rows
    values = list(sample.column("v"))
    assert len(set(values)) == len(values)  # row indices unique
    assert set(values) <= set(table.column("v"))


@settings(max_examples=50, deadline=None)
@given(table=tables(), capacity=st.integers(1, 400), seed=st.integers(0, 1000))
def test_reservoir_exact_size(table, capacity, seed):
    sample = ReservoirSampler(capacity).sample(table, seed=seed)
    assert sample.num_rows == min(capacity, table.num_rows)
    values = list(sample.column("v"))
    assert len(set(values)) == len(values)


@settings(max_examples=50, deadline=None)
@given(
    stream_length=st.integers(0, 500),
    capacity=st.integers(1, 50),
    seed=st.integers(0, 10_000),
)
def test_streaming_reservoir_invariants(stream_length, capacity, seed):
    indices = reservoir_indices(range(stream_length), capacity, seed=seed)
    assert len(indices) == min(capacity, stream_length)
    assert indices == sorted(set(indices))
    assert all(0 <= i < stream_length for i in indices)


@settings(max_examples=50, deadline=None)
@given(
    table=tables(),
    fraction=st.floats(0.05, 1.0),
    floor=st.integers(0, 5),
    seed=st.integers(0, 1000),
)
def test_stratified_floor_guaranteed(table, fraction, floor, seed):
    sample = StratifiedSampler("k", fraction, min_per_stratum=floor).sample(
        table, seed=seed
    )
    original_counts = {}
    for key in table.column("k"):
        original_counts[str(key)] = original_counts.get(str(key), 0) + 1
    sample_counts = {}
    for key in sample.column("k"):
        sample_counts[str(key)] = sample_counts.get(str(key), 0) + 1
    for group, available in original_counts.items():
        assert sample_counts.get(group, 0) >= min(floor, available)


@settings(max_examples=30, deadline=None)
@given(table=tables(), seed=st.integers(0, 100))
def test_samplers_deterministic(table, seed):
    for sampler in (
        BernoulliSampler(0.4),
        ReservoirSampler(17),
        StratifiedSampler("k", 0.4),
    ):
        first = sampler.sample(table, seed=seed)
        second = sampler.sample(table, seed=seed)
        assert first.to_rows() == second.to_rows()
