"""Property tests: the shared-memory result codec is a bit-exact bijection.

The cluster tier's coalescing guarantee ("identical concurrent requests
get bit-identical results, whichever process executed them") reduces to
this codec being lossless for everything an engine result can carry:
every aggregate dtype (floats with NaN, ints, bools, datetime64 with
NaT, object columns with NULLs), ``date``/``datetime`` group literals,
tuple groups from multi-attribute views, and exact (not approximate)
float utilities.
"""

from __future__ import annotations

from datetime import date, datetime

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multiview import MultiViewSpec
from repro.core.result import RecommendationResult
from repro.core.view import ScoredView, ViewSpec
from repro.pruning.base import PruneReport
from repro.service.shm import decode_result, encode_result
from repro.util.timing import Stopwatch

DIMENSIONS = ("region", "product", "channel", "store")
MEASURES = ("sales", "profit", "units")

#: Group literal pool covering every value family the engine emits from
#: real backends: strings, ints, floats, bools, NULL, calendar types, and
#: the tagged wire forms ($date and friends) that must survive transport.
group_values = st.one_of(
    st.text(min_size=0, max_size=8),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.booleans(),
    st.none(),
    st.dates(min_value=date(1970, 1, 1), max_value=date(2100, 1, 1)),
    st.datetimes(
        min_value=datetime(1970, 1, 1), max_value=datetime(2100, 1, 1)
    ),
)

utilities = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def numeric_arrays(draw, size: int) -> np.ndarray:
    """An aligned aggregate-value array in one of the raw-buffer dtypes."""
    dtype = draw(
        st.sampled_from(["f8", "f4", "i8", "i4", "u8", "b1", "M8[D]", "M8[s]"])
    )
    if dtype == "b1":
        values = draw(st.lists(st.booleans(), min_size=size, max_size=size))
        return np.array(values, dtype=bool)
    if dtype.startswith("M8"):
        day = st.integers(min_value=0, max_value=40000)
        values = draw(
            st.lists(st.one_of(day, st.none()), min_size=size, max_size=size)
        )
        return np.array(
            [np.datetime64("NaT") if v is None else v for v in values],
            dtype=dtype,
        )
    if dtype.startswith(("i", "u")):
        info = np.iinfo(dtype)
        values = draw(
            st.lists(
                st.integers(min_value=int(info.min), max_value=int(info.max)),
                min_size=size,
                max_size=size,
            )
        )
        return np.array(values, dtype=dtype)
    values = draw(
        st.lists(
            st.one_of(
                st.floats(allow_infinity=False, width=32),
                st.just(float("nan")),
            ),
            min_size=size,
            max_size=size,
        )
    )
    return np.array(values, dtype=dtype)


@st.composite
def value_arrays(draw, size: int) -> np.ndarray:
    """Aggregate values: either a raw-buffer dtype or an object column
    with NULLs (what a SQL backend yields for a nullable column)."""
    if draw(st.booleans()):
        return draw(numeric_arrays(size))
    values = draw(st.lists(group_values, min_size=size, max_size=size))
    return np.array(values, dtype=object)


@st.composite
def scored_views(draw, index: int) -> ScoredView:
    multi = draw(st.booleans())
    measure = draw(st.sampled_from(MEASURES + (None,)))
    func = "count" if measure is None else draw(st.sampled_from(["sum", "avg"]))
    if multi:
        dims = DIMENSIONS[index % 2: index % 2 + 2]
        spec = MultiViewSpec(dimensions=dims, measure=measure, func=func)
        size = draw(st.integers(0, 5))
        groups = [
            tuple(draw(st.lists(group_values, min_size=2, max_size=2)))
            for _ in range(size)
        ]
    else:
        spec = ViewSpec(DIMENSIONS[index % len(DIMENSIONS)], measure, func)
        size = draw(st.integers(0, 5))
        groups = draw(st.lists(group_values, min_size=size, max_size=size))
    distributions = st.lists(
        st.one_of(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            st.just(float("nan")),
        ),
        min_size=size,
        max_size=size,
    )
    return ScoredView(
        spec=spec,
        utility=draw(utilities),
        groups=groups,
        target_distribution=np.array(draw(distributions), dtype=np.float64),
        comparison_distribution=np.array(draw(distributions), dtype=np.float64),
        target_values=draw(value_arrays(size)),
        comparison_values=draw(value_arrays(size)),
    )


@st.composite
def results(draw) -> RecommendationResult:
    n_views = draw(st.integers(1, 4))
    views = [draw(scored_views(i)) for i in range(n_views)]
    k = draw(st.integers(1, n_views))
    return RecommendationResult(
        table=draw(st.sampled_from(["orders", "census"])),
        predicate_description=draw(st.text(max_size=20)),
        k=k,
        metric=draw(st.sampled_from(["js", "emd", "euclidean"])),
        recommendations=views[:k],
        all_scored={view.spec: view for view in views},
        prune_reports=[
            PruneReport(
                rule="variance",
                examined=n_views,
                pruned=[(views[-1].spec, "flat")],
            )
        ],
        stopwatch=Stopwatch(
            phases={"execute": draw(utilities), "score": draw(utilities)}
        ),
        n_candidate_views=n_views,
        n_executed_views=n_views,
        n_queries=draw(st.integers(0, 100)),
        sample_fraction=draw(st.one_of(st.none(), st.just(0.25))),
        plan_description=draw(st.sampled_from(["combined", "sequential"])),
        reference_description=draw(st.sampled_from(["table", "complement"])),
    )


def assert_array_identical(got: np.ndarray, expected: np.ndarray) -> None:
    assert got.dtype == expected.dtype
    assert got.shape == expected.shape
    if expected.dtype == object:
        for got_item, expected_item in zip(got, expected):
            if isinstance(expected_item, float) and np.isnan(expected_item):
                assert isinstance(got_item, float) and np.isnan(got_item)
            else:
                assert got_item == expected_item
                assert type(got_item) is type(expected_item)
    elif expected.dtype.kind == "f":
        # Bit-exact, not almost-equal: NaNs equal, -0.0 preserved.
        assert np.array_equal(
            got.view(np.uint8), expected.view(np.uint8)
        )
    elif expected.dtype.kind == "M":
        nat = np.isnat(expected)
        assert np.array_equal(np.isnat(got), nat)
        assert np.array_equal(got[~nat], expected[~nat])
    else:
        assert np.array_equal(got, expected)


def assert_view_identical(got: ScoredView, expected: ScoredView) -> None:
    assert got.spec == expected.spec
    assert type(got.spec) is type(expected.spec)
    assert got.utility == expected.utility  # exact float equality
    assert len(got.groups) == len(expected.groups)
    for got_group, expected_group in zip(got.groups, expected.groups):
        assert got_group == expected_group
        assert type(got_group) is type(expected_group)
    assert_array_identical(got.target_distribution, expected.target_distribution)
    assert_array_identical(
        got.comparison_distribution, expected.comparison_distribution
    )
    assert_array_identical(got.target_values, expected.target_values)
    assert_array_identical(got.comparison_values, expected.comparison_values)


@settings(max_examples=60, deadline=None)
@given(result=results(), version=st.integers(0, 2**32))
def test_round_trip_is_bit_exact(result, version):
    digest = "ab" * 32
    blob = encode_result(result, digest=digest, data_version=version)
    got_digest, got_version, decoded = decode_result(blob)
    assert (got_digest, got_version) == (digest, version)
    assert decoded.table == result.table
    assert decoded.predicate_description == result.predicate_description
    assert (decoded.k, decoded.metric) == (result.k, result.metric)
    assert len(decoded.recommendations) == len(result.recommendations)
    for got, expected in zip(decoded.recommendations, result.recommendations):
        assert_view_identical(got, expected)
    assert list(decoded.all_scored) == list(result.all_scored)
    for got, expected in zip(
        decoded.all_scored.values(), result.all_scored.values()
    ):
        assert_view_identical(got, expected)
    report = decoded.prune_reports[0]
    assert report.rule == "variance"
    assert report.pruned == result.prune_reports[0].pruned
    assert decoded.stopwatch.phases == result.stopwatch.phases
    assert decoded.n_queries == result.n_queries
    assert decoded.sample_fraction == result.sample_fraction


@settings(max_examples=30, deadline=None)
@given(result=results())
def test_double_round_trip_is_stable(result):
    """encode∘decode is idempotent: the second pass reproduces the first
    byte-for-byte, so republishing a transported result is safe."""
    first = encode_result(result, digest="cd" * 32, data_version=1)
    _, _, decoded = decode_result(first)
    second = encode_result(decoded, digest="cd" * 32, data_version=1)
    assert first == second
