"""Property tests: predicate AST → SQL → parse → evaluate roundtrip.

Random predicate trees are rendered to SQL (sqlgen), parsed back
(sqlparser), and both ASTs evaluated against a random table — the row
masks must match exactly. This pins the renderer and the parser to the
same semantics without hand-enumerating syntax cases.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends.sqlgen import render_expression
from repro.db.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    In,
    Literal,
    Not,
    Or,
)
from repro.db.table import Table
from repro.sqlparser import parse_predicate

STR_VALUES = ["alpha", "beta", "gamma", "it's", "d e"]
INT_VALUES = [0, 1, 5, 42]


@st.composite
def comparisons(draw):
    if draw(st.booleans()):
        column = ColumnRef("name")
        value = draw(st.sampled_from(STR_VALUES))
        op = draw(st.sampled_from(["=", "!="]))
    else:
        column = ColumnRef("num")
        value = draw(st.sampled_from(INT_VALUES))
        op = draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="]))
    return Comparison(op, column, Literal(value))


@st.composite
def conditions(draw):
    kind = draw(st.sampled_from(["cmp", "in", "between"]))
    if kind == "cmp":
        return draw(comparisons())
    if kind == "in":
        values = tuple(
            draw(
                st.lists(st.sampled_from(STR_VALUES), min_size=1, max_size=3)
            )
        )
        return In(ColumnRef("name"), values)
    low = draw(st.sampled_from(INT_VALUES))
    high = draw(st.sampled_from(INT_VALUES))
    return Between(ColumnRef("num"), min(low, high), max(low, high))


@st.composite
def predicates(draw, depth=0):
    if depth >= 2 or draw(st.integers(0, 2)) == 0:
        return draw(conditions())
    kind = draw(st.sampled_from(["and", "or", "not"]))
    if kind == "not":
        return Not(draw(predicates(depth=depth + 1)))
    operands = tuple(
        draw(predicates(depth=depth + 1))
        for _ in range(draw(st.integers(2, 3)))
    )
    return And(operands) if kind == "and" else Or(operands)


@st.composite
def random_tables(draw):
    n = draw(st.integers(1, 50))
    names = draw(
        st.lists(st.sampled_from(STR_VALUES), min_size=n, max_size=n)
    )
    nums = draw(st.lists(st.sampled_from(INT_VALUES + [3, 7, 100]), min_size=n, max_size=n))
    return Table.from_columns("t", {"name": names, "num": nums})


@settings(max_examples=120, deadline=None)
@given(predicate=predicates(), table=random_tables())
def test_render_parse_roundtrip_preserves_semantics(predicate, table):
    sql = render_expression(predicate)
    reparsed = parse_predicate(sql)
    original_mask = predicate.evaluate(table)
    reparsed_mask = reparsed.evaluate(table)
    np.testing.assert_array_equal(original_mask, reparsed_mask)


@settings(max_examples=120, deadline=None)
@given(predicate=predicates())
def test_rendered_sql_is_stable(predicate):
    """Render → parse → render must be a fixed point (canonical form)."""
    once = render_expression(predicate)
    twice = render_expression(parse_predicate(once))
    assert once == twice
