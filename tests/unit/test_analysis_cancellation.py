"""cancellation checker: long-running loops must observe cancellation."""

from __future__ import annotations

from repro.analysis.checkers.cancellation import CancellationChecker
from repro.analysis.core import ProgramFacts
from repro.analysis.facts import extract_module


def run(source: str, path: str = "src/repro/engine/phases.py"):
    program = ProgramFacts([extract_module(path, source=source)])
    return CancellationChecker().check(program)


BLOCKING_NO_CHECK = """
def pump(worker, queries):
    for query in queries:
        worker.backend.execute(query)
"""

BLOCKING_WITH_TOKEN = """
def pump(worker, queries, token):
    for query in queries:
        token.check()
        worker.backend.execute(query)
"""

WHILE_TRUE_NO_CHECK = """
def serve(inbox):
    while True:
        handle(inbox)
"""

WHILE_TRUE_WITH_DEADLINE = """
def serve(inbox, deadline):
    while True:
        if deadline.expired():
            return
        handle(inbox)
"""


def test_blocking_loop_without_checkpoint_flagged():
    violations = run(BLOCKING_NO_CHECK)
    assert len(violations) == 1
    assert violations[0].rule == "cancellation"
    assert "pump" in violations[0].message
    assert "execute" in violations[0].message


def test_token_checkpoint_satisfies_loop():
    assert run(BLOCKING_WITH_TOKEN) == []


def test_while_true_without_checkpoint_flagged():
    violations = run(WHILE_TRUE_NO_CHECK)
    assert len(violations) == 1
    assert "while True" in violations[0].message


def test_deadline_vocabulary_satisfies_while_true():
    assert run(WHILE_TRUE_WITH_DEADLINE) == []


def test_closing_event_condition_satisfies_loop():
    source = """
def route(self, reader):
    while not self._closing.is_set():
        reader.recv()
"""
    assert run(source) == []


def test_bounded_waits_only_are_clean():
    source = """
def drain(futures):
    for future in futures:
        future.result(timeout=5.0)
"""
    assert run(source) == []


def test_outer_checkpoint_covers_inner_loop():
    # The outer loop checks the token each round; the inner loop iterates
    # between those checks and needs no checkpoint of its own.
    source = """
def sweep(groups, token):
    for group in groups:
        token.check()
        for view in group:
            view.backend.execute(view.query)
"""
    assert run(source) == []


def test_out_of_scope_module_ignored():
    assert run(BLOCKING_NO_CHECK, path="src/repro/frontend/cli.py") == []
