"""Framework plumbing: suppressions, baseline waivers, report contract."""

from __future__ import annotations

import pytest

from repro.analysis.baseline import (
    Baseline,
    BaselineError,
    Waiver,
    load_baseline,
)
from repro.analysis.baseline import _parse_minimal
from repro.analysis.core import (
    CHECKERS,
    ProgramFacts,
    Violation,
    analyze_paths,
)
from repro.analysis.facts import extract_module


def module_from(source: str, path: str = "src/repro/pkg/mod.py"):
    return extract_module(path, source=source)


class TestSuppressions:
    def test_same_line_suppression(self):
        module = module_from(
            "x = 1  # seedb-lint: disable=lock-order -- known benign\n"
        )
        assert module.suppressed("lock-order", 1)
        assert not module.suppressed("cancellation", 1)

    def test_standalone_comment_covers_next_line(self):
        module = module_from(
            "# seedb-lint: disable=lock-order -- reason here\n"
            "x = 1\n"
        )
        assert module.suppressed("lock-order", 2)

    def test_trailing_comment_does_not_leak_to_next_line(self):
        # A suppression attached to line 1's statement must not silence a
        # finding on line 2.
        module = module_from(
            "x = 1  # seedb-lint: disable=lock-order -- for line 1 only\n"
            "y = 2\n"
        )
        assert module.suppressed("lock-order", 1)
        assert not module.suppressed("lock-order", 2)

    def test_file_disable(self):
        module = module_from(
            "# seedb-lint: file-disable=counter-accounting\n"
            "x = 1\n"
            "y = 2\n"
        )
        assert module.suppressed("counter-accounting", 3)
        assert not module.suppressed("lock-order", 3)

    def test_multiple_rules_one_comment(self):
        module = module_from(
            "x = 1  # seedb-lint: disable=lock-order,cancellation -- both\n"
        )
        assert module.suppressed("lock-order", 1)
        assert module.suppressed("cancellation", 1)


class TestGuardComments:
    def test_trailing_guard_does_not_leak_downward(self):
        module = module_from(
            "import threading\n"
            "\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        self._a = {}  # guarded-by: _lock\n"
            "        self._b = {}\n"
        )
        guarded = module.classes["C"].guarded
        assert "_a" in guarded
        assert guarded["_a"][0] == "_lock"
        assert "_b" not in guarded

    def test_standalone_guard_comment_annotates_next_line(self):
        module = module_from(
            "import threading\n"
            "\n"
            "class C:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n"
            "        # guarded-by: _lock\n"
            "        self._a = {}\n"
        )
        assert "_a" in module.classes["C"].guarded


class TestBaseline:
    def test_waive_matches_rule_path_and_contains(self):
        baseline = Baseline(
            [
                Waiver(
                    rule="lock-order",
                    path="engine/cache.py",
                    contains="fetch_table",
                    reason="deliberate coalescing",
                )
            ]
        )
        hit = Violation(
            rule="lock-order",
            path="src/repro/engine/cache.py",
            line=10,
            message="backend round trip 'self.backend.fetch_table' ...",
        )
        assert baseline.waive(hit) == "deliberate coalescing"
        miss_rule = Violation(
            rule="cancellation", path="src/repro/engine/cache.py",
            line=10, message="fetch_table",
        )
        assert baseline.waive(miss_rule) is None
        miss_contains = Violation(
            rule="lock-order", path="src/repro/engine/cache.py",
            line=10, message="something else entirely",
        )
        assert baseline.waive(miss_contains) is None

    def test_unused_waivers_reported(self):
        baseline = Baseline(
            [Waiver(rule="lock-order", path="nowhere.py", reason="stale")]
        )
        assert baseline.unused()
        hit = Violation("lock-order", "a/nowhere.py", 1, "x")
        baseline.waive(hit)
        assert not baseline.unused()

    def test_load_baseline_round_trip(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text(
            "[[waiver]]\n"
            'rule = "lock-order"\n'
            'path = "engine/cache.py"\n'
            'contains = "fetch_table"\n'
            'reason = "deliberate"\n'
        )
        baseline = load_baseline(str(path))
        assert len(baseline.waivers) == 1
        assert baseline.waivers[0].reason == "deliberate"

    def test_missing_reason_rejected(self, tmp_path):
        path = tmp_path / "baseline.toml"
        path.write_text(
            "[[waiver]]\n"
            'rule = "lock-order"\n'
            'path = "engine/cache.py"\n'
        )
        with pytest.raises(BaselineError):
            load_baseline(str(path))

    def test_minimal_parser_matches_expectations(self):
        # The fallback parser (Python < 3.11, no tomllib) must read the
        # subset of TOML the baseline file uses.
        doc = _parse_minimal(
            "# comment\n"
            "[[waiver]]\n"
            'rule = "a"\n'
            'path = "b.py"\n'
            'reason = "why"\n'
            "[[waiver]]\n"
            'rule = "c"\n'
            'path = "d.py"\n'
            'reason = "also why"\n'
        )
        assert len(doc["waiver"]) == 2
        assert doc["waiver"][1]["rule"] == "c"


class TestDriver:
    def test_all_five_rules_registered(self):
        import repro.analysis.checkers  # noqa: F401 - registration

        assert set(CHECKERS) == {
            "lock-order",
            "guarded-field",
            "counter-accounting",
            "cancellation",
            "wire-schema",
        }

    def test_unknown_rule_raises(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        with pytest.raises(ValueError, match="unknown rule"):
            analyze_paths([str(tmp_path)], rules=["no-such-rule"])

    def test_report_shape_on_clean_tree(self, tmp_path):
        (tmp_path / "m.py").write_text("x = 1\n")
        report = analyze_paths([str(tmp_path)])
        assert report.clean
        assert report.files == 1
        payload = report.to_dict()
        assert payload["clean"] is True
        assert payload["violations"] == []

    def test_violation_format_is_clickable(self):
        v = Violation("lock-order", "src/a.py", 12, "boom")
        assert v.format() == "src/a.py:12: [lock-order] boom"


class TestProgramFacts:
    def test_mro_and_lock_resolution(self):
        base = module_from(
            "import threading\n"
            "class Base:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.RLock()\n",
            path="src/repro/pkg/base.py",
        )
        child = module_from(
            "from repro.pkg.base import Base\n"
            "class Child(Base):\n"
            "    pass\n",
            path="src/repro/pkg/child.py",
        )
        program = ProgramFacts([base, child])
        assert program.mro("Child") == ["Child", "Base"]
        assert program.resolve_lock("Child", "_lock") == "Base._lock"
        assert program.resolve_lock("Child", "_other") is None
