"""counter-accounting checker: backend execution seams must be counted."""

from __future__ import annotations

from repro.analysis.checkers.counters import CounterAccountingChecker
from repro.analysis.core import ProgramFacts
from repro.analysis.facts import extract_module


def run(source: str, path: str = "src/repro/backends/fixture.py"):
    program = ProgramFacts([extract_module(path, source=source)])
    return CounterAccountingChecker().check(program)


UNCOUNTED = """
class FixtureBackend(Backend):
    def execute(self, query):
        return self._connection.execute(query)
"""

COUNTED_DIRECT = """
class FixtureBackend(Backend):
    def execute(self, query):
        self._record_queries(1)
        return self._connection.execute(query)
"""

COUNTED_VIA_HELPER = """
class FixtureBackend(Backend):
    def execute(self, query):
        return self._run(query)

    def _run(self, query):
        self._record_queries(1)
        return self._connection.execute(query)
"""

METADATA_COUNTED = """
class FixtureBackend(Backend):
    def row_count(self, name):
        self._record_metadata_queries(1)
        return self._connection.execute(name)
"""


def test_uncounted_raw_execute_flagged():
    violations = run(UNCOUNTED)
    assert len(violations) == 1
    assert violations[0].rule == "counter-accounting"
    assert "FixtureBackend.execute" in violations[0].message


def test_direct_recording_is_clean():
    assert run(COUNTED_DIRECT) == []


def test_recording_through_helper_is_clean():
    assert run(COUNTED_VIA_HELPER) == []


def test_metadata_recorder_also_counts():
    assert run(METADATA_COUNTED) == []


def test_exempt_lifecycle_methods_not_flagged():
    source = """
class FixtureBackend(Backend):
    def close(self):
        self._connection.execute("ROLLBACK")

    def register_table(self, table):
        self._connection.execute("CREATE TABLE t (x)")
"""
    assert run(source) == []


def test_outside_backends_tree_not_in_scope():
    # The rule is about backend seams; the same shape elsewhere is the
    # lock-order/cancellation checkers' business, not this one's.
    assert run(UNCOUNTED, path="src/repro/engine/fixture.py") == []
