"""guarded-field checker: ``# guarded-by:`` annotations are enforced."""

from __future__ import annotations

from repro.analysis.checkers.guarded_field import GuardedFieldChecker
from repro.analysis.core import ProgramFacts
from repro.analysis.facts import extract_module


def run(*sources_and_paths):
    modules = [
        extract_module(path, source=source) for source, path in sources_and_paths
    ]
    return GuardedFieldChecker().check(ProgramFacts(modules))


UNGUARDED_ACCESS = """
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}  # guarded-by: _lock

    def put(self, key, value):
        with self._lock:
            self._items[key] = value

    def size(self):
        return len(self._items)
"""


def test_access_outside_guard_flagged():
    violations = run((UNGUARDED_ACCESS, "src/repro/engine/fixture.py"))
    assert len(violations) == 1
    assert violations[0].rule == "guarded-field"
    assert "Registry._items" in violations[0].message
    assert "Registry.size" in violations[0].message


GUARDED_ACCESS = UNGUARDED_ACCESS.replace(
    "    def size(self):\n        return len(self._items)",
    "    def size(self):\n        with self._lock:\n"
    "            return len(self._items)",
)


def test_access_under_guard_is_clean():
    assert run((GUARDED_ACCESS, "src/repro/engine/fixture.py")) == []


CALLER_HOLDS = """
import threading

class Registry:
    def __init__(self):
        self._lock = threading.Lock()
        self._items = {}  # guarded-by: _lock

    def put(self, key, value):
        with self._lock:
            self._put_locked(key, value)

    def _put_locked(self, key, value):
        \"\"\"Insert one entry. Caller holds the lock.\"\"\"
        self._items[key] = value
"""


def test_caller_holds_docstring_exempts_helper():
    assert run((CALLER_HOLDS, "src/repro/engine/fixture.py")) == []


def test_init_writes_are_exempt():
    # __init__ populates guarded fields before the object is shared; the
    # UNGUARDED fixture's __init__ assignment itself must not be flagged.
    violations = run((UNGUARDED_ACCESS, "src/repro/engine/fixture.py"))
    assert all("__init__" not in v.message for v in violations)


INHERITED_GUARD_BASE = """
import threading

class Base:
    def __init__(self):
        self._lock = threading.Lock()
        self._shared = {}  # guarded-by: _lock
"""

INHERITED_GUARD_CHILD = """
from repro.pkg.base import Base

class Child(Base):
    def bad(self):
        return len(self._shared)

    def good(self):
        with self._lock:
            return len(self._shared)
"""


def test_guard_annotation_is_inherited_through_mro():
    violations = run(
        (INHERITED_GUARD_BASE, "src/repro/pkg/base.py"),
        (INHERITED_GUARD_CHILD, "src/repro/pkg/child.py"),
    )
    assert len(violations) == 1
    assert "Child.bad" in violations[0].message
