"""lock-order checker: cycles and blocking calls under a held lock.

Each fixture is a source string analyzed as if it lived in the engine
tree; the positive case must produce the violation and the corrected
twin must not — that pairing is what proves the checker (not the code
under test) is doing the work.
"""

from __future__ import annotations

from repro.analysis.checkers.lock_order import LockOrderChecker
from repro.analysis.core import ProgramFacts
from repro.analysis.facts import extract_module


def run(source: str, path: str = "src/repro/engine/fixture.py"):
    program = ProgramFacts([extract_module(path, source=source)])
    return LockOrderChecker().check(program)


CYCLE = """
import threading

class Pair:
    def __init__(self):
        self._lock = threading.Lock()
        self._other_lock = threading.Lock()

    def forward(self):
        with self._lock:
            with self._other_lock:
                pass

    def backward(self):
        with self._other_lock:
            with self._lock:
                pass
"""

CONSISTENT = """
import threading

class Pair:
    def __init__(self):
        self._lock = threading.Lock()
        self._other_lock = threading.Lock()

    def forward(self):
        with self._lock:
            with self._other_lock:
                pass

    def also_forward(self):
        with self._lock:
            with self._other_lock:
                pass
"""


def test_nested_with_cycle_detected():
    violations = run(CYCLE)
    assert len(violations) == 1
    assert violations[0].rule == "lock-order"
    assert "cycle" in violations[0].message
    assert "Pair._lock" in violations[0].message
    assert "Pair._other_lock" in violations[0].message


def test_consistent_order_is_clean():
    assert run(CONSISTENT) == []


INTERPROCEDURAL_CYCLE = """
import threading

class Service:
    def __init__(self):
        self._lock = threading.Lock()
        self._cluster_lock = threading.Lock()

    def start(self):
        with self._lock:
            with self._cluster_lock:
                pass

    def close(self):
        with self._cluster_lock:
            self._teardown()

    def _teardown(self):
        with self._lock:
            pass
"""


def test_one_hop_interprocedural_cycle_detected():
    # close() holds _cluster_lock and calls _teardown(), which takes
    # _lock — the reverse of start()'s order. This is the shape of the
    # real ClusterService.close() inversion this suite exists to prevent.
    violations = run(INTERPROCEDURAL_CYCLE)
    assert len(violations) == 1
    assert "cycle" in violations[0].message


BLOCKING_UNDER_LOCK = """
import threading

class Cache:
    def __init__(self, backend):
        self._lock = threading.Lock()
        self.backend = backend

    def load(self, name):
        with self._lock:
            return self.backend.execute(name)
"""

BLOCKING_OUTSIDE_LOCK = """
import threading

class Cache:
    def __init__(self, backend):
        self._lock = threading.Lock()
        self.backend = backend

    def load(self, name):
        with self._lock:
            cached = name
        return self.backend.execute(cached)
"""


def test_backend_call_while_holding_lock_flagged():
    violations = run(BLOCKING_UNDER_LOCK)
    assert len(violations) == 1
    assert "backend" in violations[0].message.lower()
    assert "Cache._lock" in violations[0].message


def test_backend_call_after_release_is_clean():
    assert run(BLOCKING_OUTSIDE_LOCK) == []


QUEUE_GET_UNDER_LOCK = """
import threading

class Router:
    def __init__(self, inbox):
        self._lock = threading.Lock()
        self.inbox = inbox

    def pump(self):
        with self._lock:
            return self.inbox.get()

    def pump_bounded(self):
        with self._lock:
            return self.inbox.get(timeout=1.0)
"""


def test_unbounded_queue_get_under_lock_flagged_bounded_is_not():
    violations = run(QUEUE_GET_UNDER_LOCK)
    assert len(violations) == 1
    assert violations[0].line < 12  # the unbounded get, not the bounded one
