"""wire-schema checker: only versioned additions may change the contract."""

from __future__ import annotations

import copy

from repro.analysis.checkers.wire_schema import diff_schemas, flatten


BASE = {
    "schema_version": 3,
    "fields": {
        "query": {"type": "object", "required": True},
        "k": {"type": "integer", "required": False},
    },
}


def test_identical_schema_is_clean():
    assert diff_schemas(BASE, copy.deepcopy(BASE)) == []


def test_removed_path_flagged():
    current = copy.deepcopy(BASE)
    del current["fields"]["k"]
    findings = diff_schemas(BASE, current)
    assert any(kind == "removed" and "fields.k" in path for kind, path, _ in findings)


def test_changed_value_flagged():
    current = copy.deepcopy(BASE)
    current["fields"]["k"]["required"] = True
    findings = diff_schemas(BASE, current)
    assert [kind for kind, _, _ in findings] == ["changed"]


def test_unversioned_addition_flagged():
    current = copy.deepcopy(BASE)
    current["fields"]["timeout_ms"] = {"type": "integer", "required": False}
    findings = diff_schemas(BASE, current)
    assert findings
    assert all(kind == "unversioned-add" for kind, _, _ in findings)


def test_versioned_addition_allowed():
    current = copy.deepcopy(BASE)
    current["schema_version"] = 4
    current["fields"]["timeout_ms"] = {"type": "integer", "required": False}
    assert diff_schemas(BASE, current) == []


def test_version_bump_does_not_excuse_removal():
    current = copy.deepcopy(BASE)
    current["schema_version"] = 4
    del current["fields"]["k"]
    findings = diff_schemas(BASE, current)
    assert any(kind == "removed" for kind, _, _ in findings)


def test_version_going_backwards_flagged():
    current = copy.deepcopy(BASE)
    current["schema_version"] = 2
    findings = diff_schemas(BASE, current)
    assert any(path == "schema_version" for _, path, _ in findings)


def test_flatten_distinguishes_empty_containers():
    flat = flatten({"a": {}, "b": [], "c": [1, 2]})
    assert flat["a"] == "{}"
    assert flat["b"] == "[]"
    assert flat["c[0]"] == 1
    assert flat["c[1]"] == 2
