"""Self-hosting: the shipped tree passes its own invariant lint.

This is the merge gate the CI static-analysis job enforces; keeping it in
the unit suite means a violation shows up locally before CI, with the
full finding text.
"""

from __future__ import annotations

import os

from repro.analysis.baseline import load_baseline
from repro.analysis.core import analyze_paths

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
)


def test_src_tree_is_clean_modulo_committed_baseline():
    baseline_path = os.path.join(REPO_ROOT, "analysis-baseline.toml")
    baseline = load_baseline(baseline_path)
    report = analyze_paths([os.path.join(REPO_ROOT, "src")], baseline=baseline)
    assert report.clean, "invariant lint failures:\n" + "\n".join(
        violation.format() for violation in report.violations
    )
    # All five rule families ran over the real tree.
    assert set(report.rules) == {
        "lock-order",
        "guarded-field",
        "counter-accounting",
        "cancellation",
        "wire-schema",
    }
    assert report.files > 100
    # The baseline holds no dead waivers.
    assert report.unused_waivers == []


def test_every_inline_suppression_carries_a_reason():
    # Hygiene CI greps for this too; assert it here so the failure comes
    # with context instead of a bare grep hit.
    offenders = []
    for tree in ("src", "tests"):
        for root, dirs, names in os.walk(os.path.join(REPO_ROOT, tree)):
            dirs[:] = [d for d in dirs if d != "__pycache__"]
            for name in names:
                if not name.endswith(".py"):
                    continue
                path = os.path.join(root, name)
                with open(path, "r", encoding="utf-8") as handle:
                    for lineno, line in enumerate(handle, start=1):
                        if "seedb-lint: disable" in line and " -- " not in line:
                            offenders.append(f"{path}:{lineno}: {line.strip()}")
    assert offenders == [], "suppressions without a reason:\n" + "\n".join(
        offenders
    )
