"""API-stability contract: the public surface of ``repro.api`` is frozen.

Snapshots the package's public symbols and the versioned wire schemas
(request *and*, since wire version 3, response) against
``tests/data/api_contract.json``. An accidental rename, removal, or
schema change fails here; a *deliberate* change must update the snapshot
in the same commit (and bump ``SCHEMA_VERSION`` when the wire form
changes incompatibly) — regenerate with::

    PYTHONPATH=src python tests/unit/test_api_contract.py
"""

from __future__ import annotations

import json
from pathlib import Path

SNAPSHOT_PATH = Path(__file__).parent.parent / "data" / "api_contract.json"


def current_contract() -> dict:
    import repro.api as api
    from repro.api import request_json_schema, response_json_schema

    return {
        "public_symbols": sorted(api.__all__),
        "request_schema": request_json_schema(),
        "response_schema": response_json_schema(),
    }


class TestApiContract:
    def test_snapshot_exists(self):
        assert SNAPSHOT_PATH.exists(), (
            f"missing contract snapshot {SNAPSHOT_PATH}; generate it with "
            f"`PYTHONPATH=src python {__file__}`"
        )

    def test_public_symbols_unchanged(self):
        snapshot = json.loads(SNAPSHOT_PATH.read_text())
        current = current_contract()
        missing = set(snapshot["public_symbols"]) - set(current["public_symbols"])
        added = set(current["public_symbols"]) - set(snapshot["public_symbols"])
        assert not missing, (
            f"public API symbols removed: {sorted(missing)} — removing or "
            "renaming repro.api symbols is a breaking change; if deliberate, "
            "regenerate the snapshot"
        )
        assert not added, (
            f"public API symbols added without updating the contract: "
            f"{sorted(added)} — regenerate the snapshot to record them"
        )

    def test_request_schema_unchanged(self):
        snapshot = json.loads(SNAPSHOT_PATH.read_text())
        current = json.loads(json.dumps(current_contract()))  # JSON-normalize
        assert current["request_schema"] == snapshot["request_schema"], (
            "the RecommendationRequest wire schema changed — an incompatible "
            "change must bump SCHEMA_VERSION; regenerate the snapshot once "
            "the change is deliberate"
        )

    def test_response_schema_unchanged(self):
        snapshot = json.loads(SNAPSHOT_PATH.read_text())
        current = json.loads(json.dumps(current_contract()))  # JSON-normalize
        assert current["response_schema"] == snapshot["response_schema"], (
            "the response wire schema changed — an incompatible change must "
            "bump SCHEMA_VERSION; regenerate the snapshot once the change "
            "is deliberate"
        )

    def test_all_symbols_importable(self):
        import repro.api as api

        for name in api.__all__:
            assert getattr(api, name, None) is not None, name

    def test_error_codes_are_closed_taxonomy(self):
        snapshot = json.loads(SNAPSHOT_PATH.read_text())
        from repro.api import ERROR_CODES

        assert sorted(ERROR_CODES) == snapshot["request_schema"]["error_codes"]


if __name__ == "__main__":  # regenerate the snapshot
    SNAPSHOT_PATH.parent.mkdir(parents=True, exist_ok=True)
    SNAPSHOT_PATH.write_text(
        json.dumps(current_contract(), indent=2, sort_keys=True) + "\n"
    )
    print(f"regenerated {SNAPSHOT_PATH}")
