"""Unit tests: RecommendationRequest validation, codec, and references."""

from __future__ import annotations

import datetime
import json

import pytest

from repro.api import (
    ApiError,
    RecommendationRequest,
    Reference,
    SCHEMA_VERSION,
    expression_from_wire,
    expression_to_wire,
)
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.model.reference import TABLE_REFERENCE
from repro.util.errors import SqlSyntaxError


def expect_api_error(code, field=None):
    """Context manager asserting an ApiError with the given taxonomy."""
    import contextlib

    @contextlib.contextmanager
    def checker():
        with pytest.raises(ApiError) as excinfo:
            yield
        assert excinfo.value.code == code, excinfo.value.to_dict()
        if field is not None:
            assert excinfo.value.field == field, excinfo.value.to_dict()

    return checker()


class TestConstruction:
    def test_from_sql_parses_target(self):
        request = RecommendationRequest.from_sql(
            "SELECT * FROM sales WHERE product = 'Laserwave' LIMIT 10", k=3
        )
        assert request.target.table == "sales"
        assert request.target.limit == 10
        assert request.k == 3
        assert request.reference == Reference.table()

    def test_bad_sql_is_api_and_syntax_error(self):
        with pytest.raises(ApiError) as excinfo:
            RecommendationRequest.from_sql("SELEKT nope")
        assert excinfo.value.code == "sql_syntax"
        assert isinstance(excinfo.value, SqlSyntaxError)

    def test_aggregate_sql_is_unsupported(self):
        with expect_api_error("unsupported_sql", "target"):
            RecommendationRequest.from_sql(
                "SELECT store, sum(amount) FROM sales GROUP BY store"
            )

    def test_invalid_k(self):
        with expect_api_error("invalid_value", "k"):
            RecommendationRequest.from_sql("SELECT * FROM sales", k=0)

    def test_unknown_metric(self):
        with expect_api_error("invalid_value", "metric"):
            RecommendationRequest.from_sql("SELECT * FROM sales", metric="nope")

    def test_unknown_option(self):
        with expect_api_error("unknown_field", "options.bogus"):
            RecommendationRequest.from_sql(
                "SELECT * FROM sales", options={"bogus": 1}
            )

    def test_unknown_strategy(self):
        with expect_api_error("invalid_value", "strategy"):
            RecommendationRequest.from_sql(
                "SELECT * FROM sales", strategy="psychic"
            )

    def test_complement_requires_predicate(self):
        with expect_api_error("invalid_value", "reference"):
            RecommendationRequest.from_sql(
                "SELECT * FROM sales", reference="complement"
            )

    def test_query_reference_must_share_table(self):
        with expect_api_error("invalid_value", "reference.query"):
            RecommendationRequest.from_sql(
                "SELECT * FROM sales",
                reference="SELECT * FROM other_table",
            )

    @pytest.mark.parametrize(
        "options, field",
        [
            ({"n_phases": 0}, "options.n_phases"),
            ({"n_phases": "10"}, "options.n_phases"),
            ({"delta": 0}, "options.delta"),
            ({"delta": 1.5}, "options.delta"),
            ({"min_phases_before_pruning": -1}, "options.min_phases_before_pruning"),
            ({"epsilon_scale": -0.1}, "options.epsilon_scale"),
        ],
    )
    def test_incremental_options_validated_at_construction(self, options, field):
        """Bad phase knobs fail as structured 400s, not mid-pipeline
        crashes (delta=0 → ZeroDivisionError) or silent empty-state
        scoring (n_phases=0)."""
        with expect_api_error("invalid_value", field):
            RecommendationRequest.from_sql("SELECT * FROM sales", options=options)

    def test_option_value_validated_at_resolve(self):
        request = RecommendationRequest.from_sql(
            "SELECT * FROM sales", options={"sample_fraction": 7.0}
        )
        with expect_api_error("invalid_value", "options"):
            request.resolve()

    def test_incremental_needs_bounded_metric(self):
        request = RecommendationRequest.from_sql(
            "SELECT * FROM sales", metric="euclidean", strategy="incremental"
        )
        with expect_api_error("invalid_value", "metric"):
            request.resolve()


class TestWireCodec:
    def round_trip(self, request):
        payload = json.loads(json.dumps(request.to_dict()))
        decoded = RecommendationRequest.from_dict(payload)
        assert decoded == request
        return payload

    def test_minimal_round_trip(self):
        payload = self.round_trip(
            RecommendationRequest(target=RowSelectQuery("sales"))
        )
        assert payload["schema_version"] == SCHEMA_VERSION

    def test_full_round_trip(self):
        request = RecommendationRequest(
            target=RowSelectQuery(
                "sales",
                (col("product") == "Laserwave") & (col("amount") > 10),
                limit=5,
            ),
            reference=Reference.query(
                RowSelectQuery("sales", col("month").between(1, 6))
            ),
            k=7,
            metric="emd",
            dimensions=("store", "month"),
            measures=("amount",),
            strategy="incremental",
            options={"n_phases": 4, "sample_fraction": 0.5},
            backend="main",
        )
        self.round_trip(request)

    def test_date_literals_round_trip(self):
        request = RecommendationRequest(
            target=RowSelectQuery(
                "sales", col("day") == datetime.date(2024, 3, 1)
            )
        )
        payload = self.round_trip(request)
        assert payload["target"]["predicate"]["value"] == {"$date": "2024-03-01"}

    def test_not_in_between_round_trip(self):
        predicate = ~col("store").isin(["a", "b"]) | col("amount").between(0, 5)
        self.round_trip(
            RecommendationRequest(target=RowSelectQuery("sales", predicate))
        )

    def test_unknown_field_rejected_with_path(self):
        with expect_api_error("unknown_field", "frobnicate"):
            RecommendationRequest.from_dict(
                {"target": {"table": "t"}, "frobnicate": 1}
            )

    def test_bad_predicate_node_has_dotted_path(self):
        with expect_api_error("invalid_value", "target.predicate.operands[1].op"):
            RecommendationRequest.from_dict(
                {
                    "target": {
                        "table": "t",
                        "predicate": {
                            "op": "and",
                            "operands": [
                                {"op": "=", "column": "a", "value": 1},
                                {"op": "???", "column": "b", "value": 2},
                            ],
                        },
                    }
                }
            )

    @pytest.mark.parametrize(
        "node, field",
        [
            ({"op": "=", "column": "product"}, "target.predicate.value"),
            ({"op": "between", "column": "amount"}, "target.predicate.low"),
            (
                {"op": "between", "column": "amount", "low": 1},
                "target.predicate.high",
            ),
        ],
    )
    def test_missing_literal_operand_is_missing_field(self, node, field):
        """An absent 'value'/'low'/'high' is a typo, not a NULL literal —
        decoding it as NULL would silently select zero rows."""
        with expect_api_error("missing_field", field):
            RecommendationRequest.from_dict(
                {"target": {"table": "t", "predicate": node}}
            )

    def test_explicit_null_literal_still_accepted(self):
        decoded = RecommendationRequest.from_dict(
            {
                "target": {
                    "table": "t",
                    "predicate": {"op": "=", "column": "x", "value": None},
                }
            }
        )
        assert decoded.target.predicate.literal.value is None

    def test_wrong_schema_version(self):
        with expect_api_error("schema_version", "schema_version"):
            RecommendationRequest.from_dict(
                {"schema_version": 99, "target": {"table": "t"}}
            )

    def test_schema_version_1_still_accepted(self):
        decoded = RecommendationRequest.from_dict(
            {"schema_version": 1, "target": {"table": "t"}}
        )
        assert decoded.target.table == "t"

    def test_missing_target(self):
        with expect_api_error("missing_field", "target"):
            RecommendationRequest.from_dict({"k": 3})

    def test_sql_string_target_accepted(self):
        decoded = RecommendationRequest.from_dict(
            {"target": "SELECT * FROM sales WHERE amount > 3"}
        )
        assert decoded.target.table == "sales"

    def test_expression_wire_helpers_round_trip(self):
        predicate = (col("a") == 1) & ~(col("b").isin([2, 3]))
        wire = json.loads(json.dumps(expression_to_wire(predicate)))
        assert expression_from_wire(wire, "predicate") == predicate


class TestReferenceResolution:
    def test_table_resolves_to_shared_constant(self):
        target = RowSelectQuery("sales", col("x") == 1)
        assert Reference.table().resolve(target) is TABLE_REFERENCE

    def test_query_without_predicate_normalizes_to_table(self):
        target = RowSelectQuery("sales", col("x") == 1)
        reference = Reference.query(RowSelectQuery("sales"))
        assert reference.resolve(target) is TABLE_REFERENCE

    def test_complement_negates_target_predicate(self):
        target = RowSelectQuery("sales", col("x") == 1)
        resolved = Reference.complement().resolve(target)
        assert resolved.kind == "complement"
        assert resolved.flag_combinable and not resolved.merge_partitions

    def test_query_reference_not_flag_combinable(self):
        target = RowSelectQuery("sales", col("x") == 1)
        resolved = Reference.query(
            RowSelectQuery("sales", col("x") == 2)
        ).resolve(target)
        assert resolved.kind == "query"
        assert not resolved.flag_combinable

    def test_reference_shorthand_strings(self):
        assert Reference.from_dict("table") == Reference.table()
        assert Reference.from_dict("complement") == Reference.complement()
        parsed = Reference.from_dict("SELECT * FROM t WHERE a = 1")
        assert parsed.kind == "query" and parsed.against.table == "t"
