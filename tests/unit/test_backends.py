"""Unit tests: SQL generation and both DBMS backends."""

from datetime import date

import numpy as np
import pytest

from repro.backends.sqlgen import (
    quote_identifier,
    render_aggregate,
    render_aggregate_query,
    render_expression,
    render_literal,
    render_row_select,
)
from repro.db.aggregates import Aggregate
from repro.db.expressions import TruePredicate, col
from repro.db.query import AggregateQuery, FlagColumn, GroupingSetsQuery, RowSelectQuery
from repro.db.table import Table
from repro.util.errors import BackendError, QueryError


class TestSqlGen:
    def test_quote_identifier(self):
        assert quote_identifier("plain") == '"plain"'
        assert quote_identifier('we"ird') == '"we""ird"'

    def test_literals(self):
        assert render_literal(42) == "42"
        assert render_literal(1.5) == "1.5"
        assert render_literal("o'brien") == "'o''brien'"
        assert render_literal(True) == "1"
        assert render_literal(None) == "NULL"
        assert render_literal(date(2024, 3, 1)) == "'2024-03-01'"
        assert render_literal(np.int64(7)) == "7"

    def test_nan_literal_rejected(self):
        with pytest.raises(QueryError):
            render_literal(float("nan"))

    def test_expression_rendering(self):
        predicate = (col("a") == "x") & ((col("b") > 5) | ~(col("c") != 1))
        sql = render_expression(predicate)
        assert sql == '("a" = \'x\' AND ("b" > 5 OR NOT ("c" <> 1)))'

    def test_in_and_between(self):
        assert render_expression(col("k").isin(["a", "b"])) == "\"k\" IN ('a', 'b')"
        assert render_expression(col("v").between(1, 2)) == '"v" BETWEEN 1 AND 2'
        assert render_expression(col("k").isin([])) == "1=0"
        assert render_expression(TruePredicate()) == "1=1"

    def test_aggregates(self):
        assert render_aggregate(Aggregate("sum", "x")) == 'SUM("x") AS "sum(x)"'
        assert render_aggregate(Aggregate("count")) == 'COUNT(*) AS "count(*)"'
        assert render_aggregate(Aggregate("countv", "x")) == 'COUNT("x") AS "countv(x)"'
        assert 'SUM("x" * "x")' in render_aggregate(Aggregate("sumsq", "x"))
        assert "AVG" in render_aggregate(Aggregate("var", "x"))
        assert "sqrt" in render_aggregate(Aggregate("std", "x"))
        assert render_aggregate(Aggregate("var", "x"), native_var_std=True).startswith(
            "VAR_POP"
        )

    def test_full_query(self):
        query = AggregateQuery(
            "sales",
            ("store",),
            (Aggregate("sum", "amount"),),
            col("product") == "Laserwave",
        )
        sql = render_aggregate_query(query)
        assert sql == (
            'SELECT "store", SUM("amount") AS "sum(amount)" FROM "sales" '
            "WHERE \"product\" = 'Laserwave' GROUP BY 1 ORDER BY 1"
        )

    def test_flag_query_renders_case(self):
        flag = FlagColumn("f", col("p") == 1)
        sql = render_aggregate_query(
            AggregateQuery("t", (flag, "a"), (Aggregate("count"),))
        )
        assert 'CASE WHEN "p" = 1 THEN 1 ELSE 0 END AS "f"' in sql
        # Ordinal GROUP BY means the CASE appears only in the SELECT list.
        assert sql.count("CASE WHEN") == 1
        assert "GROUP BY 1, 2 ORDER BY 1, 2" in sql

    def test_row_select(self):
        sql = render_row_select(RowSelectQuery("t", col("x") > 2))
        assert sql == 'SELECT * FROM "t" WHERE "x" > 2'


class TestMemoryBackend:
    def test_capabilities(self, memory_backend):
        assert memory_backend.capabilities.grouping_sets

    def test_schema_and_row_count(self, memory_backend):
        assert memory_backend.row_count("sales") == 12
        assert "store" in memory_backend.schema("sales")

    def test_unknown_table_raises(self, memory_backend):
        with pytest.raises(Exception):
            memory_backend.execute(RowSelectQuery("missing"))

    def test_create_sample_registers_table(self, memory_backend):
        name = memory_backend.create_sample("sales", "sales_s", 0.99, seed=1)
        assert memory_backend.has_table(name)

    def test_fetch_table_caps_rows(self, memory_backend):
        assert memory_backend.fetch_table("sales", max_rows=3).num_rows == 3

    def test_counter_reset(self, memory_backend):
        memory_backend.execute(RowSelectQuery("sales"))
        assert memory_backend.queries_executed > 0
        memory_backend.reset_counters()
        assert memory_backend.queries_executed == 0


class TestSqliteBackend:
    def test_roundtrip_aggregate_query(self, sqlite_backend, memory_backend):
        query = AggregateQuery(
            "sales",
            ("store",),
            (Aggregate("sum", "amount"), Aggregate("avg", "profit")),
            col("product") == "Laserwave",
        )
        lite = sqlite_backend.execute(query)
        memory = memory_backend.execute(query)
        # Compare numerically column by column.
        for column in ("sum(amount)", "avg(profit)"):
            np.testing.assert_allclose(
                np.asarray(lite.column(column), dtype=float),
                np.asarray(memory.column(column), dtype=float),
            )
        assert list(lite.column("store")) == list(memory.column("store"))

    def test_row_select(self, sqlite_backend):
        result = sqlite_backend.execute(
            RowSelectQuery("sales", col("amount") > 100)
        )
        assert result.num_rows == 3

    def test_var_std_emulation(self, sqlite_backend, memory_backend):
        query = AggregateQuery(
            "sales", ("product",), (Aggregate("var", "amount"), Aggregate("std", "amount"))
        )
        lite = sqlite_backend.execute(query)
        memory = memory_backend.execute(query)
        for column in ("var(amount)", "std(amount)"):
            np.testing.assert_allclose(
                np.asarray(lite.column(column), dtype=float),
                np.asarray(memory.column(column), dtype=float),
                rtol=1e-9,
            )

    def test_grouping_sets_fallback(self, sqlite_backend):
        before = sqlite_backend.queries_executed
        results = sqlite_backend.execute_grouping_sets(
            GroupingSetsQuery(
                "sales", (("store",), ("product",)), (Aggregate("count"),)
            )
        )
        assert len(results) == 2
        assert sqlite_backend.queries_executed - before == 2  # one per set

    def test_deterministic_sampling(self, sqlite_backend):
        sqlite_backend.create_sample("sales", "s1", 0.5, seed=9)
        sqlite_backend.create_sample("sales", "s2", 0.5, seed=9)
        rows1 = sqlite_backend.fetch_table("s1").to_rows()
        rows2 = sqlite_backend.fetch_table("s2").to_rows()
        assert rows1 == rows2

    def test_invalid_sample_fraction(self, sqlite_backend):
        with pytest.raises(BackendError):
            sqlite_backend.create_sample("sales", "s", 0.0)

    def test_nan_roundtrips_as_null(self, nan_table):
        from repro.backends.sqlite import SqliteBackend

        backend = SqliteBackend()
        try:
            backend.register_table(nan_table)
            fetched = backend.fetch_table("readings")
            values = np.asarray(fetched.column("value"), dtype=float)
            assert np.isnan(values).sum() == 2
        finally:
            backend.close()

    def test_dates_roundtrip(self):
        from repro.backends.sqlite import SqliteBackend

        table = Table.from_columns(
            "d", {"day": [date(2024, 1, 2), date(2024, 3, 4)], "v": [1.0, 2.0]}
        )
        backend = SqliteBackend()
        try:
            backend.register_table(table)
            fetched = backend.fetch_table("d")
            assert fetched.column("day").dtype.kind == "M"
            result = backend.execute(
                RowSelectQuery("d", col("day") >= date(2024, 2, 1))
            )
            assert result.num_rows == 1
        finally:
            backend.close()

    def test_drop_table(self, sqlite_backend):
        sqlite_backend.create_sample("sales", "tmp", 0.5)
        sqlite_backend.drop_table("tmp")
        assert not sqlite_backend.has_table("tmp")

    def test_double_register_rejected(self, sqlite_backend, sales_table):
        with pytest.raises(BackendError):
            sqlite_backend.register_table(sales_table)
        sqlite_backend.register_table(sales_table, replace=True)


class TestRowSelectLimitSql:
    def test_limit_rendered(self):
        sql = render_row_select(RowSelectQuery("t", col("x") > 2, limit=7))
        assert sql.endswith("LIMIT 7")

    def test_sqlite_applies_limit(self, sqlite_backend):
        result = sqlite_backend.execute(RowSelectQuery("sales", limit=4))
        assert result.num_rows == 4
