"""Unit tests: the cost-model calibration store (EWMA feedback loop)."""

import json
import threading

import pytest

from repro.metadata.calibration import (
    CALIBRATION_SUFFIX,
    CalibrationStore,
    CostCoefficients,
    DEFAULT_COEFFICIENTS,
    MAX_STEP_RATIO,
    SEEDED_COEFFICIENTS,
    calibration_sidecar_path,
)
from repro.optimizer.cost import CostModel, PlanCost


class TestCoefficients:
    def test_predict_is_linear_in_work_units(self):
        coeffs = CostCoefficients(1.0, 10.0, 100.0, 1000.0)
        cost = PlanCost(
            n_queries=2, n_scans=3, rows_scanned=5, result_groups=7, n_statements=11
        )
        assert coeffs.predict_seconds(cost) == 5 * 1.0 + 7 * 10.0 + 2 * 100.0 + 11 * 1000.0

    def test_scaled_multiplies_every_coefficient(self):
        doubled = DEFAULT_COEFFICIENTS.scaled(2.0)
        assert doubled.row_scan_seconds == 2 * DEFAULT_COEFFICIENTS.row_scan_seconds
        assert doubled.statement_seconds == 2 * DEFAULT_COEFFICIENTS.statement_seconds

    def test_every_backend_has_seeds(self):
        assert set(SEEDED_COEFFICIENTS) >= {"memory", "sqlite", "duckdb"}


class TestObserve:
    def test_unseen_backend_returns_seed_unchanged(self):
        store = CalibrationStore()
        assert store.coefficients_for("sqlite") == SEEDED_COEFFICIENTS["sqlite"]
        assert store.scale_for("sqlite") == 1.0

    def test_observation_moves_scale_toward_observed(self):
        store = CalibrationStore()
        store.observe("sqlite", predicted_seconds=0.1, observed_seconds=0.4)
        assert 1.0 < store.scale_for("sqlite") < 4.0

    def test_convergence_second_prediction_error_is_smaller(self):
        """The acceptance criterion: after observing a run, the next
        prediction of the *same* workload is strictly closer."""
        store = CalibrationStore()
        cost = PlanCost(
            n_queries=4, n_scans=4, rows_scanned=100_000, result_groups=400,
            n_statements=4,
        )
        observed = 0.5  # machine is much slower than the seed thinks
        first = CostModel.for_backend("sqlite", store).predict_seconds(cost)
        store.observe("sqlite", first, observed)
        second = CostModel.for_backend("sqlite", store).predict_seconds(cost)
        store.observe("sqlite", second, observed)
        errors = [
            abs(predicted - observed) / observed for predicted in (first, second)
        ]
        assert errors[1] < errors[0]
        snap = store.snapshot()["sqlite"]
        assert snap["observations"] == 2
        assert snap["last_relative_error"] == pytest.approx(errors[1])

    def test_step_ratio_is_clamped(self):
        store = CalibrationStore(alpha=1.0)
        store.observe("memory", predicted_seconds=1e-9, observed_seconds=10.0)
        assert store.scale_for("memory") <= MAX_STEP_RATIO

    def test_degenerate_observations_are_ignored(self):
        store = CalibrationStore()
        store.observe("memory", predicted_seconds=0.0, observed_seconds=1.0)
        store.observe("memory", predicted_seconds=1.0, observed_seconds=-1.0)
        assert store.observations_for("memory") == 0

    def test_observe_is_thread_safe(self):
        store = CalibrationStore()

        def hammer():
            for _ in range(200):
                store.observe("sqlite", 0.1, 0.2)
                store.coefficients_for("sqlite")

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.observations_for("sqlite") == 8 * 200
        assert store.scale_for("sqlite") > 0


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / f"db{CALIBRATION_SUFFIX}")
        store = CalibrationStore(path=path)
        store.observe("sqlite", 0.1, 0.4, plan_kind="grouping_sets")
        scale = store.scale_for("sqlite")

        reloaded = CalibrationStore(path=path)
        assert reloaded.scale_for("sqlite") == pytest.approx(scale)
        assert reloaded.observations_for("sqlite") == 1
        assert reloaded.snapshot()["sqlite"]["last_plan_kind"] == "grouping_sets"
        # The file is plain JSON (operators can read/delete it).
        json.loads((tmp_path / f"db{CALIBRATION_SUFFIX}").read_text())

    def test_corrupt_file_is_ignored(self, tmp_path):
        path = tmp_path / f"db{CALIBRATION_SUFFIX}"
        path.write_text("{not json")
        store = CalibrationStore(path=str(path))
        assert store.scale_for("sqlite") == 1.0

    def test_sidecar_path_only_for_real_files(self, tmp_path):
        assert calibration_sidecar_path(None) is None
        assert calibration_sidecar_path(":memory:") is None
        db = str(tmp_path / "views.db")
        assert calibration_sidecar_path(db) == db + CALIBRATION_SUFFIX
