"""Planner/engine path selection is driven by BackendCapabilities alone.

The contract behind the conformance kit: flipping a *declared* capability
on a backend instance flips the execution plan — no ``isinstance`` on the
backend class is consulted anywhere in the planner or engine. Each test
monkeypatches ``backend.capabilities`` and asserts the plan (and only the
plan) changes while the class identity stays what it was.
"""

import dataclasses

import pytest

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.core.space import enumerate_views
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.optimizer.plan import (
    GroupByCombining,
    MultiDimStep,
    Planner,
    PlannerConfig,
    RollupStep,
)


def flip(backend, monkeypatch, **changes):
    monkeypatch.setattr(
        backend, "capabilities", dataclasses.replace(backend.capabilities, **changes)
    )


def plan_for(backend, sales_table):
    views = enumerate_views(sales_table.schema, functions=("sum", "avg"))
    planner = Planner(PlannerConfig(groupby_combining=GroupByCombining.AUTO))
    return planner.plan(
        views,
        "sales",
        col("product") == "Laserwave",
        {"store": 4, "product": 2, "month": 4},
        backend.capabilities,
    )


def step_types(plan):
    return {type(step) for step in plan.steps}


class TestPlannerFollowsDeclaredCapabilities:
    def test_memory_defaults_to_shared_scan(self, memory_backend, sales_table):
        assert MultiDimStep in step_types(plan_for(memory_backend, sales_table))

    def test_sqlite_defaults_to_rollup_fallback(self, sqlite_backend, sales_table):
        steps = step_types(plan_for(sqlite_backend, sales_table))
        assert MultiDimStep not in steps
        assert RollupStep in steps

    def test_flipping_capability_flips_the_plan_not_the_class(
        self, memory_backend, sqlite_backend, sales_table, monkeypatch
    ):
        # sqlite instance declared grouping-sets-capable: now plans the
        # shared scan, while remaining a plain SqliteBackend.
        flip(sqlite_backend, monkeypatch, grouping_sets=True)
        steps = step_types(plan_for(sqlite_backend, sales_table))
        assert MultiDimStep in steps
        assert type(sqlite_backend) is SqliteBackend

        # memory instance stripped of the capability: falls back to rollup.
        flip(memory_backend, monkeypatch, grouping_sets=False)
        steps = step_types(plan_for(memory_backend, sales_table))
        assert MultiDimStep not in steps
        assert RollupStep in steps
        assert type(memory_backend) is MemoryBackend

    def test_plan_query_counts_shrink_with_shared_scan(
        self, sqlite_backend, sales_table, monkeypatch
    ):
        before = plan_for(sqlite_backend, sales_table).total_queries()
        flip(sqlite_backend, monkeypatch, grouping_sets=True)
        after = plan_for(sqlite_backend, sales_table).total_queries()
        assert after <= before


class TestEngineFollowsDeclaredCapabilities:
    QUERY = RowSelectQuery("sales", col("product") == "Laserwave")

    def config(self):
        return SeeDBConfig(
            aggregate_functions=("sum", "avg"),
            groupby_combining=GroupByCombining.AUTO,
            prune_low_variance=False,
            prune_cardinality=False,
            prune_correlated=False,
        )

    def test_sqlite_grouping_sets_declaration_reroutes_execution(
        self, sqlite_backend, monkeypatch
    ):
        """Declaring the capability makes the engine issue GroupingSetsQuery
        objects; sqlite's UNION ALL emulation executes them, results are
        unchanged — path selection is declaration-driven end to end."""
        seedb = SeeDB(sqlite_backend, self.config())
        baseline = seedb.recommend(self.QUERY, k=3)
        assert "grouping_sets" not in baseline.plan_description

        flip(sqlite_backend, monkeypatch, grouping_sets=True)
        rerouted = seedb.recommend(self.QUERY, k=3)
        assert "grouping_sets" in rerouted.plan_description
        assert [v.spec.label for v in rerouted.recommendations] == [
            v.spec.label for v in baseline.recommendations
        ]
        seedb.close()

    def test_serial_threading_model_disables_parallel_execution(
        self, memory_backend, monkeypatch
    ):
        """A ``serial`` declaration makes the engine ignore n_workers."""
        from repro.engine.engine import ExecutionEngine

        engine = ExecutionEngine(memory_backend)
        try:
            assert engine.executor_for(4) is not None
            flip(memory_backend, monkeypatch, threading_model="serial")
            assert engine.executor_for(4) is None
            flip(memory_backend, monkeypatch, parallel_queries=False)
            assert engine.executor_for(4) is None
        finally:
            engine.close()

    def test_native_sampling_declaration_reroutes_sampling(
        self, sqlite_backend, monkeypatch
    ):
        calls = []
        original = sqlite_backend.create_sample_clientside

        def tracing(*args, **kwargs):
            calls.append(args)
            return original(*args, **kwargs)

        monkeypatch.setattr(sqlite_backend, "create_sample_clientside", tracing)
        config = dataclasses.replace(
            self.config(), sample_fraction=0.9, min_rows_for_sampling=0
        )

        seedb = SeeDB(sqlite_backend, config)
        seedb.recommend(self.QUERY, k=3)
        assert not calls  # native declaration -> in-DBMS sampling

        flip(sqlite_backend, monkeypatch, native_sampling=False)
        # A fresh facade: the engine cache still holds the native sample
        # under the same (fraction, seed) key, so force a new one.
        config = dataclasses.replace(config, sample_seed=123)
        other = SeeDB(sqlite_backend, config)
        other.recommend(self.QUERY, k=3)
        assert calls  # declaration flipped -> client-side fallback
        other.close()
        seedb.close()
