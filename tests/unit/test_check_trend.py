"""Unit tests for the perf-smoke bench-trend gate."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "check_trend",
    Path(__file__).resolve().parents[2] / "benchmarks" / "check_trend.py",
)
check_trend = importlib.util.module_from_spec(_SPEC)
# Registered before exec: the module's dataclasses resolve their string
# annotations through sys.modules[cls.__module__].
sys.modules["check_trend"] = check_trend
_SPEC.loader.exec_module(check_trend)


def bench_payload(rows, query_counts=None):
    return {"rows": rows, "query_counts": query_counts or {}}


def write_bench(directory: Path, name: str, payload: dict) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))


class TestHeadlineSelection:
    def test_prefers_ratio_columns(self):
        payload = bench_payload(
            [{"speedup_x": 4.0, "queries_executed": 10},
             {"speedup_x": None, "queries_executed": 12}],
            {"queries_executed": [10, 12]},
        )
        headline = check_trend.headline_of(payload)
        assert headline.metric == "speedup_x"
        assert headline.value == 4.0
        assert headline.direction == "higher"

    def test_falls_back_to_query_counts(self):
        payload = bench_payload(
            [{"latency_s": 1.0, "queries_executed": 10}],
            {"queries_executed": [10, 12]},
        )
        headline = check_trend.headline_of(payload)
        assert headline.metric == "queries_executed"
        assert headline.value == 22
        assert headline.direction == "lower"

    def test_timings_only_yields_none(self):
        payload = bench_payload([{"latency_s": 1.0}])
        assert check_trend.headline_of(payload) is None

    def test_non_finite_values_ignored(self):
        payload = bench_payload([{"speedup_x": float("nan")}, {"speedup_x": 3.0}])
        assert check_trend.headline_of(payload).value == 3.0


class TestCompare:
    def run(self, baseline_value, fresh_value, tolerance=0.30, direction_col="speedup_x"):
        baselines = {"b": bench_payload([{direction_col: baseline_value}])}
        fresh = {"b": bench_payload([{direction_col: fresh_value}])}
        (row,) = check_trend.compare(baselines, fresh, tolerance)
        return row

    def test_within_tolerance_is_ok(self):
        assert self.run(4.0, 3.1).status == "ok"

    def test_beyond_tolerance_is_regression(self):
        row = self.run(4.0, 2.0)  # 2.0 also underruns the 3.0 portable floor
        assert row.status == "regression"
        assert row.change == pytest.approx(-0.5)

    def test_improvement_is_ok(self):
        assert self.run(4.0, 8.0).status == "ok"

    def test_shortfall_above_portable_floor_does_not_gate(self):
        """A fast dev box committed speedup_x=19.6; a slower runner at 4.0
        trails it by 80% but clears the benchmark's own 3.0 bar."""
        row = self.run(19.6, 4.0)
        assert row.status == "above-floor"

    def test_floorless_ratio_metric_gates_strictly(self):
        row = self.run(1.0, 0.5, direction_col="topk_precision")
        assert row.status == "regression"

    def test_lower_is_better_for_query_counts(self):
        baselines = {
            "b": bench_payload([{}], {"queries": [100]}),
        }
        worse = {"b": bench_payload([{}], {"queries": [140]})}
        (row,) = check_trend.compare(baselines, worse, 0.30)
        assert row.status == "regression"
        better = {"b": bench_payload([{}], {"queries": [80]})}
        (row,) = check_trend.compare(baselines, better, 0.30)
        assert row.status == "ok"

    def test_new_benchmark_never_gates(self):
        rows = check_trend.compare(
            {}, {"b": bench_payload([{"speedup_x": 2.0}])}, 0.3
        )
        assert rows[0].status == "new"

    def test_missing_benchmark_reported(self):
        rows = check_trend.compare(
            {"b": bench_payload([{"speedup_x": 2.0}])}, {}, 0.3
        )
        assert rows[0].status == "missing"

    def test_metric_shape_change_treated_as_new(self):
        baselines = {"b": bench_payload([{"speedup_x": 2.0}])}
        fresh = {"b": bench_payload([{}], {"queries": [10]})}
        (row,) = check_trend.compare(baselines, fresh, 0.3)
        assert row.status == "new"

    def test_timings_only_is_informational(self):
        baselines = {"b": bench_payload([{"latency_s": 1.0}])}
        fresh = {"b": bench_payload([{"latency_s": 99.0}])}
        (row,) = check_trend.compare(baselines, fresh, 0.3)
        assert row.status == "info"


class TestMainEntry:
    def test_exit_codes_and_summary(self, tmp_path, monkeypatch):
        baseline_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        write_bench(baseline_dir, "scoring", bench_payload([{"speedup_x": 4.0}]))
        write_bench(fresh_dir, "scoring", bench_payload([{"speedup_x": 3.9}]))
        summary = tmp_path / "summary.md"
        monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))

        code = check_trend.main(
            ["--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir)]
        )
        assert code == 0
        assert "scoring" in summary.read_text()

        write_bench(fresh_dir, "scoring", bench_payload([{"speedup_x": 1.0}]))
        code = check_trend.main(
            ["--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir)]
        )
        assert code == 1

    def test_custom_tolerance(self, tmp_path, monkeypatch):
        # topk_precision has no portable floor, so tolerance alone decides.
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        baseline_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        write_bench(baseline_dir, "b", bench_payload([{"topk_precision": 1.0}]))
        write_bench(fresh_dir, "b", bench_payload([{"topk_precision": 0.6}]))
        args = ["--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir)]
        assert check_trend.main(args + ["--tolerance", "0.5"]) == 0
        assert check_trend.main(args + ["--tolerance", "0.3"]) == 1

    def test_unreadable_file_warns_not_crashes(self, tmp_path, capsys):
        directory = tmp_path / "results"
        directory.mkdir()
        (directory / "BENCH_bad.json").write_text("{not json")
        assert check_trend.load_bench_files(directory) == {}

    def test_empty_fresh_dir_fails_closed(self, tmp_path, monkeypatch):
        """A typo'd --fresh-dir must not pass green having compared nothing."""
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        baseline_dir = tmp_path / "base"
        write_bench(baseline_dir, "scoring", bench_payload([{"speedup_x": 4.0}]))
        code = check_trend.main(
            ["--baseline-dir", str(baseline_dir),
             "--fresh-dir", str(tmp_path / "nonexistent")]
        )
        assert code == 1

    def test_baseline_missing_from_fresh_run_fails(self, tmp_path, monkeypatch):
        """A benchmark that stops emitting its BENCH file stays gated."""
        monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
        baseline_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        write_bench(baseline_dir, "scoring", bench_payload([{"speedup_x": 4.0}]))
        write_bench(baseline_dir, "serving", bench_payload([{"speedup_x": 2.0}]))
        write_bench(fresh_dir, "scoring", bench_payload([{"speedup_x": 4.0}]))
        code = check_trend.main(
            ["--baseline-dir", str(baseline_dir), "--fresh-dir", str(fresh_dir)]
        )
        assert code == 1
