"""Unit tests: view specs, space enumeration, processing, top-k, config."""

import numpy as np
import pytest

from repro.core.config import BASIC_FRAMEWORK, SeeDBConfig
from repro.core.space import enumerate_views, view_space_size
from repro.core.topk import top_k_views
from repro.core.view_processor import ViewProcessor
from repro.db.types import AttributeRole
from repro.metrics.normalize import NormalizationPolicy
from repro.metrics.registry import get_metric
from repro.model.view import RawViewData, ScoredView, ViewSpec
from repro.optimizer.plan import GroupByCombining
from repro.util.errors import ConfigError, QueryError, SchemaError


class TestViewSpec:
    def test_label(self):
        assert ViewSpec("store", "amount", "sum").label == "sum(amount) by store"
        assert ViewSpec("store", None, "count").label == "count(*) by store"

    def test_only_count_may_omit_measure(self):
        with pytest.raises(QueryError):
            ViewSpec("store", None, "sum")

    def test_queries(self):
        from repro.db.expressions import col

        spec = ViewSpec("store", "amount", "sum")
        target = spec.target_query("sales", col("p") == 1)
        comparison = spec.comparison_query("sales")
        assert target.predicate is not None
        assert comparison.predicate is None
        assert target.group_by == ("store",)

    def test_validate_against_schema(self, sales_table):
        ViewSpec("store", "amount", "sum").validate_against(sales_table.schema)
        with pytest.raises(SchemaError):
            ViewSpec("amount", "store", "sum").validate_against(sales_table.schema)

    def test_ordering_deterministic(self):
        views = [ViewSpec("b", "m", "sum"), ViewSpec("a", "m", "sum")]
        assert sorted(views)[0].dimension == "a"


class TestSpaceEnumeration:
    def test_cross_product(self, sales_table):
        views = enumerate_views(sales_table.schema, functions=("sum", "avg"))
        # 3 dims x 2 measures x 2 funcs + 3 count views
        assert len(views) == 15
        assert view_space_size(3, 2, 2, include_count=True) == 15

    def test_no_count_views(self, sales_table):
        views = enumerate_views(
            sales_table.schema, functions=("sum",), include_count=False
        )
        assert len(views) == 6
        assert all(v.func == "sum" for v in views)

    def test_restricted_dimensions(self, sales_table):
        views = enumerate_views(
            sales_table.schema, functions=("sum",), dimensions=["store"],
            include_count=False,
        )
        assert {v.dimension for v in views} == {"store"}

    def test_unknown_restriction_rejected(self, sales_table):
        with pytest.raises(SchemaError):
            enumerate_views(sales_table.schema, dimensions=["nope"])

    def test_empty_function_set_rejected(self, sales_table):
        with pytest.raises(ConfigError):
            enumerate_views(sales_table.schema, functions=(), include_count=False)

    def test_quadratic_growth(self):
        # Fixed total attributes n split evenly: |views| ~ (n/2)^2 * f.
        sizes = [
            view_space_size(n // 2, n // 2, 2, include_count=False)
            for n in (10, 20, 40)
        ]
        assert sizes == [50, 200, 800]  # 4x per doubling = quadratic


class TestViewProcessor:
    def make_raw(self, target, comparison, keys=None):
        spec = ViewSpec("d", "m", "sum")
        keys = keys if keys is not None else [f"g{i}" for i in range(len(target))]
        return RawViewData(
            spec=spec,
            target_keys=keys,
            target_values=np.asarray(target, dtype=float),
            comparison_keys=keys,
            comparison_values=np.asarray(comparison, dtype=float),
        )

    def test_identical_distributions_zero_utility(self):
        processor = ViewProcessor(get_metric("js"))
        scored = processor.score(self.make_raw([1, 2, 3], [2, 4, 6]))
        assert scored.utility == pytest.approx(0.0, abs=1e-9)

    def test_deviating_distribution_positive_utility(self):
        processor = ViewProcessor(get_metric("js"))
        scored = processor.score(self.make_raw([10, 0, 0], [1, 1, 1]))
        assert scored.utility > 0.5

    def test_misaligned_keys_are_unioned(self):
        spec = ViewSpec("d", "m", "sum")
        raw = RawViewData(
            spec=spec,
            target_keys=["a"],
            target_values=np.array([1.0]),
            comparison_keys=["a", "b"],
            comparison_values=np.array([1.0, 1.0]),
        )
        scored = ViewProcessor(get_metric("js")).score(raw)
        assert scored.groups == ["a", "b"]
        assert scored.target_distribution[1] == 0.0

    def test_empty_view_zero_utility(self):
        raw = self.make_raw([], [], keys=[])
        scored = ViewProcessor(get_metric("js")).score(raw)
        assert scored.utility == 0.0 and scored.groups == []

    def test_negative_values_shift_policy(self):
        processor = ViewProcessor(
            get_metric("js"), NormalizationPolicy.SHIFT
        )
        scored = processor.score(self.make_raw([-5, 5], [1, 1]))
        assert np.isfinite(scored.utility)

    def test_max_deviation_group(self):
        processor = ViewProcessor(get_metric("js"))
        scored = processor.score(self.make_raw([10, 0, 0], [0, 10, 0]))
        assert scored.max_deviation_group in ("g0", "g1")

    def test_score_all_mapping_and_iterable(self):
        processor = ViewProcessor(get_metric("js"))
        raw = self.make_raw([1, 2], [1, 2])
        assert len(processor.score_all([raw])) == 1
        assert len(processor.score_all({raw.spec: raw})) == 1


class TestTopK:
    def make_scored(self, label, utility):
        return ScoredView(
            spec=ViewSpec(label, "m", "sum"),
            utility=utility,
            groups=["g"],
            target_distribution=np.array([1.0]),
            comparison_distribution=np.array([1.0]),
        )

    def test_selects_largest(self):
        scored = [self.make_scored(f"d{i}", i / 10) for i in range(10)]
        top = top_k_views(scored, 3)
        assert [v.utility for v in top] == [0.9, 0.8, 0.7]

    def test_ties_break_lexicographically(self):
        scored = [self.make_scored(d, 0.5) for d in ("zebra", "apple", "mango")]
        top = top_k_views(scored, 2)
        assert [v.spec.dimension for v in top] == ["apple", "mango"]

    def test_k_larger_than_pool(self):
        scored = [self.make_scored("a", 0.1)]
        assert len(top_k_views(scored, 10)) == 1

    def test_k_validation(self):
        with pytest.raises(ConfigError):
            top_k_views([], 0)


class TestSeeDBConfig:
    def test_defaults_valid(self):
        config = SeeDBConfig()
        assert config.metric == "js"
        assert config.planner_config().combine_target_comparison

    def test_unknown_metric_fails_fast(self):
        with pytest.raises(Exception):
            SeeDBConfig(metric="nope")

    def test_invalid_values(self):
        with pytest.raises(ConfigError):
            SeeDBConfig(k=0)
        with pytest.raises(ConfigError):
            SeeDBConfig(sample_fraction=1.5)
        with pytest.raises(ConfigError):
            SeeDBConfig(n_workers=0)

    def test_pruning_pipeline_respects_toggles(self):
        config = SeeDBConfig(
            prune_low_variance=False,
            prune_cardinality=False,
            prune_correlated=False,
            prune_rare_access=True,
        )
        rules = [rule.name for rule in config.pruning_pipeline().rules]
        assert rules == ["access_frequency"]

    def test_with_overrides_revalidates(self):
        config = SeeDBConfig()
        with pytest.raises(ConfigError):
            config.with_overrides(k=-1)
        assert config.with_overrides(k=9).k == 9

    def test_basic_framework_preset(self):
        assert not BASIC_FRAMEWORK.combine_target_comparison
        assert BASIC_FRAMEWORK.groupby_combining is GroupByCombining.NONE
        assert not BASIC_FRAMEWORK.pruning_pipeline().rules
