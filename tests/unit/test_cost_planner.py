"""Unit tests: the cost-based planner phase and its feedback loop."""

import pytest

from repro.backends.memory import MemoryBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.optimizer.plan import GroupByCombining


def make_table(n_rows=400, name="orders"):
    return Table.from_columns(
        name,
        {
            "region": [f"r{i % 5}" for i in range(n_rows)],
            "product": [f"p{i % 7}" for i in range(n_rows)],
            "band": [f"b{i % 3}" for i in range(n_rows)],
            "amount": [float(10 + (i * 13) % 97) for i in range(n_rows)],
            "units": [float(1 + (i % 6)) for i in range(n_rows)],
        },
        roles={
            "region": AttributeRole.DIMENSION,
            "product": AttributeRole.DIMENSION,
            "band": AttributeRole.DIMENSION,
            "amount": AttributeRole.MEASURE,
            "units": AttributeRole.MEASURE,
        },
    )


def make_seedb(config, table=None):
    backend = MemoryBackend()
    backend.register_table(table if table is not None else make_table())
    return SeeDB(backend, config)


QUERY = RowSelectQuery("orders", col("band") == "b0")


class TestCostBasedChoice:
    def test_auto_records_all_candidates_and_picks_argmin(self):
        with make_seedb(
            SeeDBConfig(groupby_combining=GroupByCombining.AUTO)
        ) as seedb:
            result = seedb.recommend(QUERY, k=3)
        decision = result.plan_decision
        assert decision is not None
        assert decision["cost_based"] is True
        assert set(decision["candidate_seconds"]) == {
            "grouping_sets", "rollup", "none",
        }
        best = min(decision["candidate_seconds"].items(), key=lambda kv: kv[1])
        assert decision["kind"] == best[0]
        assert decision["predicted_seconds"] == pytest.approx(best[1])
        assert decision["predicted"]["n_queries"] >= 1
        assert decision["coefficients"]["query_seconds"] > 0

    def test_pinned_mode_costs_a_single_candidate(self):
        with make_seedb(
            SeeDBConfig(groupby_combining=GroupByCombining.ROLLUP)
        ) as seedb:
            result = seedb.recommend(QUERY, k=3)
        decision = result.plan_decision
        assert decision["cost_based"] is False
        assert decision["kind"] == "rollup"
        assert set(decision["candidate_seconds"]) == {"rollup"}
        assert "rollup" in result.plan_description

    def test_escape_hatch_reverts_to_static_planner(self):
        """cost_based_planning=False reproduces the static path exactly:
        same plan description, no decision record, no calibration."""
        config = SeeDBConfig(
            groupby_combining=GroupByCombining.AUTO, cost_based_planning=False
        )
        with make_seedb(config) as seedb:
            result = seedb.recommend(QUERY, k=3)
            assert result.plan_decision is None
            assert seedb.engine.cache.calibration.observations_for("memory") == 0

    def test_auto_matches_static_top_k_bit_for_bit(self):
        table = make_table()
        with make_seedb(
            SeeDBConfig(groupby_combining=GroupByCombining.AUTO), table
        ) as cost_based, make_seedb(
            SeeDBConfig(
                groupby_combining=GroupByCombining.AUTO,
                cost_based_planning=False,
            ),
            table,
        ) as static:
            a = cost_based.recommend(QUERY, k=4)
            b = static.recommend(QUERY, k=4)
        assert [(v.spec, v.utility) for v in a.recommendations] == [
            (v.spec, v.utility) for v in b.recommendations
        ]


class TestFeedbackLoop:
    def test_run_observes_into_the_calibration_store(self):
        with make_seedb(SeeDBConfig()) as seedb:
            result = seedb.recommend(QUERY, k=3)
            calibration = seedb.engine.cache.calibration
            assert calibration.observations_for("memory") == 1
            snap = calibration.snapshot()["memory"]
            assert snap["last_plan_kind"] == result.plan_decision["kind"]
            assert snap["last_predicted_seconds"] == pytest.approx(
                result.plan_decision["predicted_seconds"]
            )
            assert result.plan_decision["observed_seconds"] is not None
            # Second run predicts with the updated coefficients.
            seedb.recommend(QUERY, k=3)
            assert calibration.observations_for("memory") == 2

    def test_static_runs_leave_calibration_untouched(self):
        with make_seedb(SeeDBConfig(cost_based_planning=False)) as seedb:
            seedb.recommend(QUERY, k=3)
            assert seedb.engine.cache.calibration.snapshot() == {}


class TestSampledCosting:
    def test_sampled_plan_is_priced_at_the_sampled_rows(self):
        """Satellite fix: the estimator prices ``__seedb_sample`` scans at
        the effective sampled count, so predictions track what executes."""
        table = make_table(n_rows=20_000)
        exact_config = SeeDBConfig()
        sampled_config = SeeDBConfig(sample_fraction=0.1)
        with make_seedb(exact_config, table) as exact, make_seedb(
            sampled_config, table
        ) as sampled:
            full = exact.recommend(QUERY, k=3).plan_decision
            tenth = sampled.recommend(QUERY, k=3).plan_decision
        assert tenth["sample_fraction"] == 0.1
        assert tenth["predicted"]["rows_scanned"] == pytest.approx(
            full["predicted"]["rows_scanned"] * 0.1, rel=0.01
        )
        assert tenth["predicted_seconds"] < full["predicted_seconds"]

    def test_auto_sample_epsilon_picks_a_fraction(self):
        table = make_table(n_rows=20_000)
        config = SeeDBConfig(auto_sample_epsilon=0.05, min_rows_for_sampling=1_000)
        with make_seedb(config, table) as seedb:
            result = seedb.recommend(QUERY, k=3)
        assert result.sample_fraction is not None
        assert 0 < result.sample_fraction < 1
        from repro.optimizer.cost import hoeffding_epsilon

        assert hoeffding_epsilon(int(20_000 * result.sample_fraction)) <= 0.05

    def test_auto_sampling_requires_explicit_epsilon(self):
        table = make_table(n_rows=20_000)
        with make_seedb(
            SeeDBConfig(min_rows_for_sampling=1_000), table
        ) as seedb:
            assert seedb.recommend(QUERY, k=3).sample_fraction is None


class TestParallelismAdvice:
    def test_recommendation_recorded_without_auto_parallelism(self):
        with make_seedb(SeeDBConfig(n_workers=4)) as seedb:
            result = seedb.recommend(QUERY, k=3)
        assert result.plan_decision["recommended_workers"] >= 1

    def test_auto_parallelism_downgrades_trivial_work_to_sequential(self):
        """A 400-row in-memory workload cannot amortize worker dispatch:
        with the opt-in flag the run executes sequentially (no parallel
        report), though the pool itself stays available for later runs."""
        config = SeeDBConfig(n_workers=4, auto_parallelism=True)
        backend = MemoryBackend()
        backend.register_table(make_table())
        with SeeDB(backend, config) as seedb:
            ctx = seedb.run_resolved(
                seedb.as_request(QUERY, k=3).resolve(config)
            )
        assert ctx.plan_decision.recommended_workers == 1
        assert ctx.executor is None
        assert "parallel_report" not in ctx.extras
