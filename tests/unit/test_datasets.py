"""Unit tests: dataset generators and planted ground truth."""

import numpy as np
import pytest

from repro.datasets import (
    SyntheticConfig,
    generate_elections,
    generate_medical,
    generate_store_orders,
    generate_synthetic,
    laserwave_sales_history,
    laserwave_table_1,
    load_dataset,
    scenario_a_comparison,
    scenario_b_comparison,
)
from repro.datasets.laserwave import TABLE_1_ROWS
from repro.datasets.registry import available_datasets
from repro.db.types import AttributeRole
from repro.model.view import ViewSpec
from repro.util.errors import ConfigError


class TestLaserwave:
    def test_table_1_verbatim(self):
        table = laserwave_table_1()
        assert table.to_rows() == list(TABLE_1_ROWS)

    def test_scenarios_have_same_stores(self):
        a = scenario_a_comparison()
        b = scenario_b_comparison()
        assert set(a.column("store")) == set(b.column("store"))

    def test_history_reproduces_table_1_totals(self):
        table = laserwave_sales_history(n_rows=5000, seed=1)
        mask = np.array([p == "Laserwave" for p in table.column("product")])
        laser = table.mask(mask)
        for store, expected in TABLE_1_ROWS:
            store_mask = np.array([s == store for s in laser.column("store")])
            total = laser.column("amount")[store_mask].sum()
            assert total == pytest.approx(expected, abs=0.01)

    def test_history_row_count_and_scenario_validation(self):
        assert laserwave_sales_history(n_rows=1000).num_rows == 1000
        with pytest.raises(ValueError):
            laserwave_sales_history(scenario="c")

    def test_deterministic(self):
        a = laserwave_sales_history(n_rows=500, seed=9)
        b = laserwave_sales_history(n_rows=500, seed=9)
        assert a.to_rows() == b.to_rows()


class TestSynthetic:
    def test_shape_matches_config(self):
        config = SyntheticConfig(
            n_rows=1000, n_dimensions=4, n_measures=3, cardinality=8
        )
        dataset = generate_synthetic(config, seed=5)
        table = dataset.table
        assert table.num_rows == 1000
        assert len(table.schema.dimensions) == 5  # 4 + segment
        assert len(table.schema.measures) == 3

    def test_planted_dimension_deviates(self):
        config = SyntheticConfig(
            n_rows=20_000, n_dimensions=3, planted_dimensions=(0,), cardinality=10
        )
        dataset = generate_synthetic(config, seed=3)
        table = dataset.table
        in_target = dataset.predicate.evaluate(table)
        planted = dataset.planted_dimensions[0]
        values = table.column(planted)

        def top_share(mask):
            uniques, counts = np.unique(values[mask].astype(str), return_counts=True)
            return counts.max() / counts.sum()

        # Target segment concentrates; rest is near-uniform over 10 values.
        assert top_share(in_target) > 0.3
        assert top_share(~in_target) < 0.2

    def test_is_planted(self):
        dataset = generate_synthetic(SyntheticConfig(n_rows=100), seed=0)
        assert dataset.is_planted(ViewSpec("d0", "m0", "sum"))
        assert not dataset.is_planted(ViewSpec("d1", "m0", "sum"))

    def test_distribution_knobs(self):
        for distribution in ("uniform", "zipf", "normal"):
            config = SyntheticConfig(
                n_rows=500, dimension_distribution=distribution
            )
            dataset = generate_synthetic(config, seed=1)
            assert dataset.table.num_rows == 500

    def test_zipf_skews(self):
        uniform = generate_synthetic(
            SyntheticConfig(n_rows=20_000, dimension_distribution="uniform",
                            planted_dimensions=()),
            seed=2,
        )
        zipf = generate_synthetic(
            SyntheticConfig(n_rows=20_000, dimension_distribution="zipf",
                            zipf_exponent=2.0, planted_dimensions=()),
            seed=2,
        )

        def top_share(table):
            values = table.column("d0").astype(str)
            _u, counts = np.unique(values, return_counts=True)
            return counts.max() / counts.sum()

        assert top_share(zipf.table) > 2 * top_share(uniform.table)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SyntheticConfig(n_rows=0)
        with pytest.raises(ConfigError):
            SyntheticConfig(cardinality=1)
        with pytest.raises(ConfigError):
            SyntheticConfig(dimension_distribution="cauchy")
        with pytest.raises(ConfigError):
            SyntheticConfig(planted_dimensions=(99,))
        with pytest.raises(ConfigError):
            SyntheticConfig(target_fraction=1.0)

    def test_deterministic(self):
        a = generate_synthetic(SyntheticConfig(n_rows=200), seed=11)
        b = generate_synthetic(SyntheticConfig(n_rows=200), seed=11)
        assert a.table.to_rows() == b.table.to_rows()


class TestDomainDatasets:
    @pytest.mark.parametrize(
        "generator,expected_dims",
        [
            (generate_store_orders, {"region", "category", "sub_category"}),
            (generate_elections, {"candidate", "party", "contributor_state"}),
            (generate_medical, {"diagnosis", "icu_unit", "admission_type"}),
        ],
    )
    def test_schema_shape(self, generator, expected_dims):
        table = generator(n_rows=500, seed=1)
        dimension_names = {s.name for s in table.schema.dimensions}
        assert expected_dims <= dimension_names
        assert len(table.schema.measures) >= 1
        assert table.num_rows == 500

    def test_store_orders_planted_trend(self):
        table = generate_store_orders(n_rows=8000, seed=2)
        regions = np.asarray([str(r) for r in table.column("region")])
        categories = np.asarray([str(c) for c in table.column("category")])
        west_tech = (
            (categories == "Technology") & (regions == "West")
        ).sum() / (regions == "West").sum()
        south_tech = (
            (categories == "Technology") & (regions == "South")
        ).sum() / (regions == "South").sum()
        assert west_tech > 1.8 * south_tech

    def test_elections_amount_pattern(self):
        table = generate_elections(n_rows=8000, seed=2)
        candidates = np.asarray([str(c) for c in table.column("candidate")])
        amounts = np.asarray(table.column("amount"), dtype=float)
        assert np.median(amounts[candidates == "Stone"]) > 5 * np.median(
            amounts[candidates == "Rivera"]
        )

    def test_medical_mortality_pattern(self):
        table = generate_medical(n_rows=10_000, seed=2)
        admission = np.asarray([str(a) for a in table.column("admission_type")])
        mortality = np.asarray(table.column("mortality"), dtype=float)
        assert mortality[admission == "Emergency"].mean() > mortality[
            admission == "Elective"
        ].mean()

    def test_sub_category_refines_category(self):
        from repro.metadata.stats import cramers_v

        table = generate_store_orders(n_rows=3000, seed=3)
        value = cramers_v(table.column("category"), table.column("sub_category"))
        assert value > 0.9  # planted for correlation pruning


class TestRegistry:
    def test_available(self):
        names = available_datasets()
        assert {"laserwave", "store_orders", "elections", "medical"} <= set(names)

    def test_load_with_kwargs(self):
        table = load_dataset("medical", n_rows=100, seed=0)
        assert table.num_rows == 100

    def test_unknown(self):
        with pytest.raises(ConfigError, match="available"):
            load_dataset("imaginary")
