"""Unit tests: aggregate functions, partial states, and merging."""

import numpy as np
import pytest

from repro.db.aggregates import AGGREGATE_FUNCTIONS, Aggregate
from repro.util.errors import QueryError

CODES = np.array([0, 0, 1, 1, 1, 2])
VALUES = np.array([1.0, 3.0, 2.0, 4.0, 6.0, 5.0])
N_GROUPS = 3


def finalize(func_name, values=VALUES, codes=CODES, n_groups=N_GROUPS):
    function = AGGREGATE_FUNCTIONS[func_name]
    return function.finalize(function.compute_partials(values, codes, n_groups))


class TestBasicValues:
    def test_count_star(self):
        function = AGGREGATE_FUNCTIONS["count"]
        result = function.finalize(function.compute_partials(None, CODES, N_GROUPS))
        assert list(result) == [2, 3, 1]

    def test_sum(self):
        assert list(finalize("sum")) == [4.0, 12.0, 5.0]

    def test_avg(self):
        assert list(finalize("avg")) == [2.0, 4.0, 5.0]

    def test_min_max(self):
        assert list(finalize("min")) == [1.0, 2.0, 5.0]
        assert list(finalize("max")) == [3.0, 6.0, 5.0]

    def test_var(self):
        result = finalize("var")
        assert result[0] == pytest.approx(1.0)  # var of (1,3)
        assert result[2] == pytest.approx(0.0)

    def test_std_is_sqrt_var(self):
        assert finalize("std")[0] == pytest.approx(1.0)

    def test_countv_equals_count_without_nan(self):
        assert list(finalize("countv")) == [2, 3, 1]

    def test_sumsq(self):
        assert list(finalize("sumsq")) == [10.0, 56.0, 25.0]


class TestNaNHandling:
    """NaN behaves like SQL NULL: ignored by value aggregates."""

    NAN_VALUES = np.array([1.0, np.nan, np.nan, 4.0, 6.0, np.nan])

    def test_sum_skips_nan(self):
        assert list(finalize("sum", self.NAN_VALUES)) == [1.0, 10.0, 0.0]

    def test_count_star_includes_nan_rows(self):
        function = AGGREGATE_FUNCTIONS["count"]
        result = function.finalize(function.compute_partials(None, CODES, N_GROUPS))
        assert list(result) == [2, 3, 1]

    def test_countv_skips_nan(self):
        assert list(finalize("countv", self.NAN_VALUES)) == [1, 2, 0]

    def test_avg_of_all_nan_group_is_nan(self):
        result = finalize("avg", self.NAN_VALUES)
        assert result[0] == pytest.approx(1.0)
        assert result[1] == pytest.approx(5.0)
        assert np.isnan(result[2])

    def test_min_of_all_nan_group_is_nan(self):
        result = finalize("min", self.NAN_VALUES)
        assert result[0] == 1.0
        assert np.isnan(result[2])


class TestEmptyGroups:
    """Groups with no rows at all (minlength padding)."""

    def test_sum_empty_group_is_zero(self):
        result = finalize("sum", VALUES, CODES, n_groups=5)
        assert list(result[3:]) == [0.0, 0.0]

    def test_avg_empty_group_is_nan(self):
        result = finalize("avg", VALUES, CODES, n_groups=4)
        assert np.isnan(result[3])

    def test_max_empty_group_is_nan(self):
        result = finalize("max", VALUES, CODES, n_groups=4)
        assert np.isnan(result[3])


class TestMerging:
    """merge_partials(a, b) must equal computing over the union of rows."""

    @pytest.mark.parametrize(
        "func", ["count", "sum", "avg", "min", "max", "var", "std", "countv", "sumsq"]
    )
    def test_merge_equals_union(self, func):
        function = AGGREGATE_FUNCTIONS[func]
        codes_a, values_a = CODES[:3], VALUES[:3]
        codes_b, values_b = CODES[3:], VALUES[3:]
        part_a = function.compute_partials(
            None if func == "count" else values_a, codes_a, N_GROUPS
        )
        part_b = function.compute_partials(
            None if func == "count" else values_b, codes_b, N_GROUPS
        )
        merged = function.finalize(function.merge_partials(part_a, part_b))
        expected = function.finalize(
            function.compute_partials(
                None if func == "count" else VALUES, CODES, N_GROUPS
            )
        )
        np.testing.assert_allclose(merged, expected, equal_nan=True)


class TestAggregateDataclass:
    def test_default_alias(self):
        assert Aggregate("sum", "price").alias == "sum(price)"
        assert Aggregate("count").alias == "count(*)"

    def test_custom_alias(self):
        assert Aggregate("sum", "price", "total").alias == "total"

    def test_unknown_function_rejected(self):
        with pytest.raises(QueryError, match="unknown aggregate"):
            Aggregate("median", "price")

    def test_missing_column_rejected(self):
        with pytest.raises(QueryError, match="requires a column"):
            Aggregate("sum")

    def test_var_never_negative_under_cancellation(self):
        # Large offset + tiny variance: naive E[x^2]-E[x]^2 can go negative.
        values = np.full(100, 1e9) + np.linspace(0, 1e-3, 100)
        codes = np.zeros(100, dtype=np.int64)
        result = finalize("var", values, codes, 1)
        assert result[0] >= 0.0
