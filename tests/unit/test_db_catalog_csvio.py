"""Unit tests: catalog registry and CSV import/export."""

import numpy as np
import pytest

from repro.db.catalog import Catalog
from repro.db.csvio import read_csv, write_csv
from repro.db.table import Table
from repro.db.types import AttributeRole, DataType
from repro.util.errors import SchemaError


@pytest.fixture
def table():
    return Table.from_columns("t", {"k": ["a", "b"], "v": [1.0, 2.0]})


class TestCatalog:
    def test_register_and_get(self, table):
        catalog = Catalog()
        catalog.register(table)
        assert catalog.get("t") is table
        assert "t" in catalog and len(catalog) == 1

    def test_double_register_rejected(self, table):
        catalog = Catalog()
        catalog.register(table)
        with pytest.raises(SchemaError, match="already registered"):
            catalog.register(table)
        catalog.register(table, replace=True)  # explicit replace allowed

    def test_drop(self, table):
        catalog = Catalog()
        catalog.register(table)
        catalog.drop("t")
        assert "t" not in catalog
        with pytest.raises(SchemaError):
            catalog.drop("t")

    def test_iteration_sorted(self, table):
        catalog = Catalog()
        catalog.register(table.rename("zz"))
        catalog.register(table.rename("aa"))
        assert list(catalog) == ["aa", "zz"]


class TestCsvRoundtrip:
    def test_roundtrip_types(self, tmp_path):
        source = Table.from_columns(
            "data",
            {
                "name": ["x", "y"],
                "count": [1, 2],
                "price": [1.5, 2.5],
                "flag": [True, False],
            },
        )
        path = tmp_path / "data.csv"
        write_csv(source, path)
        loaded = read_csv(path)
        assert loaded.schema["count"].dtype is DataType.INT
        assert loaded.schema["price"].dtype is DataType.FLOAT
        assert loaded.schema["flag"].dtype is DataType.BOOL
        assert loaded.to_rows() == source.to_rows()

    def test_dates_parsed(self, tmp_path):
        path = tmp_path / "d.csv"
        path.write_text("day,v\n2024-01-02,1\n2024-02-03,2\n")
        loaded = read_csv(path)
        assert loaded.schema["day"].dtype is DataType.DATE

    def test_empty_numeric_cells_become_nan(self, tmp_path):
        path = tmp_path / "n.csv"
        path.write_text("k,v\na,1.5\nb,\n")
        loaded = read_csv(path)
        assert np.isnan(loaded.column("v")[1])

    def test_empty_string_cells_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("k,v\n,1\nb,2\n")
        with pytest.raises(SchemaError, match="empty cells"):
            read_csv(path)

    def test_mixed_int_float_unifies_to_float(self, tmp_path):
        path = tmp_path / "m.csv"
        path.write_text("v\n1\n2.5\n")
        loaded = read_csv(path)
        assert loaded.schema["v"].dtype is DataType.FLOAT

    def test_role_override(self, tmp_path):
        path = tmp_path / "r.csv"
        path.write_text("year,v\n2020,1\n2021,2\n")
        loaded = read_csv(path, roles={"year": AttributeRole.DIMENSION})
        assert loaded.schema["year"].role is AttributeRole.DIMENSION

    def test_max_rows(self, tmp_path):
        path = tmp_path / "long.csv"
        path.write_text("v\n" + "\n".join(str(i) for i in range(100)))
        loaded = read_csv(path, max_rows=10)
        assert loaded.num_rows == 10

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            read_csv(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("a,b\n")
        with pytest.raises(SchemaError, match="no data rows"):
            read_csv(path)

    def test_table_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "orders.csv"
        path.write_text("v\n1\n")
        assert read_csv(path).name == "orders"
