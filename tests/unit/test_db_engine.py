"""Unit tests: the execution engine (queries, grouping sets, accounting)."""

import numpy as np
import pytest

from repro.db.aggregates import Aggregate
from repro.db.catalog import Catalog
from repro.db.engine import Engine
from repro.db.expressions import col
from repro.db.query import (
    AggregateQuery,
    FlagColumn,
    GroupingSetsQuery,
    RowSelectQuery,
)
from repro.util.errors import QueryError, SchemaError


@pytest.fixture
def engine(sales_table):
    catalog = Catalog()
    catalog.register(sales_table)
    return Engine(catalog)


class TestRowSelect:
    def test_no_predicate_returns_all(self, engine, sales_table):
        result = engine.execute(RowSelectQuery("sales"))
        assert result.num_rows == sales_table.num_rows

    def test_predicate_filters(self, engine):
        result = engine.execute(RowSelectQuery("sales", col("product") == "Laserwave"))
        assert result.num_rows == 4

    def test_unknown_table(self, engine):
        with pytest.raises(SchemaError, match="registered"):
            engine.execute(RowSelectQuery("nope"))


class TestAggregateQueries:
    def test_paper_query(self, engine):
        """The exact Q' of §1: total sales by store for the Laserwave."""
        result = engine.execute(
            AggregateQuery(
                "sales",
                ("store",),
                (Aggregate("sum", "amount"),),
                col("product") == "Laserwave",
            )
        )
        totals = dict(zip(result.column("store"), result.column("sum(amount)")))
        assert totals["Cambridge, MA"] == pytest.approx(180.55)
        assert totals["San Francisco, CA"] == pytest.approx(90.13)

    def test_groups_sorted(self, engine):
        result = engine.execute(
            AggregateQuery("sales", ("store",), (Aggregate("count"),))
        )
        stores = list(result.column("store"))
        assert stores == sorted(stores)

    def test_multiple_aggregates_in_one_query(self, engine):
        result = engine.execute(
            AggregateQuery(
                "sales",
                ("product",),
                (Aggregate("sum", "amount"), Aggregate("avg", "amount"),
                 Aggregate("count")),
            )
        )
        assert result.schema.names == ("product", "sum(amount)", "avg(amount)", "count(*)")

    def test_multi_key_group_by(self, engine):
        result = engine.execute(
            AggregateQuery("sales", ("product", "store"), (Aggregate("count"),))
        )
        assert result.num_rows == 8  # 2 products x 4 stores

    def test_flag_column_grouping(self, engine):
        flag = FlagColumn("is_laser", col("product") == "Laserwave")
        result = engine.execute(
            AggregateQuery("sales", (flag, "store"), (Aggregate("count"),))
        )
        flags = set(result.column("is_laser"))
        assert flags == {0, 1}
        laser_rows = result.mask(np.asarray(result.column("is_laser")) == 1)
        assert list(laser_rows.column("count(*)")) == [1.0, 1.0, 1.0, 1.0]

    def test_empty_selection_yields_empty_result(self, engine):
        result = engine.execute(
            AggregateQuery(
                "sales",
                ("store",),
                (Aggregate("sum", "amount"),),
                col("product") == "DoesNotExist",
            )
        )
        assert result.num_rows == 0

    def test_aggregate_on_missing_column(self, engine):
        with pytest.raises((QueryError, SchemaError)):
            engine.execute(
                AggregateQuery("sales", ("store",), (Aggregate("sum", "nope"),))
            )

    def test_empty_group_by_is_global_aggregate(self, engine):
        result = engine.execute(
            AggregateQuery("sales", (), (Aggregate("count"),))
        )
        assert result.num_rows == 1
        assert result.column("count(*)")[0] == 12.0


class TestGroupingSets:
    def test_matches_independent_queries(self, engine):
        aggregates = (Aggregate("sum", "amount"), Aggregate("avg", "profit"))
        gs_query = GroupingSetsQuery(
            "sales", (("store",), ("product",), ("month",)), aggregates
        )
        shared = engine.execute_grouping_sets(gs_query)
        for single_query, shared_result in zip(gs_query.as_single_queries(), shared):
            independent = engine.execute(single_query)
            assert independent.to_rows() == shared_result.to_rows()

    def test_single_scan_accounting(self, engine):
        engine.stats.reset()
        gs_query = GroupingSetsQuery(
            "sales", (("store",), ("product",)), (Aggregate("count"),)
        )
        engine.execute_grouping_sets(gs_query)
        assert engine.stats.table_scans == 1
        assert engine.stats.rows_scanned == 12

    def test_flag_in_sets(self, engine):
        flag = FlagColumn("f", col("product") == "Laserwave")
        gs_query = GroupingSetsQuery(
            "sales", ((flag, "store"), (flag, "month")), (Aggregate("count"),)
        )
        results = engine.execute_grouping_sets(gs_query)
        assert len(results) == 2
        assert "f" in results[0].schema


class TestStatsAccounting:
    def test_each_query_one_scan(self, engine):
        engine.stats.reset()
        engine.execute(AggregateQuery("sales", ("store",), (Aggregate("count"),)))
        engine.execute(AggregateQuery("sales", ("month",), (Aggregate("count"),)))
        assert engine.stats.queries == 2
        assert engine.stats.table_scans == 2
        assert engine.stats.rows_scanned == 24

    def test_snapshot_delta(self, engine):
        engine.stats.reset()
        before = engine.stats.snapshot()
        engine.execute(AggregateQuery("sales", ("store",), (Aggregate("count"),)))
        delta = engine.stats.delta(before)
        assert delta.queries == 1
        assert delta.table_scans == 1

    def test_reset(self, engine):
        engine.execute(AggregateQuery("sales", ("store",), (Aggregate("count"),)))
        engine.stats.reset()
        assert engine.stats.queries == 0


class TestQueryValidation:
    def test_no_aggregates_rejected(self):
        with pytest.raises(QueryError):
            AggregateQuery("t", ("a",), ())

    def test_duplicate_group_keys_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            AggregateQuery("t", ("a", "a"), (Aggregate("count"),))

    def test_alias_key_collision_rejected(self):
        with pytest.raises(QueryError, match="share names"):
            AggregateQuery("t", ("a",), (Aggregate("count", alias="a"),))

    def test_grouping_sets_need_sets(self):
        with pytest.raises(QueryError):
            GroupingSetsQuery("t", (), (Aggregate("count"),))

    def test_nan_measure_aggregation(self, nan_table):
        catalog = Catalog()
        catalog.register(nan_table)
        engine = Engine(catalog)
        result = engine.execute(
            AggregateQuery(
                "readings", ("sensor",), (Aggregate("avg", "value"),)
            )
        )
        values = dict(zip(result.column("sensor"), result.column("avg(value)")))
        assert values["a"] == pytest.approx(1.0)  # NaN skipped
        assert values["b"] == pytest.approx(4.0)
        assert np.isnan(values["c"])


class TestRowSelectLimit:
    def test_limit_truncates(self, engine):
        result = engine.execute(RowSelectQuery("sales", limit=3))
        assert result.num_rows == 3

    def test_limit_after_predicate(self, engine):
        result = engine.execute(
            RowSelectQuery("sales", col("product") == "Laserwave", limit=2)
        )
        assert result.num_rows == 2

    def test_limit_zero(self, engine):
        assert engine.execute(RowSelectQuery("sales", limit=0)).num_rows == 0

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryError):
            RowSelectQuery("sales", limit=-1)
