"""Unit tests: predicate AST evaluation and the fluent builder."""

from datetime import date

import numpy as np
import pytest

from repro.db.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    In,
    Literal,
    Not,
    Or,
    TruePredicate,
    col,
)
from repro.db.table import Table
from repro.util.errors import QueryError


@pytest.fixture
def table():
    return Table.from_columns(
        "t",
        {
            "name": ["ann", "bob", "cid", "dee"],
            "age": [30, 25, 40, 25],
            "joined": [
                date(2024, 1, 1),
                date(2024, 6, 1),
                date(2023, 1, 1),
                date(2024, 3, 15),
            ],
        },
    )


def names(table, mask):
    return [str(v) for v in table.column("name")[mask]]


class TestComparisons:
    def test_equality(self, table):
        mask = (col("age") == 25).evaluate(table)
        assert names(table, mask) == ["bob", "dee"]

    def test_inequality(self, table):
        mask = (col("age") != 25).evaluate(table)
        assert names(table, mask) == ["ann", "cid"]

    def test_ordering_operators(self, table):
        assert names(table, (col("age") > 30).evaluate(table)) == ["cid"]
        assert names(table, (col("age") >= 30).evaluate(table)) == ["ann", "cid"]
        assert names(table, (col("age") < 30).evaluate(table)) == ["bob", "dee"]
        assert names(table, (col("age") <= 25).evaluate(table)) == ["bob", "dee"]

    def test_date_comparison_with_python_date(self, table):
        mask = (col("joined") >= date(2024, 3, 1)).evaluate(table)
        assert names(table, mask) == ["bob", "dee"]

    def test_invalid_operator_rejected(self):
        with pytest.raises(QueryError, match="operator"):
            Comparison("~", ColumnRef("age"), Literal(1))

    def test_incomparable_types_raise_query_error(self, table):
        with pytest.raises(QueryError, match="compare"):
            (col("age") > "not a number").evaluate(table)


class TestSetAndRange:
    def test_in(self, table):
        mask = col("name").isin(["ann", "dee", "zzz"]).evaluate(table)
        assert names(table, mask) == ["ann", "dee"]

    def test_in_empty_matches_nothing(self, table):
        mask = In(ColumnRef("name"), ()).evaluate(table)
        assert not mask.any()

    def test_between_inclusive(self, table):
        mask = col("age").between(25, 30).evaluate(table)
        assert names(table, mask) == ["ann", "bob", "dee"]


class TestBooleanCombinators:
    def test_and(self, table):
        predicate = (col("age") == 25) & (col("name") == "dee")
        assert names(table, predicate.evaluate(table)) == ["dee"]

    def test_or(self, table):
        predicate = (col("name") == "ann") | (col("name") == "cid")
        assert names(table, predicate.evaluate(table)) == ["ann", "cid"]

    def test_not(self, table):
        predicate = ~(col("age") == 25)
        assert names(table, predicate.evaluate(table)) == ["ann", "cid"]

    def test_true_predicate(self, table):
        assert TruePredicate().evaluate(table).all()

    def test_and_requires_two_operands(self):
        with pytest.raises(QueryError):
            And((TruePredicate(),))

    def test_or_requires_two_operands(self):
        with pytest.raises(QueryError):
            Or((TruePredicate(),))


class TestReferencedColumns:
    def test_comparison(self):
        assert (col("a") == 1).referenced_columns() == {"a"}

    def test_nested(self):
        predicate = ((col("a") == 1) & (col("b") > 2)) | ~(col("c") != 3)
        assert predicate.referenced_columns() == {"a", "b", "c"}

    def test_true_predicate_references_nothing(self):
        assert TruePredicate().referenced_columns() == frozenset()

    def test_between_and_in(self):
        assert Between(ColumnRef("x"), 1, 2).referenced_columns() == {"x"}
        assert In(ColumnRef("y"), (1,)).referenced_columns() == {"y"}
