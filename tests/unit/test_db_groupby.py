"""Unit tests: factorization and grouped aggregation."""

import numpy as np
import pytest

from repro.db.aggregates import Aggregate
from repro.db.groupby import (
    aggregate_by_codes,
    factorize,
    factorize_multi,
    finalize_aggregates,
    merge_aggregate_partials,
)
from repro.util.errors import QueryError


class TestFactorize:
    def test_strings_sorted_order(self):
        codes, uniques = factorize(np.array(["b", "a", "b", "c"], dtype=object))
        assert list(uniques) == ["a", "b", "c"]
        assert list(codes) == [1, 0, 1, 2]

    def test_ints(self):
        codes, uniques = factorize(np.array([30, 10, 30]))
        assert list(uniques) == [10, 30]
        assert list(codes) == [1, 0, 1]

    def test_dates(self):
        values = np.array(["2024-02-01", "2024-01-01"], dtype="datetime64[D]")
        codes, uniques = factorize(values)
        assert codes[0] == 1 and codes[1] == 0

    def test_empty(self):
        codes, uniques = factorize(np.array([], dtype=np.int64))
        assert len(codes) == 0 and len(uniques) == 0


class TestFactorizeMulti:
    def test_single_column_shortcut(self):
        fact = factorize_multi({"k": np.array(["a", "b", "a"], dtype=object)}, 3)
        assert fact.n_groups == 2
        assert list(fact.keys["k"]) == ["a", "b"]

    def test_two_columns(self):
        fact = factorize_multi(
            {
                "x": np.array(["a", "a", "b", "b"], dtype=object),
                "y": np.array([1, 2, 1, 1]),
            },
            4,
        )
        assert fact.n_groups == 3  # (a,1), (a,2), (b,1)
        # Group keys stay aligned with codes.
        for row in range(4):
            group = fact.codes[row]
            assert fact.keys["x"][group] in ("a", "b")

    def test_empty_key_set_single_group(self):
        fact = factorize_multi({}, 5)
        assert fact.n_groups == 1
        assert list(fact.codes) == [0] * 5

    def test_empty_key_set_empty_table(self):
        fact = factorize_multi({}, 0)
        assert fact.n_groups == 0

    def test_combination_only_existing_pairs(self):
        # Cross product would be 4; only 2 combinations exist.
        fact = factorize_multi(
            {
                "x": np.array(["a", "b"], dtype=object),
                "y": np.array(["p", "q"], dtype=object),
            },
            2,
        )
        assert fact.n_groups == 2


class TestAggregateByCodes:
    def test_basic_flow(self):
        fact = factorize_multi({"k": np.array(["a", "b", "a"], dtype=object)}, 3)
        aggregates = (Aggregate("sum", "v"), Aggregate("count"))
        partials = aggregate_by_codes(
            fact, {"v": np.array([1.0, 2.0, 3.0])}, aggregates
        )
        final = finalize_aggregates(partials, aggregates)
        assert list(final["sum(v)"]) == [4.0, 2.0]
        assert list(final["count(*)"]) == [2.0, 1.0]

    def test_missing_measure_column_rejected(self):
        fact = factorize_multi({"k": np.array(["a"], dtype=object)}, 1)
        with pytest.raises(QueryError, match="missing column"):
            aggregate_by_codes(fact, {}, (Aggregate("sum", "v"),))

    def test_duplicate_alias_rejected(self):
        fact = factorize_multi({"k": np.array(["a"], dtype=object)}, 1)
        aggregates = (Aggregate("sum", "v", "x"), Aggregate("avg", "v", "x"))
        with pytest.raises(QueryError, match="duplicate"):
            aggregate_by_codes(fact, {"v": np.array([1.0])}, aggregates)

    def test_merge_partials_across_partitions(self):
        keys = np.array(["a", "b", "a", "b"], dtype=object)
        values = np.array([1.0, 2.0, 3.0, 4.0])
        fact_all = factorize_multi({"k": keys}, 4)
        aggregates = (Aggregate("avg", "v"),)
        all_partials = aggregate_by_codes(fact_all, {"v": values}, aggregates)

        first = factorize_multi({"k": keys[:2]}, 2)
        second = factorize_multi({"k": keys[2:]}, 2)
        partials_first = aggregate_by_codes(first, {"v": values[:2]}, aggregates)
        partials_second = aggregate_by_codes(second, {"v": values[2:]}, aggregates)
        merged = merge_aggregate_partials(partials_first, partials_second, aggregates)

        expected = finalize_aggregates(all_partials, aggregates)["avg(v)"]
        actual = finalize_aggregates(merged, aggregates)["avg(v)"]
        np.testing.assert_allclose(actual, expected)
