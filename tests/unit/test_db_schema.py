"""Unit tests: schemas and column specs."""

import pytest

from repro.db.schema import ColumnSpec, Schema
from repro.db.types import AttributeRole, DataType
from repro.util.errors import SchemaError


def spec(name, dtype=DataType.STR, role=AttributeRole.DIMENSION, semantic=None):
    return ColumnSpec(name, dtype, role, semantic)


class TestColumnSpec:
    def test_basic(self):
        column = spec("region", semantic="geography")
        assert column.semantic == "geography"

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError, match="non-empty"):
            ColumnSpec("", DataType.STR, AttributeRole.DIMENSION)

    def test_non_numeric_measure_rejected(self):
        with pytest.raises(SchemaError, match="must be numeric"):
            ColumnSpec("name", DataType.STR, AttributeRole.MEASURE)

    def test_numeric_measure_accepted(self):
        ColumnSpec("price", DataType.FLOAT, AttributeRole.MEASURE)


class TestSchema:
    def test_lookup_and_contains(self):
        schema = Schema.of(spec("a"), spec("b"))
        assert "a" in schema and "missing" not in schema
        assert schema["b"].name == "b"

    def test_unknown_column_lists_available(self):
        schema = Schema.of(spec("a"))
        with pytest.raises(SchemaError, match="available"):
            schema["zzz"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema.of(spec("a"), spec("a"))

    def test_dimension_and_measure_partitions(self):
        schema = Schema.of(
            spec("region"),
            spec("price", DataType.FLOAT, AttributeRole.MEASURE),
            spec("id", DataType.INT, AttributeRole.IGNORED),
        )
        assert [s.name for s in schema.dimensions] == ["region"]
        assert [s.name for s in schema.measures] == ["price"]

    def test_names_preserve_order(self):
        schema = Schema.of(spec("z"), spec("a"), spec("m"))
        assert schema.names == ("z", "a", "m")

    def test_len_and_iter(self):
        schema = Schema.of(spec("a"), spec("b"))
        assert len(schema) == 2
        assert [s.name for s in schema] == ["a", "b"]

    def test_require_role(self):
        schema = Schema.of(spec("price", DataType.FLOAT, AttributeRole.MEASURE))
        schema.require("price", AttributeRole.MEASURE)
        with pytest.raises(SchemaError, match="role"):
            schema.require("price", AttributeRole.DIMENSION)

    def test_with_roles_override(self):
        schema = Schema.of(spec("year", DataType.INT, AttributeRole.MEASURE))
        updated = schema.with_roles({"year": AttributeRole.DIMENSION})
        assert updated["year"].role is AttributeRole.DIMENSION
        # Original unchanged (schemas are immutable values).
        assert schema["year"].role is AttributeRole.MEASURE

    def test_with_roles_unknown_column(self):
        schema = Schema.of(spec("a"))
        with pytest.raises(SchemaError, match="unknown"):
            schema.with_roles({"nope": AttributeRole.DIMENSION})
