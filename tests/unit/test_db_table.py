"""Unit tests: the columnar Table."""

import numpy as np
import pytest

from repro.db.schema import ColumnSpec, Schema
from repro.db.table import Table
from repro.db.types import AttributeRole, DataType
from repro.util.errors import SchemaError


class TestConstruction:
    def test_from_columns_infers_types_and_roles(self):
        table = Table.from_columns(
            "t", {"region": ["a", "b"], "price": [1.0, 2.0]}
        )
        assert table.schema["region"].role is AttributeRole.DIMENSION
        assert table.schema["price"].role is AttributeRole.MEASURE
        assert table.num_rows == 2

    def test_from_columns_role_override(self):
        table = Table.from_columns(
            "t",
            {"year": [2020, 2021]},
            roles={"year": AttributeRole.DIMENSION},
        )
        assert table.schema["year"].role is AttributeRole.DIMENSION

    def test_from_rows(self):
        table = Table.from_rows("t", ["a", "n"], [("x", 1), ("y", 2)])
        assert table.to_rows() == [("x", 1), ("y", 2)]

    def test_from_rows_ragged_rejected(self):
        with pytest.raises(SchemaError, match="cells"):
            Table.from_rows("t", ["a", "b"], [("x",)])

    def test_ragged_columns_rejected(self):
        schema = Schema.of(
            ColumnSpec("a", DataType.INT, AttributeRole.DIMENSION),
            ColumnSpec("b", DataType.INT, AttributeRole.DIMENSION),
        )
        with pytest.raises(SchemaError, match="ragged"):
            Table("t", schema, {"a": np.array([1]), "b": np.array([1, 2])})

    def test_schema_column_mismatch_rejected(self):
        schema = Schema.of(ColumnSpec("a", DataType.INT, AttributeRole.DIMENSION))
        with pytest.raises(SchemaError, match="mismatch"):
            Table("t", schema, {"b": np.array([1])})

    def test_wrong_dtype_rejected(self):
        schema = Schema.of(ColumnSpec("a", DataType.INT, AttributeRole.DIMENSION))
        with pytest.raises(SchemaError, match="dtype"):
            Table("t", schema, {"a": np.array([1.0])})

    def test_empty_like(self):
        source = Table.from_columns("t", {"a": ["x"], "n": [1]})
        empty = Table.empty_like(source, "e")
        assert empty.num_rows == 0
        assert empty.schema.names == source.schema.names


class TestOperations:
    @pytest.fixture
    def table(self):
        return Table.from_columns(
            "t", {"k": ["a", "b", "a", "c"], "v": [1.0, 2.0, 3.0, 4.0]}
        )

    def test_mask(self, table):
        kept = table.mask(np.array([True, False, True, False]))
        assert kept.to_rows() == [("a", 1.0), ("a", 3.0)]

    def test_mask_requires_bool(self, table):
        with pytest.raises(SchemaError, match="boolean"):
            table.mask(np.array([1, 0, 1, 0]))

    def test_take(self, table):
        taken = table.take(np.array([3, 0]))
        assert taken.to_rows() == [("c", 4.0), ("a", 1.0)]

    def test_select_columns(self, table):
        projected = table.select_columns(["v"])
        assert projected.schema.names == ("v",)

    def test_head(self, table):
        assert table.head(2).num_rows == 2

    def test_concat(self, table):
        doubled = table.concat(table)
        assert doubled.num_rows == 8

    def test_concat_schema_mismatch(self, table):
        other = Table.from_columns("o", {"x": ["q"]})
        with pytest.raises(SchemaError, match="different columns"):
            table.concat(other)

    def test_row_and_iteration(self, table):
        assert table.row(1) == {"k": "b", "v": 2.0}
        assert len(list(table.iter_rows())) == 4

    def test_rename(self, table):
        assert table.rename("new").name == "new"

    def test_nbytes_positive(self, table):
        assert table.nbytes() > 0

    def test_column_unknown_raises(self, table):
        with pytest.raises(SchemaError):
            table.column("nope")

    def test_repr_mentions_rows(self, table):
        assert "rows=4" in repr(table)
