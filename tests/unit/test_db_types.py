"""Unit tests: data types, inference, coercion, default roles."""

from datetime import date

import numpy as np
import pytest

from repro.db.types import (
    AttributeRole,
    DataType,
    coerce_array,
    default_role,
    infer_data_type,
)
from repro.util.errors import SchemaError


class TestInference:
    def test_infer_int(self):
        assert infer_data_type([1, 2, 3]) is DataType.INT

    def test_infer_float(self):
        assert infer_data_type([1.5, 2.0]) is DataType.FLOAT

    def test_infer_str(self):
        assert infer_data_type(["a", "b"]) is DataType.STR

    def test_infer_bool(self):
        assert infer_data_type([True, False]) is DataType.BOOL

    def test_infer_date(self):
        assert infer_data_type([date(2024, 1, 1)]) is DataType.DATE

    def test_infer_numpy_datetime(self):
        array = np.array(["2024-01-01"], dtype="datetime64[D]")
        assert infer_data_type(array) is DataType.DATE

    def test_infer_numpy_arrays(self):
        assert infer_data_type(np.array([1, 2])) is DataType.INT
        assert infer_data_type(np.array([1.0])) is DataType.FLOAT
        assert infer_data_type(np.array(["x"])) is DataType.STR

    def test_bool_before_int(self):
        # Python bools are ints; inference must prefer BOOL.
        assert infer_data_type([True, False, True]) is DataType.BOOL

    def test_skips_leading_none(self):
        assert infer_data_type(np.array([None, "x"], dtype=object)) is DataType.STR

    def test_all_none_rejected(self):
        with pytest.raises(SchemaError, match="all-None"):
            infer_data_type(np.array([None, None], dtype=object))

    def test_unsupported_value_rejected(self):
        with pytest.raises(SchemaError, match="cannot infer"):
            infer_data_type(np.array([object()], dtype=object))


class TestCoercion:
    def test_coerce_int(self):
        array = coerce_array([1, 2], DataType.INT)
        assert array.dtype == np.int64

    def test_coerce_float_accepts_ints(self):
        array = coerce_array([1, 2.5], DataType.FLOAT)
        assert array.dtype == np.float64

    def test_coerce_str_array_is_object(self):
        array = coerce_array(["a", "b"], DataType.STR)
        assert array.dtype == object
        assert list(array) == ["a", "b"]

    def test_coerce_str_rejects_numbers(self):
        with pytest.raises(SchemaError, match="expected str"):
            coerce_array(["a", 1], DataType.STR)

    def test_coerce_int_rejects_strings(self):
        with pytest.raises(SchemaError):
            coerce_array(["a"], DataType.INT)

    def test_coerce_date(self):
        array = coerce_array([date(2024, 3, 1)], DataType.DATE)
        assert array.dtype.kind == "M"


class TestProperties:
    def test_numeric_flags(self):
        assert DataType.INT.is_numeric and DataType.FLOAT.is_numeric
        assert not DataType.STR.is_numeric
        assert not DataType.DATE.is_numeric

    def test_orderable_flags(self):
        assert DataType.DATE.is_orderable
        assert not DataType.STR.is_orderable

    def test_numpy_dtype_mapping(self):
        assert DataType.BOOL.numpy_dtype == np.dtype(np.bool_)
        assert DataType.STR.numpy_dtype == np.dtype(object)


class TestDefaultRole:
    def test_numeric_defaults_to_measure(self):
        assert default_role(DataType.FLOAT, 0.5) is AttributeRole.MEASURE

    def test_low_distinct_numeric_is_dimension(self):
        # An int column with 0.1% distinct values is a code, not a measure.
        assert default_role(DataType.INT, 0.001) is AttributeRole.DIMENSION

    def test_strings_are_dimensions(self):
        assert default_role(DataType.STR) is AttributeRole.DIMENSION

    def test_dates_are_dimensions(self):
        assert default_role(DataType.DATE) is AttributeRole.DIMENSION
