"""Unit tests: Deadline / CancelToken / cancel-scope primitives."""

import threading

import pytest

from repro.util.deadline import (
    CancelToken,
    Deadline,
    cancel_scope,
    check_current,
    current_token,
)
from repro.util.errors import Cancelled, ConfigError, DeadlineExceeded


class TestDeadline:
    def test_after_counts_down(self):
        deadline = Deadline.after(10.0)
        assert 0.0 < deadline.remaining() <= 10.0
        assert not deadline.expired()

    def test_past_deadline_is_expired(self):
        deadline = Deadline.after(-0.001)
        assert deadline.expired()
        assert deadline.remaining() <= 0.0

    def test_from_ms(self):
        assert Deadline.from_ms(None) is None
        deadline = Deadline.from_ms(1500)
        assert deadline is not None
        assert 1.0 < deadline.remaining() <= 1.5
        assert 1000.0 < deadline.remaining_ms() <= 1500.0

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_from_ms_rejects_non_positive(self, bad):
        with pytest.raises(ConfigError, match="deadline_ms must be positive"):
            Deadline.from_ms(bad)


class TestCancelToken:
    def test_fresh_token_is_clean(self):
        token = CancelToken()
        assert not token.cancelled
        assert not token.expired()
        assert not token.should_stop()
        assert token.error() is None
        token.check()  # no raise
        assert token.remaining() is None
        assert token.remaining_ms() is None

    def test_explicit_cancel_raises_cancelled(self):
        token = CancelToken()
        token.cancel("client went away")
        assert token.cancelled and token.should_stop()
        with pytest.raises(Cancelled, match="client went away"):
            token.check()
        with pytest.raises(Cancelled):
            token.check_cancel()

    def test_expired_deadline_raises_deadline_exceeded(self):
        token = CancelToken(deadline=Deadline.after(-0.001))
        assert token.expired() and token.should_stop()
        assert not token.cancelled  # expiry is not an explicit cancel
        with pytest.raises(DeadlineExceeded):
            token.check()
        token.check_cancel()  # deadline-only stop lets partial work finish

    def test_cancel_is_idempotent_and_keeps_first_reason(self):
        token = CancelToken()
        token.cancel("first")
        token.cancel("second")
        with pytest.raises(Cancelled, match="first"):
            token.check()

    def test_on_cancel_callback_runs_exactly_once(self):
        token = CancelToken()
        fired = []
        token.on_cancel(lambda: fired.append(1))
        token.cancel()
        token.cancel()
        assert fired == [1]

    def test_on_cancel_after_cancel_fires_immediately(self):
        token = CancelToken()
        token.cancel()
        fired = []
        token.on_cancel(lambda: fired.append(1))
        assert fired == [1]

    def test_unregister_prevents_callback(self):
        token = CancelToken()
        fired = []
        unregister = token.on_cancel(lambda: fired.append(1))
        unregister()
        token.cancel()
        assert fired == []

    def test_callback_exception_does_not_block_cancel(self):
        token = CancelToken()
        fired = []

        def boom():
            raise RuntimeError("callback bug")

        token.on_cancel(boom)
        token.on_cancel(lambda: fired.append(1))
        token.cancel()
        assert token.cancelled and fired == [1]

    def test_cancel_from_another_thread_observed(self):
        token = CancelToken()
        thread = threading.Thread(target=token.cancel)
        thread.start()
        thread.join(timeout=10)
        assert token.should_stop()


class TestCancelScope:
    def test_scope_installs_and_restores(self):
        token = CancelToken()
        assert current_token() is None
        with cancel_scope(token):
            assert current_token() is token
        assert current_token() is None

    def test_none_scope_is_a_noop(self):
        outer = CancelToken()
        with cancel_scope(outer):
            with cancel_scope(None):
                assert current_token() is outer
            assert current_token() is outer

    def test_scopes_nest(self):
        outer, inner = CancelToken(), CancelToken()
        with cancel_scope(outer):
            with cancel_scope(inner):
                assert current_token() is inner
            assert current_token() is outer

    def test_scope_is_thread_local(self):
        token = CancelToken()
        seen = []
        with cancel_scope(token):
            thread = threading.Thread(target=lambda: seen.append(current_token()))
            thread.start()
            thread.join(timeout=10)
        assert seen == [None]

    def test_check_current_raises_through_scope(self):
        token = CancelToken()
        token.cancel()
        check_current()  # no scope installed: no-op
        with cancel_scope(token):
            with pytest.raises(Cancelled):
                check_current()
