"""DuckDB backend pieces testable without the optional wheel.

The dialect/decode logic — native GROUPING SETS rendering with its
GROUPING() bitmask bookkeeping, combined-result splitting, fetchnumpy
array canonicalization, row encode/decode — is pure and runs here on
every environment; the live-engine paths run in the conformance suite's
duckdb cell when the wheel is installed.
"""

from datetime import date

import numpy as np
import pytest

from repro.backends import duckdb as duckdb_backend
from repro.backends.base import decode_result_column
from repro.backends.duckdb import (
    _NumpyExtractUnsupported,
    _encode_row,
    _rows_from_numpy,
    _table_from_numpy,
    duckdb_available,
)
from repro.backends.registry import parse_backend_uri
from repro.backends.sqlgen import render_grouping_sets_native, split_grouping_rows
from repro.db.aggregates import Aggregate
from repro.db.expressions import col
from repro.db.query import AggregateQuery, FlagColumn, GroupingSetsQuery
from repro.db.schema import ColumnSpec, Schema
from repro.db.types import AttributeRole, DataType
from repro.util.errors import BackendError, QueryError


class TestConstructionWithoutWheel:
    def test_clear_error_when_package_missing(self):
        if duckdb_available():
            pytest.skip("duckdb installed; the error path cannot fire")
        with pytest.raises(BackendError, match="duckdb"):
            duckdb_backend.DuckDbBackend()


class TestNativeGroupingSetsSql:
    def test_masks_are_distinct_and_decode_to_sets(self):
        query = GroupingSetsQuery(
            "t", (("a",), ("b",), ("a", "b")), (Aggregate("count"),)
        )
        sql, union_keys, mask_to_set = render_grouping_sets_native(query)
        assert [k for k in union_keys] == ["a", "b"]
        # 2 union keys: leftmost bit is "a". Set (a) groups a only -> b's
        # bit set -> mask 0b01; set (b) -> mask 0b10; set (a,b) -> 0b00.
        assert mask_to_set == {0b01: 0, 0b10: 1, 0b00: 2}
        assert "GROUP BY GROUPING SETS" in sql
        assert 'GROUPING("a", "b") AS "__seedb_grouping"' in sql
        assert sql.count("SELECT") == 1  # one statement, no UNION arms

    def test_flag_sets_render_case_expressions(self):
        flag = FlagColumn("__seedb_flag", col("p") == 1)
        query = GroupingSetsQuery(
            "t",
            ((flag, "a"), (flag, "b")),
            (Aggregate("sum", "m"),),
        )
        sql, union_keys, mask_to_set = render_grouping_sets_native(query)
        from repro.db.query import grouping_key_name

        assert [grouping_key_name(k) for k in union_keys] == [
            "__seedb_flag",
            "a",
            "b",
        ]
        # flag participates in both sets: its bit is never set.
        assert mask_to_set == {0b001: 0, 0b010: 1}
        # The CASE expression appears in GROUPING(), the select list, and
        # both grouping sets (expression identity is what GROUPING matches).
        assert sql.count("CASE WHEN") == 4
        assert "UNION" not in sql

    def test_predicate_rendered_before_group_by(self):
        query = GroupingSetsQuery(
            "t", (("a",), ("b",)), (Aggregate("count"),), col("x") > 3
        )
        sql, _keys, _masks = render_grouping_sets_native(query)
        assert sql.index("WHERE") < sql.index("GROUP BY GROUPING SETS")

    def test_duplicate_sets_rejected(self):
        query = GroupingSetsQuery(
            "t", (("a",), ("a",)), (Aggregate("count"),)
        )
        with pytest.raises(QueryError):
            render_grouping_sets_native(query)


class TestSplitGroupingRows:
    def singles(self):
        return GroupingSetsQuery(
            "t", (("a",), ("b",)), (Aggregate("sum", "m"), Aggregate("count"))
        ).as_single_queries()

    def test_splits_and_projects_by_tag(self):
        union_positions = {"a": 0, "b": 1}
        # (tag, a, b, sum(m), count(*)) — tag 0 groups by a, tag 1 by b.
        rows = [
            (0, "x", None, 3.0, 2.0),
            (1, None, "p", 4.0, 3.0),
            (0, None, None, 9.0, 1.0),  # genuine NULL data group of a
        ]
        first, second = split_grouping_rows(
            rows, self.singles(), union_positions, int
        )
        assert first == [("x", 3.0, 2.0), (None, 9.0, 1.0)]
        assert second == [("p", 4.0, 3.0)]

    def test_mask_decoder_routes_rows(self):
        union_positions = {"a": 0, "b": 1}
        mask_to_set = {0b01: 0, 0b10: 1}
        rows = [
            (0b01, "x", None, 3.0, 2.0),
            (0b10, None, "p", 4.0, 3.0),
        ]
        first, second = split_grouping_rows(
            rows,
            self.singles(),
            union_positions,
            lambda tag: mask_to_set[int(tag)],
        )
        assert first == [("x", 3.0, 2.0)]
        assert second == [("p", 4.0, 3.0)]


class TestRowCodecs:
    def test_encode_row(self):
        row = (
            np.int64(3),
            np.float64(1.5),
            float("nan"),
            np.datetime64("2024-03-01", "D"),
            "text",
            True,
        )
        encoded = _encode_row(row)
        assert encoded[0] == 3 and isinstance(encoded[0], int)
        assert encoded[1] == 1.5
        assert encoded[2] is None  # NaN -> NULL
        assert encoded[3] == date(2024, 3, 1)
        assert encoded[4] == "text"
        assert encoded[5] is True

    def test_decode_column_dtypes(self):
        assert np.isnan(decode_result_column([None, 2.0], DataType.FLOAT)[0])
        assert decode_result_column([1, 2], DataType.INT).dtype == np.int64
        assert decode_result_column([True, False], DataType.BOOL).dtype == np.bool_
        dates = decode_result_column([date(2024, 1, 2), None], DataType.DATE)
        assert dates.dtype == np.dtype("datetime64[D]")
        assert np.isnat(dates[1])
        strings = decode_result_column(["a", None], DataType.STR)
        assert strings[1] is None

    def test_decode_null_int_and_bool_raise_clear_errors(self):
        """NULL has no canonical INT/BOOL form: loud error, never a silent
        False/garbage coercion."""
        with pytest.raises(BackendError, match="NULL in INT"):
            decode_result_column([1, None], DataType.INT, "k")
        with pytest.raises(BackendError, match="NULL in BOOL"):
            decode_result_column([True, None], DataType.BOOL, "b")


class TestTableFromNumpy:
    def schema(self):
        return Schema(
            (
                ColumnSpec("d", DataType.STR, AttributeRole.DIMENSION),
                ColumnSpec("m", DataType.FLOAT, AttributeRole.MEASURE),
            )
        )

    def test_masked_float_becomes_nan(self):
        data = {
            "d": np.array(["x", "y"], dtype=object),
            "m": np.ma.MaskedArray([1.0, 99.0], mask=[False, True]),
        }
        table = _table_from_numpy("t", self.schema(), data)
        values = np.asarray(table.column("m"), dtype=float)
        assert values[0] == 1.0 and np.isnan(values[1])

    def test_masked_string_becomes_none(self):
        data = {
            "d": np.ma.MaskedArray(
                np.array(["x", "y"], dtype=object), mask=[True, False]
            ),
            "m": np.array([1.0, 2.0]),
        }
        table = _table_from_numpy("t", self.schema(), data)
        assert table.column("d")[0] is None
        assert table.column("d")[1] == "y"

    def test_masked_int_falls_back(self):
        schema = Schema(
            (ColumnSpec("k", DataType.INT, AttributeRole.DIMENSION),)
        )
        data = {"k": np.ma.MaskedArray([1, 2], mask=[False, True])}
        with pytest.raises(_NumpyExtractUnsupported):
            _table_from_numpy("t", schema, data)

    def test_date_column_roundtrip(self):
        schema = Schema(
            (ColumnSpec("day", DataType.DATE, AttributeRole.DIMENSION),)
        )
        data = {"day": np.array(["2024-01-02", "2024-02-03"], dtype="datetime64[us]")}
        table = _table_from_numpy("t", schema, data)
        assert table.column("day").dtype == np.dtype("datetime64[D]")

    def test_missing_column_rejected(self):
        with pytest.raises(_NumpyExtractUnsupported):
            _table_from_numpy("t", self.schema(), {"d": np.array(["x"], dtype=object)})


class TestRowsFromNumpy:
    """The row-decode fallback must preserve NULLs, never fill values."""

    def test_masked_entries_become_none_not_fill_values(self):
        schema = Schema(
            (
                ColumnSpec("d", DataType.STR, AttributeRole.DIMENSION),
                ColumnSpec("m", DataType.FLOAT, AttributeRole.MEASURE),
            )
        )
        data = {
            "d": np.array(["x", "y"], dtype=object),
            "m": np.ma.MaskedArray([1.0, 123.0], mask=[False, True],
                                   fill_value=999999.0),
        }
        rows = _rows_from_numpy(data, schema)
        assert rows[0][1] == 1.0
        assert rows[1][1] is None  # masked -> None, not 123.0 or the fill

    def test_missing_column_raises_backend_error(self):
        schema = Schema(
            (ColumnSpec("d", DataType.STR, AttributeRole.DIMENSION),)
        )
        with pytest.raises(BackendError, match="missing column"):
            _rows_from_numpy({}, schema)


class TestBackendUris:
    def test_bare_names(self):
        assert parse_backend_uri("memory") == ("memory", None)
        assert parse_backend_uri("duckdb") == ("duckdb", None)

    def test_relative_and_absolute_paths(self):
        assert parse_backend_uri("duckdb:///file.db") == ("duckdb", "file.db")
        assert parse_backend_uri("sqlite:////abs/file.db") == (
            "sqlite",
            "/abs/file.db",
        )
        assert parse_backend_uri("duckdb://") == ("duckdb", None)

    def test_invalid_uris_rejected(self):
        with pytest.raises(BackendError):
            parse_backend_uri("")
        with pytest.raises(BackendError):
            parse_backend_uri("://path")

    def test_memory_rejects_paths(self):
        from repro.backends.registry import backend_from_uri

        with pytest.raises(BackendError):
            backend_from_uri("memory:///somewhere")

    def test_custom_scheme_registration(self):
        from repro.backends import registry

        try:
            registry.register_backend_scheme(
                "custom", lambda path: ("made", path)
            )
            assert "custom" in registry.available_backend_schemes()
            assert registry.backend_from_uri("custom:///x.db") == ("made", "x.db")
        finally:
            registry._FACTORIES.pop("custom", None)

    def test_bad_scheme_name_rejected(self):
        from repro.backends import registry

        with pytest.raises(BackendError):
            registry.register_backend_scheme("no scheme", lambda path: None)

    def test_service_registers_backend_by_uri(self):
        from repro.service import SeeDBService

        service = SeeDBService()
        try:
            backend = service.register_backend_uri("default", "memory")
            assert service.backend("default") is backend
        finally:
            service.close()

    def test_service_uri_registration_propagates_unknown_scheme(self):
        from repro.service import SeeDBService

        service = SeeDBService()
        try:
            with pytest.raises(BackendError):
                service.register_backend_uri("default", "nosuch://x")
        finally:
            service.close()
