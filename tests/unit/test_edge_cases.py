"""Edge-case unit tests for paths not covered elsewhere."""

import numpy as np
import pytest

from repro.db.aggregates import Aggregate
from repro.db.expressions import col
from repro.db.grouping_sets import ColumnFactorizationCache
from repro.db.query import FlagColumn
from repro.db.table import Table
from repro.util.errors import QueryError
from repro.util.tabulate import format_table
from repro.viz.spec import ChartType, single_series_spec
from repro.viz.svg import render_svg


class TestGroupingSetsCache:
    def test_unmaterialized_flag_rejected(self, sales_table):
        cache = ColumnFactorizationCache(sales_table, flag_arrays={})
        flag = FlagColumn("missing_flag", col("product") == "Laserwave")
        with pytest.raises(QueryError, match="materialized"):
            cache.key_array(flag)

    def test_factorization_cached_per_column(self, sales_table):
        cache = ColumnFactorizationCache(sales_table, flag_arrays={})
        first = cache.factorized("store")
        second = cache.factorized("store")
        assert first[0] is second[0]  # same codes array object: cached

    def test_empty_key_set(self, sales_table):
        cache = ColumnFactorizationCache(sales_table, flag_arrays={})
        fact = cache.factorize_set(())
        assert fact.n_groups == 1
        assert fact.keys == {}


class TestSvgEdgeCases:
    def test_constant_series_has_valid_range(self):
        spec = single_series_spec(
            "flat", "x", "y", ["a", "b"], [5.0, 5.0], ChartType.LINE
        )
        svg = render_svg(spec)
        assert "<polyline" in svg
        assert "nan" not in svg.lower()

    def test_all_zero_series(self):
        spec = single_series_spec("zeros", "x", "y", ["a"], [0.0])
        svg = render_svg(spec)
        assert "<rect" in svg

    def test_single_category(self):
        spec = single_series_spec("one", "x", "y", ["only"], [3.5])
        assert "only" in render_svg(spec)


class TestTabulateFormats:
    def test_float_format_parameter(self):
        text = format_table([[3.14159]], headers=["pi"], float_format=".2f")
        assert "3.14" in text and "3.1416" not in text

    def test_mixed_column_not_right_aligned(self):
        # A column with both str and numbers is treated as text.
        text = format_table([["x"], [1]], headers=["col"])
        assert text.splitlines()[2].startswith("x")


class TestAggregateEdges:
    def test_min_max_on_int_column(self, sales_table):
        from repro.db.catalog import Catalog
        from repro.db.engine import Engine
        from repro.db.query import AggregateQuery

        catalog = Catalog()
        catalog.register(sales_table)
        engine = Engine(catalog)
        result = engine.execute(
            AggregateQuery(
                "sales", ("product",),
                (Aggregate("min", "profit"), Aggregate("max", "profit")),
            )
        )
        assert isinstance(result, Table)
        values = np.asarray(result.column("min(profit)"))
        assert np.isfinite(values).all()

    def test_var_single_value_group_zero(self):
        from repro.db.aggregates import AGGREGATE_FUNCTIONS

        function = AGGREGATE_FUNCTIONS["var"]
        partials = function.compute_partials(
            np.array([7.0]), np.array([0]), 1
        )
        assert function.finalize(partials)[0] == pytest.approx(0.0)


class TestIncrementalWithHellinger:
    def test_full_run(self, sales_table):
        from repro.core.incremental import IncrementalRecommender
        from repro.model.view import ViewSpec

        recommender = IncrementalRecommender(sales_table, metric="hellinger")
        views = [ViewSpec("store", "amount", "sum"), ViewSpec("month", None, "count")]
        result = recommender.recommend(
            col("product") == "Laserwave", views, k=1, n_phases=2
        )
        assert len(result.recommendations) == 1
        assert all(np.isfinite(u) for u in result.utilities.values())


class TestMultiViewCountOnly:
    def test_count_views_without_measures(self):
        from repro.backends.memory import MemoryBackend
        from repro.core.multiview import MultiViewRecommender
        from repro.db.query import RowSelectQuery
        from repro.db.types import AttributeRole

        table = Table.from_columns(
            "d3",
            {"a": ["x", "y"] * 6, "b": ["p", "p", "q"] * 4, "c": ["u"] * 12},
            roles={
                "a": AttributeRole.DIMENSION,
                "b": AttributeRole.DIMENSION,
                "c": AttributeRole.DIMENSION,
            },
        )
        backend = MemoryBackend()
        backend.register_table(table)
        recommender = MultiViewRecommender(backend)
        top = recommender.recommend(
            RowSelectQuery("d3", col("a") == "x"), k=2, n_dimensions=2,
            functions=(),
        )
        assert top
        assert all(v.spec.func == "count" for v in top)
