"""Unit tests: the ExecutionEngine layer (phases, cache, worker pool)."""

import pytest

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.engine import (
    EnumeratePhase,
    ExecutePhase,
    ExecutionContext,
    ExecutionEngine,
    MetadataPhase,
    PlanPhase,
    PrunePhase,
    SamplePhase,
    ScorePhase,
    SelectPhase,
    SessionCache,
    default_phases,
)

from repro.engine.cache import sample_table_name

QUERY = RowSelectQuery("sales", col("product") == "Laserwave")
SAMPLE_NAME = sample_table_name("sales", 0.5, 7)


class TestDataVersion:
    def test_register_and_drop_bump(self, sales_table):
        backend = MemoryBackend()
        v0 = backend.data_version
        backend.register_table(sales_table)
        assert backend.data_version == v0 + 1
        backend.drop_table("sales")
        assert backend.data_version == v0 + 2

    def test_sqlite_bumps_too(self, sales_table):
        backend = SqliteBackend()
        try:
            v0 = backend.data_version
            backend.register_table(sales_table)
            backend.drop_table("sales")
            assert backend.data_version == v0 + 2
        finally:
            backend.close()

    def test_create_sample_does_not_bump(self, memory_backend):
        version = memory_backend.data_version
        memory_backend.create_sample("sales", "sales__seedb_sample", 0.5)
        assert memory_backend.data_version == version


class TestSessionCache:
    def test_schema_and_metadata_cached(self, memory_backend):
        from repro.metadata.collector import MetadataCollector

        cache = SessionCache(memory_backend)
        cache.sync()
        collector = MetadataCollector()
        first_schema = cache.schema("sales")
        first_metadata = cache.metadata(collector, "sales")
        misses = cache.stats.misses
        assert cache.schema("sales") is first_schema
        assert cache.metadata(collector, "sales") is first_metadata
        assert cache.stats.misses == misses
        assert cache.stats.hits >= 2

    def test_invalidated_when_data_version_changes(self, memory_backend, nan_table):
        cache = SessionCache(memory_backend)
        cache.sync()
        cache.schema("sales")
        memory_backend.register_table(nan_table)  # bumps data_version
        cache.sync()
        assert cache.stats.invalidations == 1
        # The entry was evicted: next lookup is a miss again.
        misses = cache.stats.misses
        cache.schema("sales")
        assert cache.stats.misses == misses + 1

    def test_sync_without_change_keeps_entries(self, memory_backend):
        cache = SessionCache(memory_backend)
        cache.sync()
        cache.row_count("sales")
        cache.sync()
        assert cache.stats.invalidations == 0
        cache.row_count("sales")
        assert cache.stats.hits == 1

    def test_sample_owned_and_dropped_on_close(self, memory_backend):
        cache = SessionCache(memory_backend)
        cache.sync()
        name = cache.sample("sales", 0.5, seed=7)
        assert memory_backend.has_table(name)
        assert cache.sample("sales", 0.5, seed=7) == name  # hit, no rebuild
        cache.close()
        assert not memory_backend.has_table(name)
        assert cache.stats.samples_dropped == 1

    def test_sample_rebuilt_when_knobs_change(self, memory_backend):
        cache = SessionCache(memory_backend)
        cache.sync()
        cache.sample("sales", 0.5, seed=7)
        misses = cache.stats.misses
        cache.sample("sales", 0.25, seed=7)
        assert cache.stats.misses == misses + 1

    def test_metadata_keyed_on_row_cap(self, memory_backend):
        """Stats from a capped materialization must not serve other caps."""
        from repro.metadata.collector import MetadataCollector

        cache = SessionCache(memory_backend)
        cache.sync()
        collector = MetadataCollector()
        capped = cache.metadata(collector, "sales", max_rows=5)
        full = cache.metadata(collector, "sales", max_rows=None)
        assert capped.stats.n_rows == 5
        assert full.stats.n_rows == 12


class TestPhases:
    def make_ctx(self, backend, config=None):
        from repro.metadata.collector import MetadataCollector

        return ExecutionContext(
            backend=backend,
            query=QUERY,
            config=config if config is not None else SeeDBConfig(),
            k=3,
            metadata_collector=MetadataCollector(),
        )

    def test_default_phase_names_in_figure4_order(self):
        names = [phase.name for phase in default_phases()]
        assert names == [
            "metadata",
            "enumerate",
            "prune",
            "sample",
            "plan",
            "execute",
            "score",
            "select",
        ]

    def test_phases_compose_manually(self, memory_backend):
        """Each phase reads what the previous one wrote — run them by hand."""
        ctx = self.make_ctx(memory_backend)
        MetadataPhase().run(ctx)
        assert ctx.metadata is not None and ctx.base_table is not None
        EnumeratePhase().run(ctx)
        assert ctx.candidates
        PrunePhase().run(ctx)
        assert 0 < len(ctx.surviving) < len(ctx.candidates)
        SamplePhase().run(ctx)
        assert ctx.execution_table == "sales"  # table too small to sample
        PlanPhase().run(ctx)
        assert ctx.plan is not None and ctx.plan.steps
        ExecutePhase().run(ctx)
        assert set(ctx.raw_views) == set(ctx.surviving)
        ScorePhase().run(ctx)
        assert set(ctx.scored) == set(ctx.surviving)
        SelectPhase().run(ctx)
        assert len(ctx.recommendations) == 3
        result = ctx.to_result()
        assert result.n_candidate_views == len(ctx.candidates)
        assert result.recommendations is ctx.recommendations

    def test_engine_times_every_phase(self, memory_backend):
        engine = ExecutionEngine(memory_backend)
        ctx = engine.recommend(QUERY, SeeDBConfig(), k=2)
        assert set(ctx.stopwatch.phases) == {
            phase.name for phase in default_phases()
        }

    def test_swapped_phase_list_runs(self, memory_backend):
        """A custom pipeline (no pruning, no sampling) is just a shorter list."""
        engine = ExecutionEngine(memory_backend)
        ctx = engine.new_context(QUERY, SeeDBConfig(), k=2)
        engine.run(
            [
                MetadataPhase(),
                EnumeratePhase(),
                PlanPhase(),
                ExecutePhase(),
                ScorePhase(),
                SelectPhase(),
            ],
            ctx,
        )
        # Without PrunePhase even predicate-dimension views execute.
        assert set(ctx.raw_views) == set(ctx.candidates)
        assert len(ctx.recommendations) == 2


class TestSharedPool:
    def test_executor_reused_across_calls(self, memory_backend):
        from repro.optimizer.parallel import get_shared_pool

        engine = ExecutionEngine(memory_backend)
        config = SeeDBConfig(n_workers=4)
        first = engine.executor_for(config.n_workers)
        second = engine.executor_for(config.n_workers)
        assert first is second
        # Engines own no threads: the executor is a bounded view over the
        # process-wide shared pool.
        assert first.shared_pool is get_shared_pool()

    def test_pool_survives_between_recommends(self, medium_table):
        backend = MemoryBackend()
        backend.register_table(medium_table)
        query = RowSelectQuery("orders", col("product") == "p0")
        seedb = SeeDB(backend, SeeDBConfig(n_workers=4))
        first = seedb.recommend(query)
        assert len(first.plan_description.splitlines()) > 2  # multi-step plan
        executor = seedb.engine.executor
        assert executor is not None and executor.shared_pool.warm
        seedb.recommend(query)
        assert seedb.engine.executor is executor
        assert executor.pool_reuses >= 1
        seedb.close()
        # The executor view is released, but the shared pool survives for
        # every other engine in the process.
        assert seedb.engine.executor is None
        assert executor.shared_pool.warm

    def test_engines_share_one_pool(self, memory_backend):
        a = ExecutionEngine(memory_backend)
        b = ExecutionEngine(memory_backend)
        assert a.executor_for(4).shared_pool is b.executor_for(2).shared_pool

    def test_pool_kept_per_worker_count(self, memory_backend):
        engine = ExecutionEngine(memory_backend)
        four = engine.executor_for(4)
        two = engine.executor_for(2)
        assert four is not two and two.n_workers == 2
        assert engine.executor_for(4) is four  # both sizes stay cached
        assert engine.executor_for(1) is None

    def test_parallel_and_sequential_agree(self, memory_backend):
        sequential = SeeDB(memory_backend).recommend(QUERY)
        parallel = SeeDB(memory_backend, SeeDBConfig(n_workers=4)).recommend(QUERY)
        assert [v.spec for v in parallel.recommendations] == [
            v.spec for v in sequential.recommendations
        ]
        for spec, utility in sequential.utilities.items():
            assert parallel.utilities[spec] == pytest.approx(utility)


class TestCustomMetricInstances:
    """Facades accept DistanceMetric *instances*, not just registry names —
    they must survive the trip through the engine phases unchanged."""

    @staticmethod
    def make_metric():
        from repro.metrics.jensen_shannon import JensenShannonDistance

        class DoubledJS(JensenShannonDistance):
            name = "js"  # shadows the registry name on purpose

            def _distance(self, p, q):
                return min(1.0, 2.0 * super()._distance(p, q))

        return DoubledJS()

    def test_multiview_uses_the_instance(self, memory_backend):
        from repro.core.multiview import MultiViewRecommender

        query = QUERY
        stock = MultiViewRecommender(memory_backend).recommend(
            query, k=1, n_dimensions=2
        )
        custom = MultiViewRecommender(
            memory_backend, metric=self.make_metric()
        ).recommend(query, k=1, n_dimensions=2)
        assert custom[0].utility == pytest.approx(
            min(1.0, 2.0 * stock[0].utility)
        )

    def test_multiview_empty_table_returns_no_views(self):
        """Regression: no-group views are filtered, not recommended as
        zero-utility placeholders with empty distributions."""
        from repro.core.multiview import MultiViewRecommender
        from repro.db.table import Table
        from repro.db.types import AttributeRole

        empty = Table.from_columns(
            "sales",
            {"store": [], "month": [], "product": [], "amount": []},
            roles={
                "store": AttributeRole.DIMENSION,
                "month": AttributeRole.DIMENSION,
                "product": AttributeRole.DIMENSION,
                "amount": AttributeRole.MEASURE,
            },
        )
        backend = MemoryBackend()
        backend.register_table(empty)
        assert MultiViewRecommender(backend).recommend(QUERY, k=3) == []

    def test_incremental_uses_the_instance(self, sales_table):
        from repro.core.incremental import IncrementalRecommender
        from repro.core.space import enumerate_views, split_predicate_dimensions

        views = enumerate_views(sales_table.schema, functions=("sum",))
        views, _ = split_predicate_dimensions(views, QUERY.predicate)
        stock = IncrementalRecommender(sales_table).recommend(
            QUERY.predicate, views, k=len(views), n_phases=2
        )
        custom = IncrementalRecommender(
            sales_table, metric=self.make_metric()
        ).recommend(QUERY.predicate, views, k=len(views), n_phases=2)
        for spec, utility in stock.utilities.items():
            assert custom.utilities[spec] == pytest.approx(
                min(1.0, 2.0 * utility)
            )


class TestSampleLeak:
    def config(self):
        return SeeDBConfig(sample_fraction=0.5, min_rows_for_sampling=0)

    def test_no_sample_tables_survive_session(self, sales_table):
        """Regression: materialized samples must not outlive the session."""
        from repro.frontend.session import AnalystSession

        backend = MemoryBackend()
        backend.register_table(sales_table)
        with AnalystSession(backend, self.config()) as session:
            result = session.issue(QUERY)
            assert result.sample_fraction == 0.5
            assert backend.has_table(SAMPLE_NAME)
        leftovers = [
            name for name in list(backend.catalog) if "__seedb_sample" in name
        ]
        assert leftovers == []

    def test_seedb_close_drops_samples(self, sales_table):
        backend = MemoryBackend()
        backend.register_table(sales_table)
        with SeeDB(backend, self.config()) as seedb:
            seedb.recommend(QUERY)
        assert not backend.has_table(SAMPLE_NAME)

    def test_sample_reused_not_regrown(self, sales_table):
        backend = MemoryBackend()
        backend.register_table(sales_table)
        seedb = SeeDB(backend, self.config())
        seedb.recommend(QUERY)
        seedb.recommend(QUERY)
        samples = [
            name for name in list(backend.catalog) if "__seedb_sample" in name
        ]
        assert samples == [SAMPLE_NAME]  # exactly one, reused
        seedb.close()
