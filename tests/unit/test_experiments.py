"""Unit tests: the experiment harness (sweeps, measurement, reports)."""

import csv

import pytest

from repro.core.config import SeeDBConfig
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.experiments.accuracy import (
    metric_quality_on_planted,
    precision_at_k,
    sampling_accuracy_sweep,
)
from repro.experiments.figures import figures_2_3_utilities, verify_table_1
from repro.experiments.harness import Sweep, measure, rows_to_table, sweep_rows
from repro.experiments.latency import (
    OPTIMIZATION_GRID,
    latency_vs_optimizations,
    measure_recommendation,
)
from repro.experiments.report import render_markdown_table, write_rows_csv


@pytest.fixture(scope="module")
def tiny_dataset():
    return generate_synthetic(
        SyntheticConfig(n_rows=3_000, n_dimensions=3, n_measures=1,
                        cardinality=6),
        seed=9,
    )


class TestHarness:
    def test_measure_reports_best_and_mean(self):
        calls = []
        timing = measure(lambda: calls.append(1), repeats=4)
        assert len(calls) == 4
        assert timing["best_seconds"] <= timing["mean_seconds"]

    def test_measure_validates_repeats(self):
        with pytest.raises(ValueError):
            measure(lambda: None, repeats=0)

    def test_sweep_rows(self):
        rows = sweep_rows("x", [1, 2], lambda x: {"double": 2 * x})
        assert rows == [{"x": 1, "double": 2}, {"x": 2, "double": 4}]

    def test_sweep_table_rendering(self):
        text = Sweep("x", [1], lambda x: {"y": x}).table()
        assert "x" in text and "y" in text

    def test_rows_to_table_union_of_keys(self):
        text = rows_to_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_rows_to_table_empty(self):
        assert rows_to_table([]) == "(no rows)"


class TestReport:
    def test_markdown_table(self):
        text = render_markdown_table([{"metric": "js", "value": 0.5}])
        lines = text.splitlines()
        assert lines[0] == "| metric | value |"
        assert lines[1] == "| --- | --- |"
        assert lines[2] == "| js | 0.5 |"

    def test_markdown_empty(self):
        assert render_markdown_table([]) == "(no rows)"

    def test_write_rows_csv(self, tmp_path):
        path = write_rows_csv(
            [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}], tmp_path / "sub" / "r.csv"
        )
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]


class TestLatencyRunners:
    def test_measure_recommendation_fields(self, tiny_dataset):
        row = measure_recommendation(
            tiny_dataset.table, tiny_dataset.predicate, SeeDBConfig(), repeats=1
        )
        assert row["latency_s"] > 0
        assert row["queries"] > 0
        assert row["views_executed"] > 0
        assert "scans" in row

    def test_optimization_grid_shape(self):
        labels = [label for label, _overrides in OPTIMIZATION_GRID]
        assert labels[0] == "basic (none)"
        assert len(labels) == 5

    def test_latency_vs_optimizations_rows(self, tiny_dataset):
        rows = latency_vs_optimizations(
            tiny_dataset.table, tiny_dataset.predicate, repeats=1
        )
        assert len(rows) == len(OPTIMIZATION_GRID)
        basic, flag = rows[0], rows[1]
        assert flag["queries"] * 2 == basic["queries"]


class TestAccuracyRunners:
    def test_precision_at_k_bounds(self, tiny_dataset):
        from repro.backends.memory import MemoryBackend
        from repro.core.recommender import SeeDB
        from repro.db.query import RowSelectQuery

        backend = MemoryBackend()
        backend.register_table(tiny_dataset.table)
        result = SeeDB(backend, SeeDBConfig(prune_correlated=False)).recommend(
            RowSelectQuery(tiny_dataset.table.name, tiny_dataset.predicate), k=3
        )
        assert 0.0 <= precision_at_k(result, tiny_dataset) <= 1.0

    def test_metric_quality_rows(self, tiny_dataset):
        rows = metric_quality_on_planted(tiny_dataset, k=3, metrics=["js", "emd"])
        assert [row["metric"] for row in rows] == ["js", "emd"]
        for row in rows:
            assert "top_view" in row

    def test_sampling_sweep_starts_with_exact(self, tiny_dataset):
        rows = sampling_accuracy_sweep(tiny_dataset, fractions=[0.5], k=3)
        assert rows[0]["fraction"] == 1.0
        assert rows[0]["topk_precision"] == 1.0
        assert len(rows) == 2


class TestFigures:
    def test_verify_table_1_structure(self):
        result = verify_table_1(n_rows=2_000)
        assert set(result) == {"computed", "expected", "max_abs_error"}
        assert len(result["computed"]) == 4

    def test_figures_2_3_subset_of_metrics(self):
        rows = figures_2_3_utilities(metrics=["js"])
        assert len(rows) == 1
        assert rows[0]["a_over_b"] > 1
