"""Unit tests: the deterministic fault-injection harness."""

import time

import pytest

from repro.testing.faults import (
    FaultInjected,
    FaultInjector,
    FaultSpec,
    fault_point,
    install_injector,
    uninstall_injector,
)


@pytest.fixture(autouse=True)
def clean_injector():
    yield
    uninstall_injector()


class TestFaultPoint:
    def test_no_injector_is_a_noop(self):
        assert fault_point("backend.execute") == frozenset()

    def test_error_action_raises(self):
        install_injector(FaultInjector([FaultSpec("p", "error")]))
        with pytest.raises(FaultInjected, match="injected fault at 'p'"):
            fault_point("p")

    def test_custom_error_type(self):
        class Boom(FaultInjected):
            pass

        install_injector(FaultInjector([FaultSpec("p", "error", error_type=Boom)]))
        with pytest.raises(Boom):
            fault_point("p")

    def test_stall_action_sleeps(self):
        install_injector(
            FaultInjector([FaultSpec("p", "stall", delay_s=0.05, limit=1)])
        )
        start = time.monotonic()
        assert fault_point("p") == {"stall"}
        assert time.monotonic() - start >= 0.05
        # limit=1: the second hit passes through instantly
        start = time.monotonic()
        assert fault_point("p") == set()
        assert time.monotonic() - start < 0.05

    def test_tear_returned_not_applied(self):
        install_injector(FaultInjector([FaultSpec("shm.put", "tear")]))
        assert "tear" in fault_point("shm.put")

    def test_points_are_independent(self):
        install_injector(FaultInjector([FaultSpec("a", "error")]))
        assert fault_point("b") == set()
        with pytest.raises(FaultInjected):
            fault_point("a")

    def test_uninstall_restores_noop(self):
        install_injector(FaultInjector([FaultSpec("p", "error")]))
        uninstall_injector()
        assert fault_point("p") == frozenset()


class TestSchedules:
    def test_after_skips_first_hits(self):
        install_injector(FaultInjector([FaultSpec("p", "error", after=2)]))
        fault_point("p")
        fault_point("p")
        with pytest.raises(FaultInjected):
            fault_point("p")

    def test_limit_caps_firings(self):
        injector = install_injector(
            FaultInjector([FaultSpec("p", "tear", limit=2)])
        )
        results = [fault_point("p") for _ in range(5)]
        assert [("tear" in r) for r in results] == [True, True, False, False, False]
        assert injector.fired("p") == 2

    def test_probability_is_seeded_and_deterministic(self):
        def draw(seed):
            injector = FaultInjector(
                [FaultSpec("p", "tear", probability=0.5)], seed=seed
            )
            return [("tear" in injector.evaluate("p")) for _ in range(32)]

        fired = draw(7)
        assert fired == draw(7)  # same seed, same schedule
        assert any(fired) and not all(fired)  # p=0.5 actually mixes
        assert fired != draw(8)  # different seed, different schedule

    def test_fired_counts_across_points(self):
        injector = install_injector(
            FaultInjector([FaultSpec("a", "tear"), FaultSpec("b", "tear")])
        )
        fault_point("a")
        fault_point("a")
        fault_point("b")
        assert injector.fired("a") == 2
        assert injector.fired("b") == 1
        assert injector.fired() == 3

    def test_multiple_specs_at_one_point(self):
        install_injector(
            FaultInjector(
                [
                    FaultSpec("p", "tear"),
                    FaultSpec("p", "stall", delay_s=0.0),
                ]
            )
        )
        assert fault_point("p") == {"tear", "stall"}
