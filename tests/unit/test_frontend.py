"""Unit tests: query builder, templates, analyst session, and CLI."""

import numpy as np
import pytest

from repro.db.expressions import And, Between, Comparison, In, col
from repro.db.query import RowSelectQuery
from repro.frontend import AnalystSession, QueryBuilder, available_templates, build_template
from repro.frontend.cli import main as cli_main
from repro.util.errors import ConfigError, QueryError, SchemaError


class TestQueryBuilder:
    def test_no_conditions(self):
        assert QueryBuilder("t").build() == RowSelectQuery("t", None)

    def test_single_condition(self):
        query = QueryBuilder("t").where("a", "=", 1).build()
        assert isinstance(query.predicate, Comparison)

    def test_multiple_conditions_anded(self):
        query = (
            QueryBuilder("t")
            .where("a", "=", 1)
            .where_in("b", ["x", "y"])
            .where_between("c", 0, 9)
            .build()
        )
        assert isinstance(query.predicate, And)
        kinds = [type(op) for op in query.predicate.operands]
        assert kinds == [Comparison, In, Between]

    def test_schema_validation(self, sales_table):
        builder = QueryBuilder("sales", sales_table.schema)
        with pytest.raises(SchemaError):
            builder.where("no_such_column", "=", 1)

    def test_clear(self):
        builder = QueryBuilder("t").where("a", "=", 1)
        assert builder.n_conditions == 1
        builder.clear()
        assert builder.build().predicate is None

    def test_empty_table_name_rejected(self):
        with pytest.raises(QueryError):
            QueryBuilder("")

    def test_builder_query_equals_fluent_predicate(self, sales_table):
        built = QueryBuilder("sales").where("product", "=", "Laserwave").build()
        fluent = RowSelectQuery("sales", col("product") == "Laserwave")
        mask_a = built.predicate.evaluate(sales_table)
        mask_b = fluent.predicate.evaluate(sales_table)
        assert (mask_a == mask_b).all()


class TestTemplates:
    def test_registry(self):
        names = available_templates()
        assert "outliers" in names and "top_category" in names

    def test_unknown_template(self, sales_table):
        with pytest.raises(ConfigError, match="available"):
            build_template("nope", sales_table)

    def test_outliers_high(self, sales_table):
        query = build_template("outliers", sales_table, column="amount", z=1.0)
        mask = query.predicate.evaluate(sales_table)
        values = sales_table.column("amount")[mask]
        assert len(values) > 0
        assert values.min() > sales_table.column("amount").mean()

    def test_outliers_both_sides(self, sales_table):
        query = build_template(
            "outliers", sales_table, column="amount", side="both", z=0.5
        )
        assert query.predicate.evaluate(sales_table).sum() > 0

    def test_outliers_requires_numeric(self, sales_table):
        with pytest.raises(QueryError, match="numeric"):
            build_template("outliers", sales_table, column="store")

    def test_outliers_side_validation(self, sales_table):
        with pytest.raises(QueryError):
            build_template("outliers", sales_table, column="amount", side="middle")

    def test_top_category(self, sales_table):
        query = build_template("top_category", sales_table, column="product")
        mask = query.predicate.evaluate(sales_table)
        assert mask.sum() == 8  # "Other" is most frequent

    def test_equals(self, sales_table):
        query = build_template("equals", sales_table, column="product", value="Other")
        assert query.predicate.evaluate(sales_table).sum() == 8

    def test_recent_window_requires_dates(self, sales_table):
        with pytest.raises(QueryError, match="not a date"):
            build_template("recent_window", sales_table, date_column="store")

    def test_recent_window(self):
        from datetime import date

        from repro.db.table import Table

        table = Table.from_columns(
            "events",
            {
                "day": [date(2024, 1, 1), date(2024, 5, 1), date(2024, 5, 20)],
                "v": [1.0, 2.0, 3.0],
            },
        )
        query = build_template("recent_window", table, date_column="day", days=30)
        assert query.predicate.evaluate(table).sum() == 2


class TestAnalystSession:
    def test_issue_and_history(self, memory_backend):
        session = AnalystSession(memory_backend)
        result = session.issue("SELECT * FROM sales WHERE product = 'Laserwave'", k=3)
        assert len(session.history) == 1
        assert session.last_result is result
        assert len(result.recommendations) <= 3

    def test_requires_history_for_last(self, memory_backend):
        session = AnalystSession(memory_backend)
        with pytest.raises(QueryError, match="no query"):
            _ = session.last_query

    def test_view_metadata(self, memory_backend):
        session = AnalystSession(memory_backend)
        result = session.issue("SELECT * FROM sales WHERE product = 'Laserwave'")
        metadata = session.view_metadata(result.recommendations[0])
        assert metadata.n_groups > 0
        assert metadata.utility == result.recommendations[0].utility
        assert metadata.max_change_delta >= 0

    def test_show_renders_ascii(self, memory_backend):
        session = AnalystSession(memory_backend)
        result = session.issue("SELECT * FROM sales WHERE product = 'Laserwave'")
        text = session.show(result.recommendations[0])
        assert result.recommendations[0].spec.label in text

    def test_drill_down_conjoins_predicate(self, memory_backend):
        session = AnalystSession(memory_backend)
        result = session.issue("SELECT * FROM sales WHERE product = 'Laserwave'")
        view = result.recommendations[0]
        group = view.groups[0]
        drilled = session.drill_down(view, group, k=2)
        assert len(session.history) == 2
        assert "AND" in session.last_query.predicate.__class__.__name__.upper() or (
            session.last_query.predicate is not None
        )
        assert drilled.k == 2

    def test_drill_down_unknown_group(self, memory_backend):
        session = AnalystSession(memory_backend)
        result = session.issue("SELECT * FROM sales WHERE product = 'Laserwave'")
        with pytest.raises(QueryError, match="not in view"):
            session.drill_down(result.recommendations[0], "not-a-group")


class TestCli:
    def test_dataset_run(self, capsys):
        exit_code = cli_main(
            [
                "--dataset",
                "laserwave",
                "--sql",
                "SELECT * FROM sales WHERE product = 'Laserwave'",
                "--k",
                "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "SeeDB recommendations" in captured.out

    def test_csv_run_with_charts_and_export(self, tmp_path, capsys, sales_table):
        from repro.db.csvio import write_csv

        csv_path = tmp_path / "sales.csv"
        write_csv(sales_table, csv_path)
        export_dir = tmp_path / "charts"
        exit_code = cli_main(
            [
                "--csv",
                str(csv_path),
                "--sql",
                "SELECT * FROM sales WHERE product = 'Laserwave'",
                "--charts",
                "--show-bad-views",
                "--export",
                str(export_dir),
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "lowest-utility" in captured.out
        assert export_dir.exists() and list(export_dir.iterdir())

    def test_sqlite_backend_flag(self, capsys):
        exit_code = cli_main(
            [
                "--dataset",
                "laserwave",
                "--backend",
                "sqlite",
                "--sql",
                "SELECT * FROM sales WHERE product = 'Laserwave'",
            ]
        )
        assert exit_code == 0

    def test_error_exit_code(self, capsys):
        exit_code = cli_main(
            ["--dataset", "laserwave", "--sql", "SELECT * FROM wrong_table"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "error:" in captured.err


class TestCliTemplatesAndHtml:
    def test_template_query(self, capsys):
        exit_code = cli_main(
            [
                "--dataset", "medical",
                "--template", "outliers",
                "--template-arg", "column=los_days",
                "--template-arg", "z=2.0",
                "--k", "2",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "SeeDB recommendations" in captured.out

    def test_template_bad_arg_format(self, capsys):
        exit_code = cli_main(
            ["--dataset", "medical", "--template", "outliers",
             "--template-arg", "no_equals_sign"]
        )
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "KEY=VALUE" in captured.err

    def test_template_unknown_param(self, capsys):
        exit_code = cli_main(
            ["--dataset", "medical", "--template", "outliers",
             "--template-arg", "nonsense=1"]
        )
        assert exit_code == 2

    def test_html_report_flag(self, tmp_path, capsys):
        out = tmp_path / "report.html"
        exit_code = cli_main(
            [
                "--dataset", "laserwave",
                "--sql", "SELECT * FROM sales WHERE product = 'Laserwave'",
                "--html", str(out),
            ]
        )
        assert exit_code == 0
        assert out.exists()
        assert "<svg" in out.read_text()

    def test_sql_and_template_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            cli_main(
                ["--dataset", "laserwave", "--sql", "SELECT * FROM sales",
                 "--template", "outliers"]
            )


class TestViewMetadataSignificance:
    def test_p_value_present_for_count_views(self, memory_backend):
        session = AnalystSession(memory_backend)
        result = session.issue("SELECT * FROM sales WHERE product = 'Laserwave'")
        count_view = next(
            v for v in result.all_scored.values() if v.spec.func == "count"
        )
        metadata = session.view_metadata(count_view)
        assert metadata.p_value is not None
        assert 0.0 <= metadata.p_value <= 1.0

    def test_p_value_none_for_negative_measures(self, memory_backend):
        import numpy as np

        from repro.model.view import ScoredView, ViewSpec

        session = AnalystSession(memory_backend)
        session.issue("SELECT * FROM sales WHERE product = 'Laserwave'")
        view = ScoredView(
            spec=ViewSpec("store", "profit", "sum"),
            utility=0.1,
            groups=["a", "b"],
            target_distribution=np.array([0.5, 0.5]),
            comparison_distribution=np.array([0.5, 0.5]),
            target_values=np.array([-5.0, 5.0]),
            comparison_values=np.array([1.0, 1.0]),
        )
        assert session.view_metadata(view).p_value is None


class TestSessionRollUp:
    def test_roll_up_returns_to_previous_query(self, memory_backend):
        session = AnalystSession(memory_backend)
        first = session.issue("SELECT * FROM sales WHERE product = 'Laserwave'")
        view = first.recommendations[0]
        session.drill_down(view, view.groups[0])
        rolled = session.roll_up()
        assert session.last_query.predicate is not None
        # Back to the original predicate: same recommendations as `first`.
        assert [v.spec for v in rolled.recommendations] == [
            v.spec for v in first.recommendations
        ]

    def test_roll_up_requires_history(self, memory_backend):
        session = AnalystSession(memory_backend)
        with pytest.raises(QueryError, match="roll up"):
            session.roll_up()
        session.issue("SELECT * FROM sales WHERE product = 'Laserwave'")
        with pytest.raises(QueryError, match="roll up"):
            session.roll_up()
