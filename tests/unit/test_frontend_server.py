"""Unit tests: the HTTP/JSON frontend over a live in-process server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.config import SeeDBConfig
from repro.frontend.server import result_to_json, serve_in_thread
from repro.service import single_backend_service


@pytest.fixture
def served(memory_backend):
    """A service + live threaded server over the sales fixture table."""
    service = single_backend_service(memory_backend, SeeDBConfig(k=3))
    server, thread = serve_in_thread(service)
    host, port = server.server_address[:2]
    yield service, f"http://{host}:{port}"
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    service.close()


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, served):
        _, base = served
        body = get(base, "/healthz")
        assert body["status"] == "ok"
        assert body["backends"] == ["default"]
        assert body["mode"] == "threads"
        assert body["workers"] == []

    def test_views_enumerates_candidate_space(self, served):
        _, base = served
        body = get(base, "/views?table=sales")
        assert body["table"] == "sales"
        assert body["n_views"] == len(body["views"])
        labels = {view["label"] for view in body["views"]}
        assert "sum(amount) by store" in labels
        assert "count(*) by product" in labels

    def test_recommend_returns_chart_ready_views(self, served):
        _, base = served
        body = post(
            base,
            "/recommend",
            {"sql": "SELECT * FROM sales WHERE product = 'Laserwave'", "k": 2},
        )
        assert body["k"] == 2 and len(body["recommendations"]) == 2
        top = body["recommendations"][0]
        assert set(top) >= {
            "label",
            "utility",
            "groups",
            "target_distribution",
            "comparison_distribution",
        }
        assert len(top["groups"]) == len(top["target_distribution"])
        assert body["n_queries"] > 0
        assert "execute" in body["phase_seconds"]

    def test_recommend_config_override(self, served):
        _, base = served
        body = post(
            base,
            "/recommend",
            {
                "sql": "SELECT * FROM sales WHERE product = 'Laserwave'",
                "metric": "euclidean",
                "k": 1,
            },
        )
        assert body["metric"] == "euclidean"

    def test_stats_counts_http_traffic(self, served):
        service, base = served
        payload = {"sql": "SELECT * FROM sales WHERE product = 'Laserwave'"}
        post(base, "/recommend", payload)
        post(base, "/recommend", payload)  # identical: result-cache hit
        stats = get(base, "/stats")
        assert stats["requests"] == 2
        assert stats["executions"] == 1
        assert stats["result_cache_hits"] == 1
        assert stats["backends"]["default"]["backend"] == "memory"
        assert service.stats.requests == 2  # same counters, same object

    def test_http_and_session_share_one_service(self, served):
        from repro.frontend.session import AnalystSession

        service, base = served
        payload = {"sql": "SELECT * FROM sales WHERE product = 'Laserwave'"}
        post(base, "/recommend", payload)
        with AnalystSession(service=service) as session:
            session.issue("SELECT * FROM sales WHERE product = 'Laserwave'")
        # The interactive session's identical request hit the shared
        # result cache — one execution serves both transports.
        assert service.stats.executions == 1
        assert service.stats.result_cache_hits == 1


class TestErrors:
    def expect_error(self, fn, code):
        """HTTP error bodies are structured: {"error": {code, message, field?}}."""
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fn()
        assert excinfo.value.code == code
        error = json.loads(excinfo.value.read())["error"]
        assert isinstance(error, dict)
        assert "code" in error and "message" in error
        return error

    def test_unknown_route_404(self, served):
        _, base = served
        error = self.expect_error(lambda: get(base, "/nope"), 404)
        assert error["code"] == "not_found"

    def test_views_requires_table(self, served):
        _, base = served
        error = self.expect_error(lambda: get(base, "/views"), 400)
        assert error["code"] == "missing_field"
        assert error["field"] == "table"

    def test_recommend_requires_query(self, served):
        _, base = served
        error = self.expect_error(lambda: post(base, "/recommend", {}), 400)
        assert error["code"] == "missing_field"
        assert error["field"] == "target"
        assert "sql" in error["message"]

    def test_recommend_bad_metric_400(self, served):
        _, base = served
        error = self.expect_error(
            lambda: post(
                base,
                "/recommend",
                {"table": "sales", "metric": "not_a_metric"},
            ),
            400,
        )
        assert error["code"] == "invalid_value"
        assert error["field"] == "metric"

    def test_recommend_unknown_table_400(self, served):
        _, base = served
        self.expect_error(
            lambda: post(base, "/recommend", {"table": "missing"}), 400
        )

    def test_recommend_unknown_field_names_the_field(self, served):
        _, base = served
        error = self.expect_error(
            lambda: post(
                base, "/recommend", {"table": "sales", "bogus_knob": 1}
            ),
            400,
        )
        assert error["code"] == "unknown_field"
        assert error["field"] == "bogus_knob"

    def test_recommend_bad_option_value_names_the_path(self, served):
        _, base = served
        error = self.expect_error(
            lambda: post(
                base,
                "/recommend",
                {"table": "sales", "sample_fraction": 3.0},
            ),
            400,
        )
        assert error["code"] == "invalid_value"
        assert error["field"] == "options"

    def test_recommend_bad_sql_400(self, served):
        _, base = served
        error = self.expect_error(
            lambda: post(base, "/recommend", {"sql": "SELEKT * FROM sales"}),
            400,
        )
        assert error["code"] == "sql_syntax"

    def test_recommend_wrong_schema_version_400(self, served):
        _, base = served
        error = self.expect_error(
            lambda: post(
                base,
                "/recommend",
                {"schema_version": 99, "target": {"table": "sales"}},
            ),
            400,
        )
        assert error["code"] == "schema_version"


class TestStructuredRequests:
    def test_versioned_wire_form_with_reference(self, served):
        _, base = served
        body = post(
            base,
            "/recommend",
            {
                "schema_version": 1,
                "target": {
                    "table": "sales",
                    "predicate": {
                        "op": "=",
                        "column": "product",
                        "value": "Laserwave",
                    },
                },
                "reference": "complement",
                "k": 2,
            },
        )
        assert body["k"] == 2 and len(body["recommendations"]) == 2

    def test_sql_target_and_query_reference(self, served):
        _, base = served
        body = post(
            base,
            "/recommend",
            {
                "target": "SELECT * FROM sales WHERE product = 'Laserwave'",
                "reference": "SELECT * FROM sales WHERE product = 'Quasar'",
                "k": 1,
            },
        )
        assert len(body["recommendations"]) == 1


class TestStreaming:
    def post_stream(self, base: str, payload: dict) -> list[dict]:
        request = urllib.request.Request(
            base + "/recommend/stream",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            return [json.loads(line) for line in response if line.strip()]

    def test_stream_delivers_rounds_then_final(self, served):
        _, base = served
        payload = {
            "sql": "SELECT * FROM sales WHERE product = 'Laserwave'",
            "k": 2,
            "options": {"n_phases": 4},
        }
        lines = self.post_stream(base, payload)
        assert len(lines) >= 2
        partials, final = lines[:-1], lines[-1]
        assert all(not line["is_final"] for line in partials)
        assert [line["round"] for line in partials] == list(
            range(1, len(partials) + 1)
        )
        assert final["is_final"] and "result" in final
        # The final round repeats the definitive top-k of the full result.
        assert [v["label"] for v in final["recommendations"]] == [
            v["label"] for v in final["result"]["recommendations"]
        ]

    def test_stream_validation_error_is_structured_400(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post_stream(base, {"sql": "SELECT * FROM sales", "nope": 1})
        assert excinfo.value.code == 400
        error = json.loads(excinfo.value.read())["error"]
        assert error["code"] == "unknown_field"


class TestSerialization:
    def test_result_to_json_round_trips_through_json(self, memory_backend):
        from repro.core.recommender import SeeDB
        from repro.db.expressions import col
        from repro.db.query import RowSelectQuery

        result = SeeDB(memory_backend).recommend(
            RowSelectQuery("sales", col("product") == "Laserwave")
        )
        payload = result_to_json(result)
        decoded = json.loads(json.dumps(payload))
        assert decoded["table"] == "sales"
        assert len(decoded["recommendations"]) == result.k
