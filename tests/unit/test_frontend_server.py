"""Unit tests: the HTTP/JSON frontend over a live in-process server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.config import SeeDBConfig
from repro.frontend.server import result_to_json, serve_in_thread
from repro.service import single_backend_service


@pytest.fixture
def served(memory_backend):
    """A service + live threaded server over the sales fixture table."""
    service = single_backend_service(memory_backend, SeeDBConfig(k=3))
    server, thread = serve_in_thread(service)
    host, port = server.server_address[:2]
    yield service, f"http://{host}:{port}"
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    service.close()


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, served):
        _, base = served
        body = get(base, "/healthz")
        assert body == {"status": "ok", "backends": ["default"]}

    def test_views_enumerates_candidate_space(self, served):
        _, base = served
        body = get(base, "/views?table=sales")
        assert body["table"] == "sales"
        assert body["n_views"] == len(body["views"])
        labels = {view["label"] for view in body["views"]}
        assert "sum(amount) by store" in labels
        assert "count(*) by product" in labels

    def test_recommend_returns_chart_ready_views(self, served):
        _, base = served
        body = post(
            base,
            "/recommend",
            {"sql": "SELECT * FROM sales WHERE product = 'Laserwave'", "k": 2},
        )
        assert body["k"] == 2 and len(body["recommendations"]) == 2
        top = body["recommendations"][0]
        assert set(top) >= {
            "label",
            "utility",
            "groups",
            "target_distribution",
            "comparison_distribution",
        }
        assert len(top["groups"]) == len(top["target_distribution"])
        assert body["n_queries"] > 0
        assert "execute" in body["phase_seconds"]

    def test_recommend_config_override(self, served):
        _, base = served
        body = post(
            base,
            "/recommend",
            {
                "sql": "SELECT * FROM sales WHERE product = 'Laserwave'",
                "metric": "euclidean",
                "k": 1,
            },
        )
        assert body["metric"] == "euclidean"

    def test_stats_counts_http_traffic(self, served):
        service, base = served
        payload = {"sql": "SELECT * FROM sales WHERE product = 'Laserwave'"}
        post(base, "/recommend", payload)
        post(base, "/recommend", payload)  # identical: result-cache hit
        stats = get(base, "/stats")
        assert stats["requests"] == 2
        assert stats["executions"] == 1
        assert stats["result_cache_hits"] == 1
        assert stats["backends"]["default"]["backend"] == "memory"
        assert service.stats.requests == 2  # same counters, same object

    def test_http_and_session_share_one_service(self, served):
        from repro.frontend.session import AnalystSession

        service, base = served
        payload = {"sql": "SELECT * FROM sales WHERE product = 'Laserwave'"}
        post(base, "/recommend", payload)
        with AnalystSession(service=service) as session:
            session.issue("SELECT * FROM sales WHERE product = 'Laserwave'")
        # The interactive session's identical request hit the shared
        # result cache — one execution serves both transports.
        assert service.stats.executions == 1
        assert service.stats.result_cache_hits == 1


class TestErrors:
    def expect_error(self, fn, code):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fn()
        assert excinfo.value.code == code
        return json.loads(excinfo.value.read())["error"]

    def test_unknown_route_404(self, served):
        _, base = served
        self.expect_error(lambda: get(base, "/nope"), 404)

    def test_views_requires_table(self, served):
        _, base = served
        message = self.expect_error(lambda: get(base, "/views"), 400)
        assert "table" in message

    def test_recommend_requires_query(self, served):
        _, base = served
        message = self.expect_error(lambda: post(base, "/recommend", {}), 400)
        assert "sql" in message

    def test_recommend_bad_metric_400(self, served):
        _, base = served
        message = self.expect_error(
            lambda: post(
                base,
                "/recommend",
                {"table": "sales", "metric": "not_a_metric"},
            ),
            400,
        )
        assert "metric" in message

    def test_recommend_unknown_table_400(self, served):
        _, base = served
        self.expect_error(
            lambda: post(base, "/recommend", {"table": "missing"}), 400
        )


class TestSerialization:
    def test_result_to_json_round_trips_through_json(self, memory_backend):
        from repro.core.recommender import SeeDB
        from repro.db.expressions import col
        from repro.db.query import RowSelectQuery

        result = SeeDB(memory_backend).recommend(
            RowSelectQuery("sales", col("product") == "Laserwave")
        )
        payload = result_to_json(result)
        decoded = json.loads(json.dumps(payload))
        assert decoded["table"] == "sales"
        assert len(decoded["recommendations"]) == result.k
