"""Unit tests: the HTTP/JSON frontend over a live in-process server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.config import SeeDBConfig
from repro.frontend.server import result_to_json, serve_in_thread
from repro.service import single_backend_service


@pytest.fixture
def served(memory_backend):
    """A service + live threaded server over the sales fixture table."""
    service = single_backend_service(memory_backend, SeeDBConfig(k=3))
    server, thread = serve_in_thread(service)
    host, port = server.server_address[:2]
    yield service, f"http://{host}:{port}"
    server.shutdown()
    thread.join(timeout=10)
    server.server_close()
    service.close()


def get(base: str, path: str) -> dict:
    with urllib.request.urlopen(base + path, timeout=10) as response:
        return json.loads(response.read())


def post(base: str, path: str, payload: dict) -> dict:
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


class TestEndpoints:
    def test_healthz(self, served):
        _, base = served
        body = get(base, "/healthz")
        assert body["status"] == "ok"
        assert body["backends"] == ["default"]
        assert body["mode"] == "threads"
        assert body["workers"] == []

    def test_views_enumerates_candidate_space(self, served):
        _, base = served
        body = get(base, "/views?table=sales")
        assert body["table"] == "sales"
        assert body["n_views"] == len(body["views"])
        labels = {view["label"] for view in body["views"]}
        assert "sum(amount) by store" in labels
        assert "count(*) by product" in labels

    def test_recommend_returns_chart_ready_views(self, served):
        _, base = served
        body = post(
            base,
            "/recommend",
            {"sql": "SELECT * FROM sales WHERE product = 'Laserwave'", "k": 2},
        )
        assert body["k"] == 2 and len(body["recommendations"]) == 2
        top = body["recommendations"][0]
        assert set(top) >= {
            "label",
            "utility",
            "groups",
            "target_distribution",
            "comparison_distribution",
        }
        assert len(top["groups"]) == len(top["target_distribution"])
        assert body["n_queries"] > 0
        assert "execute" in body["phase_seconds"]

    def test_recommend_config_override(self, served):
        _, base = served
        body = post(
            base,
            "/recommend",
            {
                "sql": "SELECT * FROM sales WHERE product = 'Laserwave'",
                "metric": "euclidean",
                "k": 1,
            },
        )
        assert body["metric"] == "euclidean"

    def test_stats_counts_http_traffic(self, served):
        service, base = served
        payload = {"sql": "SELECT * FROM sales WHERE product = 'Laserwave'"}
        post(base, "/recommend", payload)
        post(base, "/recommend", payload)  # identical: result-cache hit
        stats = get(base, "/stats")
        assert stats["requests"] == 2
        assert stats["executions"] == 1
        assert stats["result_cache_hits"] == 1
        assert stats["backends"]["default"]["backend"] == "memory"
        assert service.stats.requests == 2  # same counters, same object

    def test_http_and_session_share_one_service(self, served):
        from repro.frontend.session import AnalystSession

        service, base = served
        payload = {"sql": "SELECT * FROM sales WHERE product = 'Laserwave'"}
        post(base, "/recommend", payload)
        with AnalystSession(service=service) as session:
            session.issue("SELECT * FROM sales WHERE product = 'Laserwave'")
        # The interactive session's identical request hit the shared
        # result cache — one execution serves both transports.
        assert service.stats.executions == 1
        assert service.stats.result_cache_hits == 1


def post_raw(base: str, path: str, payload: dict):
    """POST returning ``(body-dict, response-headers)``."""
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read()), response.headers


class TestVisualizationServing:
    RENDER_BODY = {
        "schema_version": 3,
        "target": "SELECT * FROM sales WHERE product = 'Laserwave'",
        "k": 2,
        "options": {"render": {"format": "vega-lite"}},
    }

    def test_recommend_returns_a_spec_for_every_topk_view(self, served):
        _, base = served
        body = post(base, "/recommend", self.RENDER_BODY)
        frames = body["visualizations"]
        assert len(frames) == len(body["recommendations"]) == 2
        for frame, view in zip(frames, body["recommendations"]):
            assert frame["view"] == view["label"]
            assert frame["spec"]["$schema"].endswith("v5.json")
            assert frame["rationale"]

    def test_emitted_specs_validate_against_vendored_schema(self, served):
        from repro.viz.vega_schema import validate_vega_lite

        _, base = served
        body = post(base, "/recommend", self.RENDER_BODY)
        for frame in body["visualizations"]:
            assert validate_vega_lite(frame["spec"]) == []

    def test_stream_rounds_carry_specs(self, served):
        _, base = served
        payload = dict(self.RENDER_BODY)
        payload["strategy"] = "incremental"
        lines = TestStreaming().post_stream(base, payload)
        for line in lines:
            assert line["visualizations"]
        assert lines[-1]["result"]["visualizations"] == (
            lines[-1]["visualizations"]
        )

    def test_dashboard_serves_self_contained_html(self, served):
        _, base = served
        request = urllib.request.Request(base + "/dashboard?table=sales")
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["Content-Type"].startswith("text/html")
            html = response.read().decode("utf-8")
        assert html.startswith("<!DOCTYPE html>")
        assert "/recommend/stream" in html
        assert '"table": "sales"' in html
        # Self-contained: no external scripts, styles, or fonts.
        for marker in ("src=\"http", "href=\"http", "@import", "cdn"):
            assert marker not in html.lower()

    def test_dashboard_requires_table(self, served):
        _, base = served
        error = TestErrors().expect_error(
            lambda: get(base, "/dashboard"), 400
        )
        assert error["code"] == "missing_field"

    def test_dashboard_unknown_table_structured_400(self, served):
        _, base = served
        TestErrors().expect_error(
            lambda: get(base, "/dashboard?table=missing"), 400
        )

    def test_dashboard_unknown_backend_structured_400(self, served):
        _, base = served
        error = TestErrors().expect_error(
            lambda: get(base, "/dashboard?table=sales&backend=nope"), 400
        )
        assert error["code"] == "unknown_backend"


class TestDeprecationSignaling:
    LEGACY = {"sql": "SELECT * FROM sales WHERE product = 'Laserwave'", "k": 2}

    def test_legacy_flat_body_stamped(self, served):
        _, base = served
        body, headers = post_raw(base, "/recommend", self.LEGACY)
        assert headers["Deprecation"] == "true"
        assert body["deprecation"]["code"] == "legacy_flat_body"
        assert "schema_version 3" in body["deprecation"]["message"]
        assert body["deprecation"]["docs"]

    def test_wire_form_body_not_stamped(self, served):
        _, base = served
        body, headers = post_raw(
            base,
            "/recommend",
            {"schema_version": 3, "target": self.LEGACY["sql"], "k": 2},
        )
        assert headers.get("Deprecation") is None
        assert "deprecation" not in body

    def test_stream_carries_the_header_only(self, served):
        _, base = served
        request = urllib.request.Request(
            base + "/recommend/stream",
            data=json.dumps(self.LEGACY).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["Deprecation"] == "true"
            lines = [json.loads(line) for line in response if line.strip()]
        assert all("deprecation" not in line for line in lines)

    def test_legacy_results_otherwise_unchanged(self, served):
        """Deprecation is additive: stripping the notice leaves exactly
        the body a wire-form request for the same work produces."""
        _, base = served
        legacy, _ = post_raw(base, "/recommend", self.LEGACY)
        legacy.pop("deprecation")
        wire, _ = post_raw(
            base,
            "/recommend",
            {"schema_version": 3, "target": self.LEGACY["sql"], "k": 2},
        )
        assert legacy == wire


class TestErrors:
    def expect_error(self, fn, code):
        """HTTP error bodies are structured: {"error": {code, message, field?}}."""
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            fn()
        assert excinfo.value.code == code
        error = json.loads(excinfo.value.read())["error"]
        assert isinstance(error, dict)
        assert "code" in error and "message" in error
        return error

    def test_unknown_route_404(self, served):
        _, base = served
        error = self.expect_error(lambda: get(base, "/nope"), 404)
        assert error["code"] == "not_found"

    def test_views_requires_table(self, served):
        _, base = served
        error = self.expect_error(lambda: get(base, "/views"), 400)
        assert error["code"] == "missing_field"
        assert error["field"] == "table"

    def test_recommend_requires_query(self, served):
        _, base = served
        error = self.expect_error(lambda: post(base, "/recommend", {}), 400)
        assert error["code"] == "missing_field"
        assert error["field"] == "target"
        assert "sql" in error["message"]

    def test_recommend_bad_metric_400(self, served):
        _, base = served
        error = self.expect_error(
            lambda: post(
                base,
                "/recommend",
                {"table": "sales", "metric": "not_a_metric"},
            ),
            400,
        )
        assert error["code"] == "invalid_value"
        assert error["field"] == "metric"

    def test_recommend_unknown_table_400(self, served):
        _, base = served
        self.expect_error(
            lambda: post(base, "/recommend", {"table": "missing"}), 400
        )

    def test_recommend_unknown_field_names_the_field(self, served):
        _, base = served
        error = self.expect_error(
            lambda: post(
                base, "/recommend", {"table": "sales", "bogus_knob": 1}
            ),
            400,
        )
        assert error["code"] == "unknown_field"
        assert error["field"] == "bogus_knob"

    def test_recommend_bad_option_value_names_the_path(self, served):
        _, base = served
        error = self.expect_error(
            lambda: post(
                base,
                "/recommend",
                {"table": "sales", "sample_fraction": 3.0},
            ),
            400,
        )
        assert error["code"] == "invalid_value"
        assert error["field"] == "options"

    def test_recommend_oversized_body_413(self, memory_backend):
        """A Content-Length past the cap is shed before the body is read:
        structured 413, nothing admitted to the service."""
        from repro.frontend.server import make_server
        import threading

        service = single_backend_service(memory_backend, SeeDBConfig(k=3))
        server = make_server(service, max_body_bytes=64)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            error = self.expect_error(
                lambda: post(
                    base,
                    "/recommend",
                    {"sql": "SELECT * FROM sales", "pad": "x" * 256},
                ),
                413,
            )
            assert error["code"] == "payload_too_large"
            assert "64" in error["message"]
            assert service.stats.requests == 0
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()
            service.close()

    def test_recommend_bad_sql_400(self, served):
        _, base = served
        error = self.expect_error(
            lambda: post(base, "/recommend", {"sql": "SELEKT * FROM sales"}),
            400,
        )
        assert error["code"] == "sql_syntax"

    def test_recommend_wrong_schema_version_400(self, served):
        _, base = served
        error = self.expect_error(
            lambda: post(
                base,
                "/recommend",
                {"schema_version": 99, "target": {"table": "sales"}},
            ),
            400,
        )
        assert error["code"] == "schema_version"


class TestStructuredRequests:
    def test_versioned_wire_form_with_reference(self, served):
        _, base = served
        body = post(
            base,
            "/recommend",
            {
                "schema_version": 1,
                "target": {
                    "table": "sales",
                    "predicate": {
                        "op": "=",
                        "column": "product",
                        "value": "Laserwave",
                    },
                },
                "reference": "complement",
                "k": 2,
            },
        )
        assert body["k"] == 2 and len(body["recommendations"]) == 2

    def test_sql_target_and_query_reference(self, served):
        _, base = served
        body = post(
            base,
            "/recommend",
            {
                "target": "SELECT * FROM sales WHERE product = 'Laserwave'",
                "reference": "SELECT * FROM sales WHERE product = 'Quasar'",
                "k": 1,
            },
        )
        assert len(body["recommendations"]) == 1


class TestStreaming:
    def post_stream(self, base: str, payload: dict) -> list[dict]:
        request = urllib.request.Request(
            base + "/recommend/stream",
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            return [json.loads(line) for line in response if line.strip()]

    def test_stream_delivers_rounds_then_final(self, served):
        _, base = served
        payload = {
            "sql": "SELECT * FROM sales WHERE product = 'Laserwave'",
            "k": 2,
            "options": {"n_phases": 4},
        }
        lines = self.post_stream(base, payload)
        assert len(lines) >= 2
        partials, final = lines[:-1], lines[-1]
        assert all(not line["is_final"] for line in partials)
        assert [line["round"] for line in partials] == list(
            range(1, len(partials) + 1)
        )
        assert final["is_final"] and "result" in final
        # The final round repeats the definitive top-k of the full result.
        assert [v["label"] for v in final["recommendations"]] == [
            v["label"] for v in final["result"]["recommendations"]
        ]

    def test_stream_validation_error_is_structured_400(self, served):
        _, base = served
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self.post_stream(base, {"sql": "SELECT * FROM sales", "nope": 1})
        assert excinfo.value.code == 400
        error = json.loads(excinfo.value.read())["error"]
        assert error["code"] == "unknown_field"


class TestSerialization:
    def test_result_to_json_round_trips_through_json(self, memory_backend):
        from repro.core.recommender import SeeDB
        from repro.db.expressions import col
        from repro.db.query import RowSelectQuery

        result = SeeDB(memory_backend).recommend(
            RowSelectQuery("sales", col("product") == "Laserwave")
        )
        payload = result_to_json(result)
        decoded = json.loads(json.dumps(payload))
        assert decoded["table"] == "sales"
        assert len(decoded["recommendations"]) == result.k


class TestStreamTeardown:
    """Client disconnects mid-NDJSON-stream must tear down cleanly: the
    handler's ``finally`` closes its subscription, a lone subscriber's
    departure cancels the execution, and a sibling subscriber coalesced
    onto the same stream is never poisoned by someone else's exit."""

    PAYLOAD = {
        "sql": "SELECT * FROM sales WHERE product = 'Laserwave'",
        "k": 2,
        "options": {"n_phases": 4},
    }

    @pytest.fixture(autouse=True)
    def slow_rounds(self):
        """Stall every incremental round after the first, so round one
        streams immediately and the disconnect lands mid-execution."""
        from repro.testing.faults import (
            FaultInjector,
            FaultSpec,
            install_injector,
            uninstall_injector,
        )

        install_injector(
            FaultInjector(
                [FaultSpec("engine.round", "stall", delay_s=0.2, after=1)]
            )
        )
        yield
        uninstall_injector()

    def open_stream(self, base: str):
        import http.client
        from urllib.parse import urlparse

        parsed = urlparse(base)
        conn = http.client.HTTPConnection(
            parsed.hostname, parsed.port, timeout=30
        )
        conn.request(
            "POST",
            "/recommend/stream",
            body=json.dumps(self.PAYLOAD),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 200
        return conn, response

    def abort(self, conn, response):
        """Tear the TCP connection down hard, like a vanished client.

        ``conn.close()`` alone is not enough: the response object holds a
        dup of the socket fd (``makefile``), so the connection would stay
        open until GC and the server's writes would keep succeeding.
        """
        import socket

        # With ``Connection: close`` responses the connection object has
        # already detached its socket; the live one sits under the
        # response's buffered reader.
        sock = conn.sock or getattr(response.fp.raw, "_sock", None)
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
        response.close()
        conn.close()

    def drain(self, service, timeout=15.0):
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if service.in_flight == 0:
                return True
            time.sleep(0.02)
        return False

    def test_disconnect_cancels_lone_stream_without_poisoning(self, served):
        service, base = served
        conn, response = self.open_stream(base)
        first = json.loads(response.readline())
        assert first["round"] == 1
        self.abort(conn, response)  # abrupt exit: the server hits EPIPE
        assert self.drain(service), "execution leaked after client disconnect"
        assert service.stats.cancelled == 1
        assert service.stats.completed == 0
        # The service is not poisoned: the same request, asked again by a
        # patient client, streams to the final round.
        lines = TestStreaming().post_stream(base, self.PAYLOAD)
        assert lines[-1]["is_final"]
        assert service.stats.completed == 1

    def test_sibling_subscriber_survives_http_disconnect(self, served):
        service, base = served
        leaver_conn, leaver_response = self.open_stream(base)
        assert json.loads(leaver_response.readline())["round"] == 1
        stayer_conn, stayer_response = self.open_stream(base)
        assert service.stats.coalesced == 1  # one shared execution
        self.abort(leaver_conn, leaver_response)
        try:
            lines = [
                json.loads(line)
                for line in stayer_response
                if line.strip()
            ]
        finally:
            stayer_conn.close()
        assert lines[-1]["is_final"]
        assert lines[-1]["result"] is not None
        assert [line["round"] for line in lines[:-1]] == list(
            range(1, len(lines))
        )
        assert self.drain(service)
        assert service.stats.cancelled == 0
        assert service.stats.completed == 1
