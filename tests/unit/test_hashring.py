"""Unit: consistent-hash routing for the sharded serving tier."""

from __future__ import annotations

import collections

import pytest

from repro.service.hashring import HashRing, stable_hash
from repro.util.errors import ConfigError


class TestStableHash:
    def test_deterministic_and_process_independent(self):
        # sha1-derived, so these values must never drift between runs or
        # hosts (routing affinity across restarts depends on it).
        assert stable_hash("w0#0") == stable_hash("w0#0")
        assert stable_hash(b"key") == stable_hash("key")
        assert stable_hash("a") != stable_hash("b")

    def test_64_bit_range(self):
        for key in ("", "x", "a-long-routing-key" * 10):
            assert 0 <= stable_hash(key) < 2**64


class TestRingMembership:
    def test_add_remove_idempotent(self):
        ring = HashRing(["w0", "w1"])
        ring.add("w0")  # duplicate add is a no-op
        assert ring.nodes == ["w0", "w1"]
        ring.remove("w1")
        ring.remove("w1")  # duplicate remove is a no-op
        assert ring.nodes == ["w0"]
        assert "w0" in ring and "w1" not in ring
        assert len(ring) == 1

    def test_replicas_validated(self):
        with pytest.raises(ConfigError):
            HashRing(replicas=0)

    def test_empty_ring_raises_on_lookup(self):
        ring = HashRing()
        assert ring.nodes_for("key", 1) == []
        with pytest.raises(ConfigError):
            ring.node_for("key")


class TestRouting:
    def test_stable_assignment(self):
        ring = HashRing(["w0", "w1", "w2"])
        keys = [f"digest-{i}" for i in range(100)]
        first = [ring.node_for(key) for key in keys]
        assert first == [ring.node_for(key) for key in keys]

    def test_distribution_roughly_even(self):
        ring = HashRing(["w0", "w1", "w2", "w3"], replicas=64)
        counts = collections.Counter(
            ring.node_for(f"key-{i}") for i in range(2000)
        )
        assert set(counts) == {"w0", "w1", "w2", "w3"}
        # Virtual nodes keep the spread sane: no shard more than ~2.5x fair.
        assert max(counts.values()) < 2.5 * (2000 / 4)

    def test_removal_moves_only_one_shard(self):
        # The consistent-hash property the respawn path relies on: taking
        # one node out reassigns only keys that node owned.
        ring = HashRing(["w0", "w1", "w2", "w3"])
        keys = [f"key-{i}" for i in range(500)]
        before = {key: ring.node_for(key) for key in keys}
        ring.remove("w1")
        for key in keys:
            after = ring.node_for(key)
            if before[key] != "w1":
                assert after == before[key]
            else:
                assert after != "w1"

    def test_failover_order_matches_removal(self):
        # nodes_for(key, 2)[1] must be where the key lands if its primary
        # is removed — so a crash retry goes where re-routed traffic goes.
        ring = HashRing(["w0", "w1", "w2"])
        for i in range(200):
            key = f"key-{i}"
            primary, fallback = ring.nodes_for(key, 2)
            assert primary == ring.node_for(key)
            ring.remove(primary)
            assert ring.node_for(key) == fallback
            ring.add(primary)

    def test_nodes_for_distinct_and_bounded(self):
        ring = HashRing(["w0", "w1"])
        nodes = ring.nodes_for("key", 5)
        assert sorted(nodes) == ["w0", "w1"]  # only 2 distinct exist
        assert ring.nodes_for("key", 1) == nodes[:1]
