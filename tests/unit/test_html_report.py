"""Unit tests: the standalone HTML report."""

import pytest

from repro.core.recommender import SeeDB
from repro.core.config import SeeDBConfig
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.viz.html_report import render_html_report, write_html_report


@pytest.fixture
def result(memory_backend):
    seedb = SeeDB(memory_backend, SeeDBConfig(prune_correlated=False))
    return seedb.recommend(
        RowSelectQuery("sales", col("product") == "Laserwave"), k=3
    )


class TestRenderHtml:
    def test_is_standalone_document(self, result):
        html = render_html_report(result)
        assert html.startswith("<!DOCTYPE html>")
        assert html.rstrip().endswith("</html>")
        assert "<script" not in html  # no external/active content

    def test_contains_recommendations_and_charts(self, result, memory_backend):
        html = render_html_report(result, memory_backend.schema("sales"))
        for view in result.recommendations:
            assert view.spec.label in html
        assert html.count("<svg") == len(result.recommendations)

    def test_contains_work_accounting(self, result):
        html = render_html_report(result)
        assert "DBMS queries" in html
        assert "execute" in html  # phase table

    def test_escapes_query_text(self, memory_backend):
        seedb = SeeDB(memory_backend)
        result = seedb.recommend(
            RowSelectQuery("sales", col("store") == "Cambridge, MA"), k=1
        )
        html = render_html_report(result, title="a <b> & 'c'")
        assert "a &lt;b&gt; &amp; 'c'" in html

    def test_custom_title(self, result):
        html = render_html_report(result, title="Laserwave study")
        assert "<title>Laserwave study</title>" in html

    def test_pruned_views_listed(self, result):
        html = render_html_report(result)
        # The predicate-dimension exclusion always prunes product views.
        assert "Pruned views" in html
        assert "constrained by the" in html

    def test_pruned_list_capped(self, result):
        html = render_html_report(result, max_pruned_listed=1)
        assert "more</li>" in html


class TestWriteHtml:
    def test_writes_file(self, result, tmp_path, memory_backend):
        path = write_html_report(
            result, tmp_path / "out" / "report.html",
            memory_backend.schema("sales"),
        )
        assert path.exists()
        content = path.read_text()
        assert "<svg" in content
