"""Unit tests: incremental execution with early termination."""

import numpy as np
import pytest

from repro.core.incremental import IncrementalRecommender, IncrementalResult
from repro.core.space import enumerate_views
from repro.core.view_processor import ViewProcessor
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic
from repro.db.expressions import col
from repro.metrics.registry import get_metric
from repro.model.view import RawViewData, ViewSpec
from repro.util.errors import ConfigError


@pytest.fixture(scope="module")
def dataset():
    return generate_synthetic(
        SyntheticConfig(n_rows=20_000, n_dimensions=5, n_measures=2,
                        cardinality=10, planted_dimensions=(0,)),
        seed=71,
    )


@pytest.fixture(scope="module")
def views(dataset):
    views = enumerate_views(dataset.table.schema, functions=("sum", "avg"))
    return [v for v in views if v.dimension != "segment"]


def exact_utilities(dataset, views):
    """Ground truth via full single-shot execution."""
    from repro.backends.memory import MemoryBackend
    from repro.optimizer.plan import ExecutionPlan, FlagStep, ViewGroup

    backend = MemoryBackend()
    backend.register_table(dataset.table)
    grouped: dict[str, list[ViewSpec]] = {}
    for view in views:
        grouped.setdefault(view.dimension, []).append(view)
    plan = ExecutionPlan(
        [
            FlagStep(dataset.table.name, dataset.predicate,
                     ViewGroup(dim, tuple(members)))
            for dim, members in grouped.items()
        ]
    )
    processor = ViewProcessor(get_metric("js"))
    return {
        spec: scored.utility
        for spec, scored in processor.score_all(plan.run(backend)).items()
    }


class TestExactness:
    def test_full_phases_match_single_shot(self, dataset, views):
        """With no pruning opportunity (delta tiny) and all phases run,
        the accumulated estimates equal exact single-shot utilities."""
        recommender = IncrementalRecommender(dataset.table, metric="js")
        result = recommender.recommend(
            dataset.predicate, views, k=len(views), n_phases=4, delta=1e-9
        )
        truth = exact_utilities(dataset, views)
        assert result.phases_executed == 4
        assert not result.pruned_at_phase
        for spec, utility in truth.items():
            assert result.utilities[spec] == pytest.approx(utility, rel=1e-9)

    def test_single_phase_is_exact(self, dataset, views):
        recommender = IncrementalRecommender(dataset.table)
        result = recommender.recommend(dataset.predicate, views, k=3, n_phases=1)
        truth = exact_utilities(dataset, views)
        for spec in views:
            assert result.utilities[spec] == pytest.approx(truth[spec], rel=1e-9)


class TestPruning:
    def test_pruning_saves_work_and_keeps_topk(self, dataset, views):
        recommender = IncrementalRecommender(dataset.table, metric="js")
        result = recommender.recommend(
            dataset.predicate, views, k=3, n_phases=10, delta=0.2
        )
        truth = exact_utilities(dataset, views)
        true_top = [
            spec
            for spec, _u in sorted(truth.items(), key=lambda kv: (-kv[1], kv[0]))
        ][:3]
        recommended = [v.spec for v in result.recommendations]
        assert len(set(recommended) & set(true_top)) >= 2
        assert result.work_saved_fraction > 0.0
        assert result.pruned_at_phase  # something was pruned early

    def test_pruned_views_are_truly_bad(self, dataset, views):
        recommender = IncrementalRecommender(dataset.table, metric="js")
        result = recommender.recommend(
            dataset.predicate, views, k=3, n_phases=10, delta=0.1
        )
        truth = exact_utilities(dataset, views)
        if not result.pruned_at_phase:
            pytest.skip("nothing pruned on this workload")
        top3 = sorted(truth.values(), reverse=True)[2]
        for spec in result.pruned_at_phase:
            # A pruned view must not actually belong in the exact top-3
            # by a wide margin (the bound's failure mode).
            assert truth[spec] < top3 + 0.05

    def test_no_pruning_below_min_phases(self, dataset, views):
        recommender = IncrementalRecommender(dataset.table)
        result = recommender.recommend(
            dataset.predicate, views, k=3, n_phases=2,
            min_phases_before_pruning=5,
        )
        assert not result.pruned_at_phase


class TestValidationAndEdges:
    def test_unbounded_metric_rejected(self, dataset):
        with pytest.raises(ConfigError, match="bounded"):
            IncrementalRecommender(dataset.table, metric="kl")

    def test_bad_parameters(self, dataset, views):
        recommender = IncrementalRecommender(dataset.table)
        with pytest.raises(ConfigError):
            recommender.recommend(dataset.predicate, views, n_phases=0)
        with pytest.raises(ConfigError):
            recommender.recommend(dataset.predicate, views, delta=1.5)

    def test_empty_views(self, dataset):
        recommender = IncrementalRecommender(dataset.table)
        result = recommender.recommend(dataset.predicate, [], k=3)
        assert result.recommendations == []
        assert result.work_saved_fraction == 0.0

    def test_none_predicate(self, dataset, views):
        recommender = IncrementalRecommender(dataset.table)
        result = recommender.recommend(None, views[:4], k=2, n_phases=3)
        # target == comparison everywhere -> all utilities ~0.
        for utility in result.utilities.values():
            assert utility == pytest.approx(0.0, abs=1e-9)

    def test_work_accounting(self, dataset, views):
        recommender = IncrementalRecommender(dataset.table)
        subset = views[:6]
        result = recommender.recommend(
            dataset.predicate, subset, k=6, n_phases=3, delta=1e-9
        )
        assert result.work_possible == 18
        assert result.work_done == 18  # k == len(views): nothing prunable
