"""Unit tests: request lifecycle — deadlines, admission control, stream
cancellation, partial results — at the SeeDBService layer."""

import threading
import time

import pytest

from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.service import single_backend_service
from repro.testing.faults import (
    FaultInjector,
    FaultSpec,
    install_injector,
    uninstall_injector,
)
from repro.util.errors import Cancelled, DeadlineExceeded, Overloaded

QUERY = RowSelectQuery("sales", col("product") == "Laserwave")


@pytest.fixture(autouse=True)
def clean_injector():
    yield
    uninstall_injector()


def stalled_service(backend, **kwargs):
    """A service whose executions block until ``release`` is set.

    Returns ``(service, release, started)``: ``started`` is set once the
    first execution reaches the facade (i.e. occupies its admission slot
    on a worker thread).
    """
    kwargs.setdefault("result_cache_size", 0)
    service = single_backend_service(backend, **kwargs)
    facade = service.facade()
    release, started = threading.Event(), threading.Event()
    inner = facade.run_resolved

    def slow_run_resolved(resolved, **inner_kwargs):
        started.set()
        release.wait(timeout=10)
        return inner(resolved, **inner_kwargs)

    facade.run_resolved = slow_run_resolved
    return service, release, started


class TestDeadlines:
    def test_deadline_ms_travels_through_submit(self, memory_backend):
        with single_backend_service(memory_backend) as service:
            result = service.recommend(QUERY, deadline_ms=60_000)
            assert result.partial is False
            assert len(result.recommendations) > 0

    def test_exhausted_budget_raises_deadline_exceeded(self, memory_backend):
        service, release, started = stalled_service(memory_backend)
        release.set()  # don't block, just delay via the injected stall
        install_injector(
            FaultInjector([FaultSpec("backend.execute", "stall", delay_s=0.1)])
        )
        try:
            future = service.submit(QUERY, deadline_ms=30)
            with pytest.raises(DeadlineExceeded):
                future.result(timeout=10)
            assert service.stats.deadline_exceeded == 1
            assert service.stats.failed == 1
        finally:
            service.close()

    def test_deadline_in_coalescing_key(self, memory_backend):
        """Different budgets must not share one execution: a joiner with a
        fat budget must never inherit a starved execution's failure."""
        service, release, started = stalled_service(memory_backend, max_workers=4)
        try:
            first = service.submit(QUERY, deadline_ms=60_000)
            assert started.wait(timeout=10)
            second = service.submit(QUERY, deadline_ms=120_000)
            third = service.submit(QUERY, deadline_ms=60_000)
            assert second is not first  # different budget: own execution
            assert third is first  # same budget: coalesced
            release.set()
            first.result(timeout=10)
            second.result(timeout=10)
        finally:
            release.set()
            service.close()


class TestAdmissionControl:
    def test_queue_full_sheds_with_retry_after(self, memory_backend):
        service, release, started = stalled_service(
            memory_backend, max_workers=1, max_queue_depth=0
        )
        try:
            first = service.submit(QUERY, k=2)
            assert started.wait(timeout=10)
            with pytest.raises(Overloaded) as excinfo:
                service.submit(QUERY, k=3)
            assert excinfo.value.retry_after is not None
            assert excinfo.value.retry_after > 0
            assert excinfo.value.http_status == 429
            assert service.stats.rejected == 1
            release.set()
            first.result(timeout=10)
            # The slot was released: the same request is admitted now.
            service.recommend(QUERY, k=3)
        finally:
            release.set()
            service.close()

    def test_backend_inflight_cap(self, memory_backend):
        service, release, started = stalled_service(
            memory_backend, max_workers=4, backend_inflight_limit=1
        )
        try:
            first = service.submit(QUERY, k=2)
            assert started.wait(timeout=10)
            with pytest.raises(Overloaded, match="in-flight cap"):
                service.submit(QUERY, k=3)
            release.set()
            first.result(timeout=10)
        finally:
            release.set()
            service.close()

    def test_coalesced_joiners_are_never_shed(self, memory_backend):
        service, release, started = stalled_service(
            memory_backend, max_workers=1, max_queue_depth=0
        )
        try:
            first = service.submit(QUERY, k=2)
            assert started.wait(timeout=10)
            joiner = service.submit(QUERY, k=2)  # identical: no new slot
            assert joiner is first
            assert service.stats.rejected == 0
            release.set()
            first.result(timeout=10)
        finally:
            release.set()
            service.close()

    def test_cache_hits_are_never_shed(self, memory_backend):
        service = single_backend_service(
            memory_backend, max_workers=1, max_queue_depth=0
        )
        facade = service.facade()
        try:
            warm = service.recommend(QUERY, k=2)  # populate the cache
            release, started = threading.Event(), threading.Event()
            inner = facade.run_resolved

            def slow_run_resolved(resolved, **kwargs):
                started.set()
                release.wait(timeout=10)
                return inner(resolved, **kwargs)

            facade.run_resolved = slow_run_resolved
            blocker = service.submit(QUERY, k=3)  # saturate the only slot
            assert started.wait(timeout=10)
            cached = service.submit(QUERY, k=2)  # cache hit: admitted free
            assert cached.result(timeout=1) is warm
            release.set()
            blocker.result(timeout=10)
        finally:
            service.close()


class TestStreamLifecycle:
    def stall_rounds(self, delay_s=0.2):
        """Slow every incremental round after the first: round one streams
        immediately, later rounds give the test a window to act in."""
        install_injector(
            FaultInjector(
                [FaultSpec("engine.round", "stall", delay_s=delay_s, after=1)]
            )
        )

    def drain_in_flight(self, service, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if service.in_flight == 0:
                return True
            time.sleep(0.01)
        return False

    def test_deadline_mid_stream_degrades_to_partial(self, memory_backend):
        self.stall_rounds(delay_s=0.3)
        with single_backend_service(memory_backend) as service:
            rounds = list(
                service.recommend_stream(
                    QUERY, deadline_ms=150, n_phases=4
                )
            )
            final = rounds[-1]
            assert final.is_final
            assert final.result is not None
            assert final.result.partial is True
            assert final.result.partial_epsilon is not None
            assert final.result.partial_epsilon > 0
            assert final.epsilon == final.result.partial_epsilon
            assert len(final.recommendations) > 0  # best current top-k
            assert service.stats.partial_results == 1
            assert service.stats.deadline_exceeded == 0  # degraded, not failed

    def test_partial_results_are_not_cached(self, memory_backend):
        self.stall_rounds(delay_s=0.3)
        with single_backend_service(memory_backend) as service:
            rounds = list(
                service.recommend_stream(
                    QUERY, deadline_ms=150, n_phases=4
                )
            )
            assert rounds[-1].result.partial is True
            uninstall_injector()  # next run is healthy
            full = service.recommend(QUERY, n_phases=4)
            assert full.partial is False
            assert service.stats.result_cache_hits == 0

    def test_last_subscriber_disconnect_cancels_execution(self, memory_backend):
        self.stall_rounds(delay_s=0.2)
        with single_backend_service(memory_backend) as service:
            stream = service.recommend_stream(QUERY, n_phases=6)
            first = next(stream)
            assert first.round == 1
            stream.close()  # last subscriber leaves mid-stream
            assert self.drain_in_flight(service)
            assert service.stats.cancelled == 1
            assert service.stats.completed == 0

    def test_sibling_subscriber_survives_one_disconnect(self, memory_backend):
        self.stall_rounds(delay_s=0.2)
        with single_backend_service(memory_backend) as service:
            leaver = service.recommend_stream(QUERY, n_phases=4)
            next(leaver)
            stayer = service.recommend_stream(QUERY, n_phases=4)
            assert service.stats.coalesced == 1  # one shared execution
            leaver.close()  # refcount 2 -> 1: no cancellation
            rounds = list(stayer)
            assert rounds[-1].is_final
            assert rounds[-1].result is not None
            assert rounds[-1].result.partial is False
            assert service.stats.cancelled == 0
            assert service.stats.completed == 1
