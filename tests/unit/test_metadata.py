"""Unit tests: statistics, access log, and the metadata collector."""

import numpy as np
import pytest

from repro.db.aggregates import Aggregate
from repro.db.expressions import col
from repro.db.query import AggregateQuery, RowSelectQuery
from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.metadata import (
    AccessLog,
    MetadataCollector,
    cramers_v,
    pearson_correlation,
)
from repro.metadata.stats import compute_column_stats, compute_table_stats
from repro.util.errors import ConfigError


class TestColumnStats:
    def test_categorical_stats(self, sales_table):
        stats = compute_column_stats(sales_table, "store")
        assert stats.n_distinct == 4
        assert stats.n_rows == 12
        assert stats.entropy == pytest.approx(2.0)  # uniform over 4 values
        assert stats.min_value is None

    def test_numeric_stats(self, sales_table):
        stats = compute_column_stats(sales_table, "amount")
        assert stats.min_value == pytest.approx(10.0)
        assert stats.max_value == pytest.approx(180.55)
        assert stats.mean is not None and stats.variance > 0

    def test_constant_detection(self):
        table = Table.from_columns("t", {"c": ["x"] * 5, "v": [1.0] * 5})
        stats = compute_column_stats(table, "c")
        assert stats.is_constant
        assert stats.entropy == pytest.approx(0.0)

    def test_nan_counts_as_null(self, nan_table):
        stats = compute_column_stats(nan_table, "value")
        assert stats.null_count == 2
        assert stats.n_distinct == 3  # 1, 3, 5

    def test_top_values_ordered(self):
        table = Table.from_columns(
            "t", {"k": ["a"] * 5 + ["b"] * 2 + ["c"], "v": [1.0] * 8}
        )
        stats = compute_column_stats(table, "k")
        assert stats.top_values[0] == ("a", 5)
        assert stats.top_values[1] == ("b", 2)

    def test_distinct_fraction(self, sales_table):
        stats = compute_column_stats(sales_table, "store")
        assert stats.distinct_fraction == pytest.approx(4 / 12)

    def test_table_stats(self, sales_table):
        stats = compute_table_stats(sales_table)
        assert stats.n_rows == 12
        assert set(stats.columns) == set(sales_table.schema.names)
        assert stats["store"].n_distinct == 4


class TestAssociations:
    def test_cramers_v_perfect_dependency(self):
        a = np.array(["x", "y", "z"] * 40, dtype=object)
        b = np.array([f"copy_{v}" for v in a], dtype=object)
        assert cramers_v(a, b) > 0.95

    def test_cramers_v_independent(self):
        rng = np.random.default_rng(0)
        a = rng.choice(["x", "y", "z"], 600).astype(object)
        b = rng.choice(["p", "q"], 600).astype(object)
        assert cramers_v(a, b) < 0.2

    def test_cramers_v_constant_column_zero(self):
        a = np.array(["x"] * 10, dtype=object)
        b = np.array(["p", "q"] * 5, dtype=object)
        assert cramers_v(a, b) == 0.0

    def test_cramers_v_length_mismatch(self):
        with pytest.raises(ValueError):
            cramers_v(np.array(["a"]), np.array(["a", "b"]))

    def test_pearson_perfect(self):
        a = np.arange(50, dtype=np.float64)
        assert pearson_correlation(a, 2 * a + 1) == pytest.approx(1.0)

    def test_pearson_handles_nan(self):
        a = np.array([1.0, 2.0, np.nan, 4.0])
        b = np.array([2.0, 4.0, 6.0, 8.0])
        assert pearson_correlation(a, b) == pytest.approx(1.0)

    def test_pearson_constant_is_zero(self):
        assert pearson_correlation(np.ones(10), np.arange(10.0)) == 0.0


class TestAccessLog:
    def test_record_query_extracts_columns(self, sales_table):
        log = AccessLog()
        log.record_query(RowSelectQuery("sales", col("product") == "x"))
        log.record_query(
            AggregateQuery(
                "sales",
                ("store",),
                (Aggregate("sum", "amount"),),
                col("product") == "x",
            )
        )
        assert log.count("sales", "product") == 2.0
        assert log.count("sales", "store") == 1.0
        assert log.count("sales", "amount") == 1.0
        assert log.queries_recorded == 2

    def test_frequency_relative_to_peak(self):
        log = AccessLog()
        log.record_columns("t", {"a"})
        log.record_columns("t", {"a"})
        log.record_columns("t", {"b"})
        assert log.frequency("t", "a") == pytest.approx(1.0)
        assert log.frequency("t", "b") == pytest.approx(0.5)
        assert log.frequency("t", "never") == 0.0

    def test_cold_start_frequency_is_one(self):
        log = AccessLog()
        assert log.frequency("unseen_table", "anything") == 1.0

    def test_decay(self):
        log = AccessLog(decay=0.5)
        log.record_columns("t", {"a"})
        log.record_columns("t", {"b"})  # a decays to 0.5
        assert log.count("t", "a") == pytest.approx(0.5)
        assert log.count("t", "b") == pytest.approx(1.0)

    def test_invalid_decay(self):
        with pytest.raises(ConfigError):
            AccessLog(decay=0.0)

    def test_most_accessed(self):
        log = AccessLog()
        for _ in range(3):
            log.record_columns("t", {"hot"})
        log.record_columns("t", {"cold"})
        assert log.most_accessed("t", k=1) == [("hot", 3.0)]


class TestCollector:
    def test_collect_and_cache(self, sales_table):
        collector = MetadataCollector()
        first = collector.collect(sales_table)
        second = collector.collect(sales_table)
        assert first is second  # cached
        refreshed = collector.collect(sales_table, refresh=True)
        assert refreshed is not first

    def test_invalidate(self, sales_table):
        collector = MetadataCollector()
        first = collector.collect(sales_table)
        collector.invalidate(sales_table.name)
        assert collector.collect(sales_table) is not first

    def test_dimension_associations_present(self, sales_table):
        metadata = MetadataCollector().collect(sales_table)
        value = metadata.association("store", "product")
        assert 0.0 <= value <= 1.0

    def test_association_unknown_pair_zero(self, sales_table):
        metadata = MetadataCollector().collect(sales_table)
        assert metadata.association("store", "no_such") == 0.0

    def test_association_sampling_bounded(self):
        table = Table.from_columns(
            "big",
            {
                "a": [f"v{i % 7}" for i in range(5000)],
                "b": [f"w{i % 3}" for i in range(5000)],
                "m": [float(i) for i in range(5000)],
            },
            roles={
                "a": AttributeRole.DIMENSION,
                "b": AttributeRole.DIMENSION,
                "m": AttributeRole.MEASURE,
            },
        )
        collector = MetadataCollector(association_sample_rows=500)
        metadata = collector.collect(table)
        assert frozenset(("a", "b")) in metadata.dimension_associations
