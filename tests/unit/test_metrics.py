"""Unit tests: distance metrics, normalization, and alignment."""

import numpy as np
import pytest
from scipy import stats as scipy_stats

from repro.metrics import (
    ChiSquareDistance,
    EarthMoversDistance,
    EuclideanDistance,
    JensenShannonDistance,
    KLDivergence,
    MaxDeviationDistance,
    NormalizationPolicy,
    TotalVariationDistance,
    align_series,
    available_metrics,
    get_metric,
    normalize_distribution,
    register_metric,
)
from repro.metrics.base import DistanceMetric
from repro.util.errors import MetricError

UNIFORM4 = np.full(4, 0.25)
POINT4 = np.array([1.0, 0.0, 0.0, 0.0])


class TestNormalization:
    def test_sums_to_one(self):
        result = normalize_distribution([1.0, 2.0, 7.0])
        assert result.sum() == pytest.approx(1.0)
        assert result[2] == pytest.approx(0.7)

    def test_nan_becomes_zero_mass(self):
        result = normalize_distribution([1.0, np.nan, 1.0])
        assert result[1] == 0.0
        assert result.sum() == pytest.approx(1.0)

    def test_all_zero_gives_uniform(self):
        result = normalize_distribution([0.0, 0.0])
        assert list(result) == [0.5, 0.5]

    def test_negative_strict_raises(self):
        with pytest.raises(MetricError, match="negative"):
            normalize_distribution([-1.0, 2.0], NormalizationPolicy.STRICT)

    def test_negative_shift(self):
        result = normalize_distribution([-1.0, 1.0], NormalizationPolicy.SHIFT)
        assert list(result) == [0.0, 1.0]

    def test_negative_absolute(self):
        result = normalize_distribution([-1.0, 1.0], NormalizationPolicy.ABSOLUTE)
        assert list(result) == [0.5, 0.5]

    def test_empty_rejected(self):
        with pytest.raises(MetricError, match="empty"):
            normalize_distribution([])

    def test_2d_rejected(self):
        with pytest.raises(MetricError, match="1-D"):
            normalize_distribution(np.ones((2, 2)))


class TestAlignment:
    def test_union_and_fill(self):
        keys, a, b = align_series(["x", "y"], [1.0, 2.0], ["y", "z"], [5.0, 7.0])
        assert keys == ["x", "y", "z"]
        assert list(a) == [1.0, 2.0, 0.0]
        assert list(b) == [0.0, 5.0, 7.0]

    def test_custom_fill(self):
        _keys, a, _b = align_series(["x"], [1.0], ["y"], [2.0], fill=np.nan)
        assert np.isnan(a[1])

    def test_numpy_scalar_keys_canonicalized(self):
        keys, a, b = align_series(
            list(np.array(["x", "y"], dtype=object)),
            [1.0, 2.0],
            ["y"],
            [3.0],
        )
        assert keys == ["x", "y"]
        assert list(b) == [0.0, 3.0]

    def test_duplicate_keys_rejected(self):
        with pytest.raises(MetricError, match="duplicate"):
            align_series(["x", "x"], [1.0, 2.0], ["y"], [1.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(MetricError, match="keys but"):
            align_series(["x"], [1.0, 2.0], ["y"], [1.0])

    def test_mixed_type_keys_sort_deterministically(self):
        keys, _a, _b = align_series([1, "a"], [1.0, 1.0], [2], [1.0])
        assert keys == sorted(keys, key=lambda k: (type(k).__name__, k))


class TestSharedValidation:
    @pytest.fixture
    def metric(self):
        return EuclideanDistance()

    def test_length_mismatch(self, metric):
        with pytest.raises(MetricError, match="length"):
            metric.distance(UNIFORM4, np.full(3, 1 / 3))

    def test_not_normalized(self, metric):
        with pytest.raises(MetricError, match="sums to"):
            metric.distance(np.array([1.0, 1.0]), np.array([0.5, 0.5]))

    def test_negative_mass(self, metric):
        with pytest.raises(MetricError, match="non-negative"):
            metric.distance(np.array([-0.5, 1.5]), np.array([0.5, 0.5]))

    def test_empty(self, metric):
        with pytest.raises(MetricError, match="non-empty"):
            metric.distance(np.array([]), np.array([]))


class TestMetricValues:
    def test_euclidean_known_value(self):
        assert EuclideanDistance().distance(POINT4, UNIFORM4) == pytest.approx(
            np.sqrt(0.75**2 + 3 * 0.25**2)
        )

    def test_emd_matches_scipy_wasserstein(self):
        rng = np.random.default_rng(3)
        for _ in range(5):
            p = rng.dirichlet(np.ones(6))
            q = rng.dirichlet(np.ones(6))
            ours = EarthMoversDistance(normalized=False).distance(p, q)
            positions = np.arange(6)
            reference = scipy_stats.wasserstein_distance(
                positions, positions, p, q
            )
            assert ours == pytest.approx(reference, rel=1e-9)

    def test_emd_normalized_bounded(self):
        extreme_p = np.array([1.0, 0.0, 0.0, 0.0, 0.0])
        extreme_q = np.array([0.0, 0.0, 0.0, 0.0, 1.0])
        assert EarthMoversDistance().distance(extreme_p, extreme_q) == pytest.approx(1.0)

    def test_kl_zero_for_identical(self):
        assert KLDivergence().distance(UNIFORM4, UNIFORM4) == pytest.approx(0.0, abs=1e-12)

    def test_kl_finite_on_disjoint_support(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        value = KLDivergence().distance(p, q)
        assert np.isfinite(value) and value > 0

    def test_kl_smoothing_preserves_order(self):
        near = np.array([0.3, 0.7])
        far = np.array([0.9, 0.1])
        reference = np.array([0.35, 0.65])
        for epsilon in (1e-12, 1e-9, 1e-6, 1e-3):
            metric = KLDivergence(epsilon=epsilon)
            assert metric.distance(far, reference) > metric.distance(near, reference)

    def test_kl_epsilon_must_be_positive(self):
        with pytest.raises(MetricError):
            KLDivergence(epsilon=0.0)

    def test_js_bounded_zero_one(self):
        assert JensenShannonDistance().distance(
            np.array([1.0, 0.0]), np.array([0.0, 1.0])
        ) == pytest.approx(1.0)
        assert JensenShannonDistance().distance(UNIFORM4, UNIFORM4) == pytest.approx(0.0)

    def test_js_symmetric(self):
        metric = JensenShannonDistance()
        assert metric.distance(POINT4, UNIFORM4) == pytest.approx(
            metric.distance(UNIFORM4, POINT4)
        )

    def test_total_variation_half_l1(self):
        metric = TotalVariationDistance()
        assert metric.distance(POINT4, UNIFORM4) == pytest.approx(0.75)

    def test_chisquare_bounded(self):
        value = ChiSquareDistance().distance(np.array([1.0, 0.0]), np.array([0.0, 1.0]))
        assert value == pytest.approx(1.0)

    def test_maxdev_and_argmax(self):
        metric = MaxDeviationDistance()
        assert metric.distance(POINT4, UNIFORM4) == pytest.approx(0.75)
        assert MaxDeviationDistance.argmax_group(POINT4, UNIFORM4) == 0


class TestRegistry:
    def test_paper_metrics_present(self):
        names = available_metrics()
        for required in ("emd", "euclidean", "kl", "js"):
            assert required in names

    def test_get_by_name_and_instance(self):
        metric = get_metric("js")
        assert isinstance(metric, JensenShannonDistance)
        assert get_metric(metric) is metric

    def test_unknown_name(self):
        with pytest.raises(MetricError, match="available"):
            get_metric("manhattan_project")

    def test_register_custom_metric(self):
        class Half(DistanceMetric):
            name = "half_tv_test_only"

            def _distance(self, p, q):
                return 0.25 * float(np.sum(np.abs(p - q)))

        register_metric(Half())
        assert get_metric("half_tv_test_only").distance(POINT4, UNIFORM4) > 0
        with pytest.raises(MetricError, match="already registered"):
            register_metric(Half())

    def test_register_unnamed_rejected(self):
        class NoName(DistanceMetric):
            pass

        with pytest.raises(MetricError, match="no name"):
            register_metric(NoName())
