"""Unit tests: Hellinger distance, significance testing, log persistence."""

import numpy as np
import pytest

from repro.metadata.access_log import AccessLog
from repro.metrics import HellingerDistance, get_metric, view_significance
from repro.metrics.significance import SignificanceResult
from repro.model.view import ScoredView, ViewSpec
from repro.util.errors import MetricError


class TestHellinger:
    def test_registered(self):
        assert isinstance(get_metric("hellinger"), HellingerDistance)

    def test_known_values(self):
        metric = HellingerDistance()
        uniform = np.full(4, 0.25)
        assert metric.distance(uniform, uniform) == pytest.approx(0.0)
        disjoint_p = np.array([1.0, 0.0])
        disjoint_q = np.array([0.0, 1.0])
        assert metric.distance(disjoint_p, disjoint_q) == pytest.approx(1.0)

    def test_bounded_and_symmetric(self):
        rng = np.random.default_rng(5)
        metric = HellingerDistance()
        for _ in range(20):
            p = rng.dirichlet(np.ones(6))
            q = rng.dirichlet(np.ones(6))
            d = metric.distance(p, q)
            assert 0.0 <= d <= 1.0
            assert d == pytest.approx(metric.distance(q, p))

    def test_relation_to_bhattacharyya(self):
        p = np.array([0.5, 0.5])
        q = np.array([0.9, 0.1])
        coefficient = np.sum(np.sqrt(p * q))
        expected = np.sqrt(1 - coefficient)
        assert HellingerDistance().distance(p, q) == pytest.approx(expected)

    def test_usable_by_incremental(self, sales_table):
        from repro.core.incremental import IncrementalRecommender

        IncrementalRecommender(sales_table, metric="hellinger")  # no raise


def make_view(target_values, comparison_distribution):
    target = np.asarray(target_values, dtype=float)
    comparison = np.asarray(comparison_distribution, dtype=float)
    total = target.sum()
    return ScoredView(
        spec=ViewSpec("d", None, "count"),
        utility=0.5,
        groups=[f"g{i}" for i in range(len(target))],
        target_distribution=target / total if total else target,
        comparison_distribution=comparison,
        target_values=target,
        comparison_values=comparison * 100,
    )


class TestSignificance:
    def test_matching_distribution_not_significant(self):
        view = make_view([25, 25, 25, 25], [0.25, 0.25, 0.25, 0.25])
        result = view_significance(view)
        assert result.p_value > 0.9
        assert not result.significant()

    def test_strong_deviation_significant(self):
        view = make_view([97, 1, 1, 1], [0.25, 0.25, 0.25, 0.25])
        result = view_significance(view)
        assert result.p_value < 1e-6
        assert result.significant()
        assert result.chi2 > 100

    def test_small_counts_not_significant(self):
        # The same *proportional* deviation with tiny counts is noise.
        view = make_view([3, 1], [0.5, 0.5])
        assert not view_significance(view).significant()

    def test_n_rows_override(self):
        view = make_view([0.6, 0.4], [0.5, 0.5])  # proportions, not counts
        weak = view_significance(view, n_target_rows=20)
        strong = view_significance(view, n_target_rows=20_000)
        assert not weak.significant()
        assert strong.significant()

    def test_sparse_cells_flagged(self):
        view = make_view([9, 1], [0.9, 0.1])
        result = view_significance(view)
        assert result.sparse_cells >= 1

    def test_dof(self):
        view = make_view([10, 10, 10], [1 / 3] * 3)
        assert view_significance(view).dof == 2

    def test_validation(self):
        view = make_view([1.0], [1.0])
        empty = ScoredView(
            spec=ViewSpec("d", None, "count"),
            utility=0.0,
            groups=[],
            target_distribution=np.empty(0),
            comparison_distribution=np.empty(0),
        )
        with pytest.raises(MetricError, match="empty"):
            view_significance(empty)
        negative = make_view([5.0, 5.0], [0.5, 0.5])
        object.__setattr__  # (ScoredView is mutable; adjust directly)
        negative.target_values = np.array([-1.0, 2.0])
        with pytest.raises(MetricError, match="non-negative"):
            view_significance(negative)

    def test_result_dataclass(self):
        result = SignificanceResult(chi2=1.0, p_value=0.3, dof=1, sparse_cells=0)
        assert not result.significant(alpha=0.05)
        assert result.significant(alpha=0.5)


class TestAccessLogPersistence:
    def test_roundtrip(self, tmp_path):
        log = AccessLog(decay=0.9)
        log.record_columns("sales", {"store", "amount"})
        log.record_columns("sales", {"store"})
        log.record_columns("orders", {"region"})
        path = tmp_path / "log.json"
        log.save(path)
        loaded = AccessLog.load(path)
        assert loaded.decay == 0.9
        assert loaded.queries_recorded == 3
        assert loaded.count("sales", "store") == pytest.approx(
            log.count("sales", "store")
        )
        assert loaded.most_accessed("orders") == log.most_accessed("orders")

    def test_loaded_log_keeps_learning(self, tmp_path):
        log = AccessLog()
        log.record_columns("t", {"a"})
        path = tmp_path / "log.json"
        log.save(path)
        loaded = AccessLog.load(path)
        loaded.record_columns("t", {"a"})
        assert loaded.count("t", "a") == 2.0
