"""Unit tests: the multi-attribute view extension (§2 generalization)."""

import math

import numpy as np
import pytest

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.multiview import (
    MultiViewRecommender,
    MultiViewSpec,
    enumerate_multi_views,
)
from repro.db.aggregates import Aggregate
from repro.db.expressions import col
from repro.db.query import AggregateQuery, RowSelectQuery
from repro.util.errors import ConfigError, QueryError


class TestSpec:
    def test_label(self):
        spec = MultiViewSpec(("region", "month"), "amount", "sum")
        assert spec.label == "sum(amount) by (region, month)"

    def test_needs_two_dimensions(self):
        with pytest.raises(QueryError, match=">= 2"):
            MultiViewSpec(("region",), "amount", "sum")

    def test_duplicate_dimensions_rejected(self):
        with pytest.raises(QueryError, match="duplicate"):
            MultiViewSpec(("region", "region"), "amount", "sum")

    def test_count_without_measure(self):
        spec = MultiViewSpec(("a", "b"), None, "count")
        assert spec.aggregate.alias == "count(*)"

    def test_non_count_needs_measure(self):
        with pytest.raises(QueryError):
            MultiViewSpec(("a", "b"), None, "sum")

    def test_ordering(self):
        first = MultiViewSpec(("a", "b"), "m", "avg")
        second = MultiViewSpec(("a", "c"), "m", "avg")
        assert first < second


class TestEnumeration:
    def test_pair_combinations(self, sales_table):
        views = enumerate_multi_views(
            sales_table.schema, n_dimensions=2, functions=("sum",),
            include_count=False,
        )
        # C(3,2)=3 dimension pairs x 2 measures x 1 function.
        assert len(views) == 6
        dims = {view.dimensions for view in views}
        assert dims == {
            ("store", "product"),
            ("store", "month"),
            ("product", "month"),
        }

    def test_triples(self, sales_table):
        views = enumerate_multi_views(
            sales_table.schema, n_dimensions=3, functions=("sum",),
            include_count=True,
        )
        assert len(views) == 3  # 1 triple x (2 measures + count)

    def test_validation(self, sales_table):
        with pytest.raises(ConfigError):
            enumerate_multi_views(sales_table.schema, n_dimensions=1)


class TestRecommendation:
    def test_utilities_match_manual_computation(self, memory_backend, sales_table):
        """Cross-check one multi-view utility against a direct computation."""
        from repro.metrics.normalize import align_series, normalize_distribution
        from repro.metrics.registry import get_metric

        recommender = MultiViewRecommender(memory_backend, metric="js")
        query = RowSelectQuery("sales", col("product") == "Laserwave")
        top = recommender.recommend(
            query, k=10, n_dimensions=2, functions=("sum",), include_count=False
        )
        # Manual: sum(amount) by (store, month) target vs comparison.
        target = memory_backend.execute(
            AggregateQuery(
                "sales", ("store", "month"), (Aggregate("sum", "amount"),),
                col("product") == "Laserwave",
            )
        )
        comparison = memory_backend.execute(
            AggregateQuery(
                "sales", ("store", "month"), (Aggregate("sum", "amount"),)
            )
        )
        t_keys = list(zip(target.column("store"), target.column("month")))
        t_keys = [(str(a), int(b)) for a, b in t_keys]
        c_keys = list(zip(comparison.column("store"), comparison.column("month")))
        c_keys = [(str(a), int(b)) for a, b in c_keys]
        _groups, t, c = align_series(
            t_keys, target.column("sum(amount)"), c_keys,
            comparison.column("sum(amount)"),
        )
        expected = get_metric("js").distance(
            normalize_distribution(t), normalize_distribution(c)
        )
        view = next(
            v for v in top
            if v.spec.dimensions == ("store", "month") and v.spec.func == "sum"
            and v.spec.measure == "amount"
        )
        assert view.utility == pytest.approx(expected, rel=1e-9)

    def test_predicate_dimensions_excluded(self, memory_backend):
        recommender = MultiViewRecommender(memory_backend)
        query = RowSelectQuery("sales", col("product") == "Laserwave")
        top = recommender.recommend(query, k=20, n_dimensions=2)
        for view in top:
            assert "product" not in view.spec.dimensions

    def test_groups_are_tuples(self, memory_backend):
        recommender = MultiViewRecommender(memory_backend)
        query = RowSelectQuery("sales", col("product") == "Laserwave")
        top = recommender.recommend(query, k=1, n_dimensions=2)
        assert top
        assert all(isinstance(group, tuple) for group in top[0].groups)

    def test_distributions_valid(self, memory_backend):
        recommender = MultiViewRecommender(memory_backend)
        query = RowSelectQuery("sales", col("amount") > 50)
        for view in recommender.recommend(query, k=5, n_dimensions=2):
            assert view.target_distribution.sum() == pytest.approx(1.0)
            assert view.comparison_distribution.sum() == pytest.approx(1.0)
            assert math.isfinite(view.utility)

    def test_works_on_sqlite(self, sqlite_backend, memory_backend):
        query = RowSelectQuery("sales", col("product") == "Laserwave")
        lite = MultiViewRecommender(sqlite_backend).recommend(
            query, k=3, n_dimensions=2
        )
        mem = MultiViewRecommender(memory_backend).recommend(
            query, k=3, n_dimensions=2
        )
        assert [v.spec for v in lite] == [v.spec for v in mem]
        for a, b in zip(lite, mem):
            assert a.utility == pytest.approx(b.utility, rel=1e-9)

    def test_k_and_ties_deterministic(self, memory_backend):
        recommender = MultiViewRecommender(memory_backend)
        query = RowSelectQuery("sales", col("product") == "Laserwave")
        first = recommender.recommend(query, k=4, n_dimensions=2)
        second = recommender.recommend(query, k=4, n_dimensions=2)
        assert [v.spec for v in first] == [v.spec for v in second]
