"""Unit tests: bin-packing of group-by dimensions."""

import math

import pytest

from repro.optimizer.binpack import (
    branch_and_bound_pack,
    first_fit_decreasing,
    pack_dimensions,
)
from repro.util.errors import ConfigError


def assert_valid_packing(packed, weights, capacity):
    """Every item exactly once; no bin over capacity (oversized = alone)."""
    seen = [name for bin_members in packed.bins for name in bin_members]
    assert sorted(seen) == sorted(weights)
    for bin_members in packed.bins:
        load = sum(weights[name] for name in bin_members)
        if len(bin_members) > 1:
            assert load <= capacity + 1e-9


class TestFFD:
    def test_simple_fit(self):
        weights = {"a": 4.0, "b": 4.0, "c": 2.0}
        packed = first_fit_decreasing(weights, capacity=6.0)
        assert_valid_packing(packed, weights, 6.0)
        assert packed.n_bins == 2  # (4,2) + (4)

    def test_oversized_gets_own_bin(self):
        weights = {"huge": 100.0, "small": 1.0}
        packed = first_fit_decreasing(weights, capacity=10.0)
        assert ("huge",) in packed.bins

    def test_max_items_per_bin(self):
        weights = {f"i{k}": 1.0 for k in range(6)}
        packed = first_fit_decreasing(weights, capacity=100.0, max_items_per_bin=2)
        assert packed.n_bins == 3
        assert all(len(b) <= 2 for b in packed.bins)

    def test_invalid_capacity(self):
        with pytest.raises(ConfigError):
            first_fit_decreasing({"a": 1.0}, capacity=0.0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError):
            first_fit_decreasing({"a": -1.0}, capacity=5.0)

    def test_empty_input(self):
        packed = first_fit_decreasing({}, capacity=5.0)
        assert packed.bins == ()


class TestBranchAndBound:
    def test_finds_optimum_where_ffd_fails(self):
        # Classic FFD-suboptimal instance: capacity 10,
        # items 6,5,5,4 -> FFD: (6,4), (5,5) = 2 bins. Make a harder one:
        # capacity 12, items 7,6,5,5,4,3 -> optimal 3: (7,5),(6,3)+? ...
        # Use a known instance: capacity 10, items 7,6,4,3 ->
        # FFD: (7,3),(6,4) = 2 which is optimal. Use asymmetric:
        weights = {"a": 5.0, "b": 5.0, "c": 4.0, "d": 3.0, "e": 3.0}
        capacity = 10.0
        exact = branch_and_bound_pack(weights, capacity)
        assert_valid_packing(exact, weights, capacity)
        assert exact.n_bins == 2  # (5,5), (4,3,3)
        assert exact.optimal

    def test_never_worse_than_ffd(self):
        weights = {f"i{k}": float(1 + (k * 7) % 9) for k in range(10)}
        capacity = 12.0
        ffd = first_fit_decreasing(weights, capacity)
        exact = branch_and_bound_pack(weights, capacity)
        assert exact.n_bins <= ffd.n_bins
        assert_valid_packing(exact, weights, capacity)

    def test_lower_bound_respected(self):
        weights = {f"i{k}": 3.0 for k in range(7)}
        exact = branch_and_bound_pack(weights, capacity=9.0)
        assert exact.n_bins == math.ceil(21.0 / 9.0)

    def test_oversized_isolated(self):
        weights = {"big": 50.0, "a": 2.0, "b": 2.0}
        exact = branch_and_bound_pack(weights, capacity=5.0)
        assert ("big",) in exact.bins

    def test_node_limit_falls_back_gracefully(self):
        # 12 items of weight 6, capacity 10: fractional bound says 8 bins
        # but only one item fits per bin (12 needed), so the bound never
        # proves optimality and the search must exhaust -- guaranteeing the
        # tiny node limit trips.
        weights = {f"i{k}": 6.0 for k in range(12)}
        packed = branch_and_bound_pack(weights, capacity=10.0, node_limit=10)
        assert_valid_packing(packed, weights, 10.0)
        assert not packed.optimal


class TestPackDimensions:
    def test_log_transform(self):
        # Budget 1000 cells: 10*10*10 fits exactly; 10*10*10*10 does not.
        cardinalities = {f"d{k}": 10 for k in range(4)}
        packed = pack_dimensions(cardinalities, budget_cells=1000)
        assert packed.n_bins == 2
        for bin_members in packed.bins:
            product = math.prod(cardinalities[name] for name in bin_members)
            assert product <= 1000

    def test_exact_solver_below_threshold(self):
        packed = pack_dimensions({"a": 10, "b": 10}, budget_cells=200)
        assert packed.solver == "branch_and_bound"

    def test_ffd_above_threshold(self):
        cardinalities = {f"d{k}": 10 for k in range(20)}
        packed = pack_dimensions(cardinalities, budget_cells=1000, exact_threshold=5)
        assert packed.solver == "ffd"

    def test_dimension_larger_than_budget_isolated(self):
        packed = pack_dimensions({"huge": 10_000, "small": 4}, budget_cells=100)
        assert ("huge",) in packed.bins

    def test_budget_validation(self):
        with pytest.raises(ConfigError):
            pack_dimensions({"a": 2}, budget_cells=1)

    def test_max_dims_per_bin(self):
        cardinalities = {f"d{k}": 2 for k in range(8)}
        packed = pack_dimensions(
            cardinalities, budget_cells=10**9, max_dims_per_bin=3
        )
        assert all(len(b) <= 3 for b in packed.bins)
