"""Unit tests: aggregate decomposition and partition merging."""

import numpy as np
import pytest

from repro.db.aggregates import Aggregate
from repro.optimizer.combine import (
    dedup_aggregates,
    merge_aux_arrays,
    merge_fill_value,
    merge_spec,
)
from repro.util.errors import QueryError


class TestMergeSpec:
    def test_sum_passthrough(self):
        spec = merge_spec(Aggregate("sum", "x"))
        assert [a.alias for a in spec.aux] == ["sum(x)"]
        values = {"sum(x)": np.array([1.0, 2.0])}
        assert list(spec.reconstruct(values)) == [1.0, 2.0]

    def test_avg_decomposition(self):
        spec = merge_spec(Aggregate("avg", "x"))
        aliases = [a.alias for a in spec.aux]
        assert aliases == ["sum(x)", "countv(x)"]
        values = {
            "sum(x)": np.array([10.0, 0.0]),
            "countv(x)": np.array([4.0, 0.0]),
        }
        reconstructed = spec.reconstruct(values)
        assert reconstructed[0] == pytest.approx(2.5)
        assert np.isnan(reconstructed[1])  # empty group -> NaN like SQL AVG

    def test_var_decomposition(self):
        spec = merge_spec(Aggregate("var", "x"))
        aliases = {a.alias for a in spec.aux}
        assert aliases == {"sum(x)", "sumsq(x)", "countv(x)"}
        # values 1, 3 -> var 1.0
        values = {
            "sum(x)": np.array([4.0]),
            "sumsq(x)": np.array([10.0]),
            "countv(x)": np.array([2.0]),
        }
        assert spec.reconstruct(values)[0] == pytest.approx(1.0)

    def test_std_is_sqrt(self):
        spec = merge_spec(Aggregate("std", "x"))
        values = {
            "sum(x)": np.array([4.0]),
            "sumsq(x)": np.array([10.0]),
            "countv(x)": np.array([2.0]),
        }
        assert spec.reconstruct(values)[0] == pytest.approx(1.0)

    def test_var_cancellation_clamped(self):
        spec = merge_spec(Aggregate("var", "x"))
        values = {
            "sum(x)": np.array([2e9]),
            "sumsq(x)": np.array([2e18]),
            "countv(x)": np.array([2.0]),
        }
        assert spec.reconstruct(values)[0] >= 0.0

    def test_count_star(self):
        spec = merge_spec(Aggregate("count"))
        assert spec.aux[0].alias == "count(*)"


class TestMergeOperations:
    def test_additive_merge(self):
        aggregate = Aggregate("sum", "x")
        merged = merge_aux_arrays(
            aggregate, np.array([1.0, 2.0]), np.array([10.0, 20.0])
        )
        assert list(merged) == [11.0, 22.0]
        assert merge_fill_value(aggregate) == 0.0

    def test_min_merge_ignores_nan_fill(self):
        aggregate = Aggregate("min", "x")
        merged = merge_aux_arrays(
            aggregate, np.array([np.nan, 5.0]), np.array([3.0, np.nan])
        )
        assert merged[0] == 3.0 and merged[1] == 5.0
        assert np.isnan(merge_fill_value(aggregate))

    def test_max_merge(self):
        aggregate = Aggregate("max", "x")
        merged = merge_aux_arrays(aggregate, np.array([1.0]), np.array([9.0]))
        assert merged[0] == 9.0

    def test_non_mergeable_rejected(self):
        with pytest.raises(QueryError, match="not mergeable"):
            merge_aux_arrays(Aggregate("avg", "x"), np.array([1.0]), np.array([1.0]))
        with pytest.raises(QueryError, match="not mergeable"):
            merge_fill_value(Aggregate("var", "x"))


class TestDedup:
    def test_shared_aux_deduped(self):
        # avg(x) and var(x) share sum(x) and countv(x).
        collected = []
        for func in ("avg", "var"):
            collected.extend(merge_spec(Aggregate(func, "x")).aux)
        unique = dedup_aggregates(collected)
        aliases = [a.alias for a in unique]
        assert aliases == ["sum(x)", "countv(x)", "sumsq(x)"]

    def test_order_preserved(self):
        aggregates = [Aggregate("sum", "b"), Aggregate("sum", "a"), Aggregate("sum", "b")]
        assert [a.alias for a in dedup_aggregates(aggregates)] == [
            "sum(b)",
            "sum(a)",
        ]
