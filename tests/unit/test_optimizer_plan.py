"""Unit tests: the planner, execution steps, extraction, and cost model."""

import numpy as np
import pytest

from repro.backends.base import BackendCapabilities
from repro.db.expressions import col
from repro.db.query import AggregateQuery, GroupingSetsQuery
from repro.model.view import ViewSpec
from repro.optimizer.cost import estimate_plan_cost
from repro.optimizer.extract import FLAG_NAME, marginalize
from repro.optimizer.plan import (
    FlagStep,
    GroupByCombining,
    MultiDimStep,
    Planner,
    PlannerConfig,
    RollupStep,
    SeparateStep,
    ViewGroup,
)
from repro.util.errors import ConfigError

CAPS_GS = BackendCapabilities(grouping_sets=True, parallel_queries=True, native_var_std=True)
CAPS_NO_GS = BackendCapabilities(grouping_sets=False, parallel_queries=True, native_var_std=False)

VIEWS = [
    ViewSpec("store", "amount", "sum"),
    ViewSpec("store", "amount", "avg"),
    ViewSpec("product", "amount", "sum"),
    ViewSpec("month", None, "count"),
]
CARDINALITIES = {"store": 4, "product": 2, "month": 4}


def plan_with(**config_overrides):
    config = PlannerConfig(**config_overrides)
    return Planner(config).plan(
        VIEWS, "sales", col("product") == "Laserwave", CARDINALITIES, CAPS_GS
    )


class TestViewGroup:
    def test_aux_aggregates_deduped(self):
        group = ViewGroup(
            "store",
            (ViewSpec("store", "amount", "sum"), ViewSpec("store", "amount", "avg")),
        )
        aliases = [a.alias for a in group.aux_aggregates]
        assert aliases == ["sum(amount)", "countv(amount)"]

    def test_direct_aggregates(self):
        group = ViewGroup(
            "store",
            (ViewSpec("store", "amount", "sum"), ViewSpec("store", "amount", "avg")),
        )
        assert [a.alias for a in group.direct_aggregates] == [
            "sum(amount)",
            "avg(amount)",
        ]

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ConfigError, match="does not group by"):
            ViewGroup("store", (ViewSpec("month", None, "count"),))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            ViewGroup("store", ())


class TestPlannerShapes:
    def test_basic_no_combining(self):
        plan = plan_with(
            combine_target_comparison=False,
            combine_aggregates=False,
            groupby_combining=GroupByCombining.NONE,
        )
        assert all(isinstance(s, SeparateStep) for s in plan.steps)
        assert len(plan.steps) == len(VIEWS)  # one step per view
        assert plan.total_queries() == 2 * len(VIEWS)

    def test_flag_combining_halves_queries(self):
        plan = plan_with(
            combine_target_comparison=True,
            combine_aggregates=False,
            groupby_combining=GroupByCombining.NONE,
        )
        assert all(isinstance(s, FlagStep) for s in plan.steps)
        assert plan.total_queries() == len(VIEWS)

    def test_aggregate_combining_groups_by_dimension(self):
        plan = plan_with(
            combine_target_comparison=True,
            combine_aggregates=True,
            groupby_combining=GroupByCombining.NONE,
        )
        assert len(plan.steps) == 3  # store, product, month
        assert plan.total_queries() == 3

    def test_grouping_sets_single_query(self):
        plan = plan_with(
            combine_target_comparison=True,
            combine_aggregates=True,
            groupby_combining=GroupByCombining.GROUPING_SETS,
        )
        assert len(plan.steps) == 1
        assert isinstance(plan.steps[0], MultiDimStep)
        assert plan.total_queries() == 1

    def test_grouping_sets_without_flag_two_queries(self):
        plan = plan_with(
            combine_target_comparison=False,
            groupby_combining=GroupByCombining.GROUPING_SETS,
        )
        assert plan.total_queries() == 2

    def test_rollup_respects_budget(self):
        plan = plan_with(
            combine_target_comparison=True,
            groupby_combining=GroupByCombining.ROLLUP,
            memory_budget_cells=1000,
        )
        # All three dims (4*2*4=32 cells * 2 flag = 64) fit one rollup.
        assert len(plan.steps) == 1
        assert isinstance(plan.steps[0], RollupStep)

    def test_rollup_splits_when_budget_tight(self):
        plan = plan_with(
            combine_target_comparison=True,
            groupby_combining=GroupByCombining.ROLLUP,
            memory_budget_cells=20,  # /2 for flag = 10 cells per query
        )
        # 4*2=8 fits; 4*4=16 does not; expect >= 2 steps.
        assert len(plan.steps) >= 2
        for step in plan.steps:
            if isinstance(step, RollupStep):
                product = 1
                for group in step.groups:
                    product *= CARDINALITIES[group.dimension]
                assert 2 * product <= 20

    def test_auto_resolves_by_capability(self):
        config = PlannerConfig(groupby_combining=GroupByCombining.AUTO)
        plan_gs = Planner(config).plan(VIEWS, "s", None, CARDINALITIES, CAPS_GS)
        plan_rollup = Planner(config).plan(VIEWS, "s", None, CARDINALITIES, CAPS_NO_GS)
        assert any(isinstance(s, MultiDimStep) for s in plan_gs.steps)
        assert any(
            isinstance(s, (RollupStep, FlagStep)) for s in plan_rollup.steps
        )

    def test_max_dims_per_query_chunks(self):
        plan = plan_with(
            groupby_combining=GroupByCombining.GROUPING_SETS,
            max_dims_per_query=2,
        )
        assert len(plan.steps) == 2  # 3 dims in chunks of 2

    def test_unknown_cardinality_treated_oversized(self):
        views = [ViewSpec("mystery", "amount", "sum")] + VIEWS
        config = PlannerConfig(groupby_combining=GroupByCombining.ROLLUP)
        plan = Planner(config).plan(views, "s", None, CARDINALITIES, CAPS_GS)
        mystery_steps = [
            s for s in plan.steps
            if isinstance(s, (FlagStep, SeparateStep))
            and s.views[0].dimension == "mystery"
        ]
        assert len(mystery_steps) == 1

    def test_empty_views_empty_plan(self):
        plan = Planner().plan([], "s", None, {}, CAPS_GS)
        assert plan.steps == [] and plan.total_queries() == 0

    def test_describe_mentions_steps(self):
        plan = plan_with()
        description = plan.describe()
        assert "step" in description

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            PlannerConfig(memory_budget_cells=1)
        with pytest.raises(ConfigError):
            PlannerConfig(max_dims_per_query=0)


class TestStepQueries:
    def test_flag_step_query_shape(self):
        group = ViewGroup("store", (ViewSpec("store", "amount", "avg"),))
        step = FlagStep("sales", col("x") == 1, group)
        (query,) = step.queries()
        assert isinstance(query, AggregateQuery)
        assert query.predicate is None  # flag carries the predicate
        assert query.key_names == (FLAG_NAME, "store")
        aliases = [a.alias for a in query.aggregates]
        assert aliases == ["sum(amount)", "countv(amount)"]

    def test_separate_step_queries(self):
        group = ViewGroup("store", (ViewSpec("store", "amount", "sum"),))
        step = SeparateStep("sales", col("x") == 1, group)
        target, comparison = step.queries()
        assert target.predicate is not None
        assert comparison.predicate is None

    def test_multidim_step_sets(self):
        groups = (
            ViewGroup("a", (ViewSpec("a", "m", "sum"),)),
            ViewGroup("b", (ViewSpec("b", "m", "sum"),)),
        )
        step = MultiDimStep("t", None, groups, combine_flag=True)
        (query,) = step.queries()
        assert isinstance(query, GroupingSetsQuery)
        assert len(query.sets) == 2

    def test_rollup_step_group_by(self):
        groups = (
            ViewGroup("a", (ViewSpec("a", "m", "sum"),)),
            ViewGroup("b", (ViewSpec("b", "m", "avg"),)),
        )
        step = RollupStep("t", col("x") == 1, groups, combine_flag=True)
        (query,) = step.queries()
        assert query.key_names == (FLAG_NAME, "a", "b")


class TestMarginalize:
    def test_marginalize_sums(self, memory_backend):
        from repro.db.aggregates import Aggregate

        rollup = memory_backend.execute(
            AggregateQuery(
                "sales",
                ("store", "product"),
                (Aggregate("sum", "amount"), Aggregate("countv", "amount")),
            )
        )
        marginal = marginalize(
            rollup, "store", (Aggregate("sum", "amount"), Aggregate("countv", "amount"))
        )
        direct = memory_backend.execute(
            AggregateQuery(
                "sales",
                ("store",),
                (Aggregate("sum", "amount"), Aggregate("countv", "amount")),
            )
        )
        assert marginal.num_rows == direct.num_rows
        np.testing.assert_allclose(
            np.asarray(marginal.column("sum(amount)"), dtype=float),
            np.asarray(direct.column("sum(amount)"), dtype=float),
        )

    def test_marginalize_rejects_algebraic(self, memory_backend):
        from repro.db.aggregates import Aggregate
        from repro.util.errors import QueryError

        rollup = memory_backend.execute(
            AggregateQuery("sales", ("store", "product"), (Aggregate("avg", "amount"),))
        )
        with pytest.raises(QueryError, match="marginalize"):
            marginalize(rollup, "store", (Aggregate("avg", "amount"),))


class TestCostModel:
    def test_basic_vs_combined_scans(self):
        basic = Planner(
            PlannerConfig(
                combine_target_comparison=False,
                combine_aggregates=False,
                groupby_combining=GroupByCombining.NONE,
            )
        ).plan(VIEWS, "s", None, CARDINALITIES, CAPS_GS)
        combined = Planner(
            PlannerConfig(groupby_combining=GroupByCombining.GROUPING_SETS)
        ).plan(VIEWS, "s", None, CARDINALITIES, CAPS_GS)
        basic_cost = estimate_plan_cost(basic, 1000, CARDINALITIES, CAPS_GS)
        combined_cost = estimate_plan_cost(combined, 1000, CARDINALITIES, CAPS_GS)
        assert basic_cost.n_scans == 8
        assert combined_cost.n_scans == 1
        assert combined_cost.rows_scanned < basic_cost.rows_scanned

    def test_grouping_sets_fallback_scans(self):
        plan = Planner(
            PlannerConfig(groupby_combining=GroupByCombining.GROUPING_SETS)
        ).plan(VIEWS, "s", None, CARDINALITIES, CAPS_GS)
        cost_native = estimate_plan_cost(plan, 1000, CARDINALITIES, CAPS_GS)
        cost_fallback = estimate_plan_cost(plan, 1000, CARDINALITIES, CAPS_NO_GS)
        assert cost_fallback.n_scans > cost_native.n_scans

    def test_result_groups_flag_doubling(self):
        group = ViewGroup("store", (ViewSpec("store", "amount", "sum"),))
        flag_plan = Planner(PlannerConfig()).plan(
            [ViewSpec("store", "amount", "sum")], "s", col("x") == 1,
            CARDINALITIES, CAPS_GS,
        )
        cost = estimate_plan_cost(flag_plan, 100, CARDINALITIES, CAPS_GS)
        assert cost.result_groups == 8  # 4 stores x 2 flag values
