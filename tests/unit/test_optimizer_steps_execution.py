"""Unit tests: every step type produces identical per-view raw data.

Strategy: compute ground truth with independent queries, then assert each
sharing strategy (flag, grouping sets, rollup; with and without flag
combining) extracts the same target and comparison series.
"""

import numpy as np
import pytest

from repro.db.expressions import col
from repro.model.view import ViewSpec
from repro.optimizer.parallel import ParallelExecutor
from repro.optimizer.plan import (
    ExecutionPlan,
    FlagStep,
    MultiDimStep,
    RollupStep,
    SeparateStep,
    ViewGroup,
)

VIEWS = (
    ViewSpec("store", "amount", "sum"),
    ViewSpec("store", "amount", "avg"),
    ViewSpec("store", "profit", "var"),
    ViewSpec("store", None, "count"),
)
PRODUCT_VIEWS = (
    ViewSpec("product", "amount", "min"),
    ViewSpec("product", "amount", "max"),
)


@pytest.fixture
def predicate():
    return col("product") == "Laserwave"


@pytest.fixture
def ground_truth(memory_backend, predicate):
    steps = [
        SeparateStep("sales", predicate, ViewGroup(v.dimension, (v,)))
        for v in VIEWS + PRODUCT_VIEWS
    ]
    return ExecutionPlan(steps).run(memory_backend)


def assert_same_raw(actual, expected):
    assert set(actual) == set(expected)
    for spec in expected:
        a, e = actual[spec], expected[spec]
        assert a.target_keys == e.target_keys, spec.label
        assert a.comparison_keys == e.comparison_keys, spec.label
        np.testing.assert_allclose(
            a.target_values, e.target_values, equal_nan=True, err_msg=spec.label
        )
        np.testing.assert_allclose(
            a.comparison_values,
            e.comparison_values,
            equal_nan=True,
            err_msg=spec.label,
        )


class TestFlagStep:
    def test_matches_ground_truth(self, memory_backend, predicate, ground_truth):
        steps = [
            FlagStep("sales", predicate, ViewGroup("store", VIEWS)),
            FlagStep("sales", predicate, ViewGroup("product", PRODUCT_VIEWS)),
        ]
        actual = ExecutionPlan(steps).run(memory_backend)
        assert_same_raw(actual, ground_truth)

    def test_none_predicate_target_equals_comparison(self, memory_backend):
        view = ViewSpec("store", "amount", "sum")
        step = FlagStep("sales", None, ViewGroup("store", (view,)))
        raw = step.run(memory_backend)[view]
        np.testing.assert_allclose(raw.target_values, raw.comparison_values)


class TestMultiDimStep:
    @pytest.mark.parametrize("combine_flag", [True, False])
    def test_matches_ground_truth(
        self, memory_backend, predicate, ground_truth, combine_flag
    ):
        step = MultiDimStep(
            "sales",
            predicate,
            (ViewGroup("store", VIEWS), ViewGroup("product", PRODUCT_VIEWS)),
            combine_flag=combine_flag,
        )
        actual = ExecutionPlan([step]).run(memory_backend)
        assert_same_raw(actual, ground_truth)

    def test_works_on_sqlite_fallback(self, sqlite_backend, predicate, ground_truth):
        step = MultiDimStep(
            "sales",
            predicate,
            (ViewGroup("store", VIEWS), ViewGroup("product", PRODUCT_VIEWS)),
            combine_flag=True,
        )
        actual = ExecutionPlan([step]).run(sqlite_backend)
        assert_same_raw(actual, ground_truth)


class TestRollupStep:
    @pytest.mark.parametrize("combine_flag", [True, False])
    def test_matches_ground_truth(
        self, memory_backend, predicate, ground_truth, combine_flag
    ):
        step = RollupStep(
            "sales",
            predicate,
            (ViewGroup("store", VIEWS), ViewGroup("product", PRODUCT_VIEWS)),
            combine_flag=combine_flag,
        )
        actual = ExecutionPlan([step]).run(memory_backend)
        assert_same_raw(actual, ground_truth)

    def test_rollup_on_sqlite(self, sqlite_backend, predicate, ground_truth):
        step = RollupStep(
            "sales",
            predicate,
            (ViewGroup("store", VIEWS), ViewGroup("product", PRODUCT_VIEWS)),
            combine_flag=True,
        )
        actual = ExecutionPlan([step]).run(sqlite_backend)
        assert_same_raw(actual, ground_truth)


class TestParallelExecutor:
    def test_results_identical_to_sequential(
        self, memory_backend, predicate, ground_truth
    ):
        steps = [
            FlagStep("sales", predicate, ViewGroup("store", VIEWS)),
            FlagStep("sales", predicate, ViewGroup("product", PRODUCT_VIEWS)),
        ]
        plan = ExecutionPlan(steps)
        extracted, report = ParallelExecutor(n_workers=4).run(plan, memory_backend)
        assert_same_raw(extracted, ground_truth)
        assert report.n_workers == 4
        assert len(report.step_seconds) == 2
        assert report.total_seconds > 0

    def test_single_worker_sequential_path(self, memory_backend, predicate):
        view = ViewSpec("store", "amount", "sum")
        plan = ExecutionPlan(
            [FlagStep("sales", predicate, ViewGroup("store", (view,)))]
        )
        extracted, report = ParallelExecutor(n_workers=1).run(plan, memory_backend)
        assert view in extracted
        assert report.mean_step_seconds >= 0.0
        assert report.max_step_seconds >= report.mean_step_seconds

    def test_invalid_workers(self):
        from repro.util.errors import ConfigError

        with pytest.raises(ConfigError):
            ParallelExecutor(n_workers=0)
