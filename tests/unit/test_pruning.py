"""Unit tests: view-space pruning rules and the pipeline."""

import pytest

from repro.datasets.synthetic import add_constant_column, add_correlated_copy
from repro.db.table import Table
from repro.db.types import AttributeRole
from repro.metadata import AccessLog, MetadataCollector
from repro.model.view import ViewSpec
from repro.pruning import (
    AccessFrequencyPruner,
    CardinalityPruner,
    CorrelationPruner,
    PruningPipeline,
    VariancePruner,
    cluster_dimensions,
)
from repro.util.errors import PruningError


@pytest.fixture
def table(sales_table):
    extended = add_constant_column(sales_table, "country", "USA")
    return add_correlated_copy(extended, "store", "store_code")


@pytest.fixture
def metadata(table):
    return MetadataCollector().collect(table)


def views_for(*dimensions):
    return [ViewSpec(d, "amount", "sum") for d in dimensions]


class TestVariancePruner:
    def test_constant_dimension_pruned(self, metadata):
        kept, report = VariancePruner().apply(
            views_for("store", "country"), metadata
        )
        assert [v.dimension for v in kept] == ["store"]
        assert report.n_pruned == 1
        assert "constant" in report.pruned[0][1]

    def test_entropy_threshold(self, metadata):
        # A ridiculous threshold prunes everything except nothing is above
        # 10 bits on a 12-row table.
        kept, report = VariancePruner(min_entropy_bits=10.0).apply(
            views_for("store", "product"), metadata
        )
        assert kept == []
        assert report.n_pruned == 2

    def test_invalid_thresholds(self):
        with pytest.raises(PruningError):
            VariancePruner(min_entropy_bits=-1)
        with pytest.raises(PruningError):
            VariancePruner(min_numeric_variance=-0.1)


class TestCardinalityPruner:
    def test_upper_bound(self, metadata):
        kept, report = CardinalityPruner(max_groups=3).apply(
            views_for("store", "product"), metadata
        )
        # store has 4 groups (> 3), product has 2.
        assert [v.dimension for v in kept] == ["product"]
        assert "unvisualizable" in report.pruned[0][1]

    def test_lower_bound(self, metadata):
        kept, _report = CardinalityPruner(min_groups=3, max_groups=None).apply(
            views_for("store", "product", "country"), metadata
        )
        assert [v.dimension for v in kept] == ["store"]

    def test_no_upper_bound(self, metadata):
        kept, _ = CardinalityPruner(max_groups=None).apply(
            views_for("store"), metadata
        )
        assert len(kept) == 1

    def test_invalid_bounds(self):
        with pytest.raises(PruningError):
            CardinalityPruner(min_groups=0)
        with pytest.raises(PruningError):
            CardinalityPruner(min_groups=5, max_groups=2)


class TestCorrelationPruner:
    def test_clusters_perfect_copy(self, metadata):
        clusters = cluster_dimensions(
            ["store", "store_code", "product"], metadata, threshold=0.9
        )
        assert ["store", "store_code"] in clusters
        assert ["product"] in clusters

    def test_one_representative_per_cluster(self, metadata):
        views = views_for("store", "store_code", "product")
        kept, report = CorrelationPruner(threshold=0.9).apply(views, metadata)
        kept_dimensions = {v.dimension for v in kept}
        assert "product" in kept_dimensions
        assert len(kept_dimensions & {"store", "store_code"}) == 1
        assert report.n_pruned == 1
        assert "correlated" in report.pruned[0][1]

    def test_access_frequency_breaks_ties(self, table):
        log = AccessLog()
        for _ in range(5):
            log.record_columns(table.name, {"store_code"})
        metadata = MetadataCollector(access_log=log).collect(table)
        views = views_for("store", "store_code")
        kept, _report = CorrelationPruner(threshold=0.9).apply(views, metadata)
        assert [v.dimension for v in kept] == ["store_code"]

    def test_threshold_validation(self):
        with pytest.raises(PruningError):
            CorrelationPruner(threshold=0.0)
        with pytest.raises(PruningError):
            CorrelationPruner(threshold=1.5)

    def test_high_threshold_keeps_everything(self, metadata):
        views = views_for("store", "product")
        kept, _ = CorrelationPruner(threshold=1.0).apply(views, metadata)
        assert len(kept) == 2


class TestAccessFrequencyPruner:
    def test_cold_start_keeps_all(self, metadata):
        pruner = AccessFrequencyPruner(min_frequency=0.9, min_history=10)
        kept, _ = pruner.apply(views_for("store", "product"), metadata)
        assert len(kept) == 2

    def test_prunes_rarely_accessed(self, table):
        log = AccessLog()
        for _ in range(20):
            log.record_columns(table.name, {"store", "amount"})
        log.record_columns(table.name, {"product"})
        metadata = MetadataCollector(access_log=log).collect(table)
        pruner = AccessFrequencyPruner(min_frequency=0.5, min_history=5)
        kept, report = pruner.apply(views_for("store", "product"), metadata)
        assert [v.dimension for v in kept] == ["store"]
        assert "frequency" in report.pruned[0][1]

    def test_measure_frequency_also_checked(self, table):
        log = AccessLog()
        for _ in range(20):
            log.record_columns(table.name, {"store"})
        metadata = MetadataCollector(access_log=log).collect(table)
        pruner = AccessFrequencyPruner(min_frequency=0.5, min_history=5)
        kept, _ = pruner.apply([ViewSpec("store", "amount", "sum")], metadata)
        assert kept == []  # amount never accessed

    def test_validation(self):
        with pytest.raises(PruningError):
            AccessFrequencyPruner(min_frequency=1.5)
        with pytest.raises(PruningError):
            AccessFrequencyPruner(min_history=-1)


class TestPipeline:
    def test_sequential_reports(self, metadata):
        pipeline = PruningPipeline(
            [VariancePruner(), CardinalityPruner(max_groups=3)]
        )
        views = views_for("store", "product", "country")
        kept, reports = pipeline.apply(views, metadata)
        assert [r.rule for r in reports] == ["variance", "cardinality"]
        assert [v.dimension for v in kept] == ["product"]
        assert PruningPipeline.total_pruned(reports) == 2

    def test_empty_pipeline_keeps_all(self, metadata):
        kept, reports = PruningPipeline([]).apply(views_for("store"), metadata)
        assert len(kept) == 1 and reports == []

    def test_count_views_prunable(self, metadata):
        # count(*) views carry measure=None; pruners must handle that.
        views = [ViewSpec("country", None, "count")]
        kept, _ = VariancePruner().apply(views, metadata)
        assert kept == []
