"""Unit tests: the EXPERIMENTS appendix regenerator."""

from pathlib import Path

from repro.experiments.regen import (
    load_result_rows,
    main,
    render_results_appendix,
)
from repro.experiments.report import write_rows_csv


class TestLoadRows:
    def test_numeric_conversion(self, tmp_path):
        path = write_rows_csv(
            [{"name": "a", "count": 3, "ratio": 0.5}], tmp_path / "r.csv"
        )
        rows = load_result_rows(Path(path))
        assert rows == [{"name": "a", "count": 3, "ratio": 0.5}]
        assert isinstance(rows[0]["count"], int)
        assert isinstance(rows[0]["ratio"], float)


class TestRenderAppendix:
    def test_titles_and_tables(self, tmp_path):
        write_rows_csv(
            [{"attributes": 10, "views": 50}], tmp_path / "e6_view_space.csv"
        )
        write_rows_csv([{"x": 1}], tmp_path / "unknown_experiment.csv")
        text = render_results_appendix(tmp_path)
        assert "E6 — View-space growth" in text
        assert "unknown_experiment" in text  # falls back to the stem
        assert "| attributes | views |" in text

    def test_empty_directory(self, tmp_path):
        assert "no experiment CSVs" in render_results_appendix(tmp_path)

    def test_cli_main(self, tmp_path, capsys):
        write_rows_csv([{"a": 1}], tmp_path / "e6_view_space.csv")
        assert main([str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "Measured results" in captured.out
