"""Unit tests: the v3 ``options.render`` block end to end.

Validation of the block itself, the RenderPhase's frames on blocking
execution, wire serialization, and the shared-memory codec carrying
frames across the cluster tier.
"""

from __future__ import annotations

import json

import pytest

from repro.api import ApiError, RecommendationRequest
from repro.api.request import RENDER_OPTION_DEFAULTS
from repro.api.wire import result_to_json
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.service.shm import decode_result, encode_result

SQL = "SELECT * FROM sales WHERE product = 'Laserwave'"


def request_with_render(render: dict, **kwargs) -> RecommendationRequest:
    return RecommendationRequest.from_sql(
        SQL, options={"render": render}, **kwargs
    )


class TestRenderValidation:
    def expect_api_error(self, render, code, field):
        with pytest.raises(ApiError) as excinfo:
            request_with_render(render)
        assert excinfo.value.code == code
        assert excinfo.value.field == field

    def test_block_must_be_a_mapping(self):
        self.expect_api_error(
            "vega-lite", "invalid_value", "options.render"
        )

    def test_unknown_key_named_with_its_path(self):
        self.expect_api_error(
            {"formt": "svg"}, "unknown_field", "options.render.formt"
        )

    def test_format_is_a_closed_enum(self):
        self.expect_api_error(
            {"format": "png"}, "invalid_value", "options.render.format"
        )

    def test_theme_is_a_closed_enum(self):
        self.expect_api_error(
            {"theme": "solarized"}, "invalid_value", "options.render.theme"
        )

    def test_max_charts_must_be_a_positive_int(self):
        for bad in (0, -1, 1.5, True, "3"):
            self.expect_api_error(
                {"max_charts": bad},
                "invalid_value",
                "options.render.max_charts",
            )

    def test_defaults_applied_on_resolve(self):
        resolved = request_with_render({"format": "svg"}).resolve(
            SeeDBConfig(k=2)
        )
        assert resolved.render["format"] == "svg"
        assert resolved.render["theme"] == RENDER_OPTION_DEFAULTS["theme"]
        assert resolved.render["max_charts"] is None


class TestRenderExecution:
    def seedb(self, backend) -> SeeDB:
        return SeeDB(backend, SeeDBConfig(k=2))

    def test_vega_lite_frames_for_every_topk_view(self, memory_backend):
        result = self.seedb(memory_backend).recommend(
            request_with_render({"format": "vega-lite"})
        )
        frames = result.visualizations
        assert frames is not None
        assert len(frames) == len(result.recommendations)
        for rank, (frame, view) in enumerate(
            zip(frames, result.recommendations), start=1
        ):
            assert frame["rank"] == rank
            assert frame["view"] == view.spec.label
            assert frame["format"] == "vega-lite"
            assert frame["rationale"]
            assert frame["spec"]["data"]["values"]
        assert "render" in result.stopwatch.phases

    def test_svg_format_emits_standalone_documents(self, memory_backend):
        result = self.seedb(memory_backend).recommend(
            request_with_render({"format": "svg"})
        )
        for frame in result.visualizations:
            assert frame["svg"].startswith("<svg")
            assert "spec" not in frame

    def test_max_charts_caps_the_frames_not_the_views(self, memory_backend):
        result = self.seedb(memory_backend).recommend(
            request_with_render({"format": "vega-lite", "max_charts": 1})
        )
        assert len(result.visualizations) == 1
        assert len(result.recommendations) == 2

    def test_theme_controls_the_config_block(self, memory_backend):
        dark = self.seedb(memory_backend).recommend(
            request_with_render({"format": "vega-lite", "theme": "dark"})
        )
        light = self.seedb(memory_backend).recommend(
            request_with_render({"format": "vega-lite", "theme": "light"})
        )
        assert dark.visualizations[0]["spec"]["config"]["background"] != (
            light.visualizations[0]["spec"]["config"]["background"]
        )

    def test_chart_choice_uses_schema_semantics(self, memory_backend):
        """The sales fixture tags store=geography and month=time; any
        frame over those dimensions must carry the semantic chart type
        and a rationale naming the rule."""
        result = self.seedb(memory_backend).recommend(
            RecommendationRequest.from_sql(
                SQL, k=10, options={"render": {"format": "vega-lite"}}
            )
        )
        by_dimension = {}
        for frame in result.visualizations:
            dimension = frame["view"].rsplit(" by ", 1)[-1]
            by_dimension.setdefault(dimension, frame)
        if "store" in by_dimension:
            assert by_dimension["store"]["chart_type"] == "map"
            assert "geography" in by_dimension["store"]["rationale"]
        if "month" in by_dimension:
            assert by_dimension["month"]["chart_type"] == "line"
            assert "time" in by_dimension["month"]["rationale"]


class TestWireAndTransports:
    def result_with_frames(self, memory_backend):
        return SeeDB(memory_backend, SeeDBConfig(k=2)).recommend(
            request_with_render({"format": "vega-lite"})
        )

    def test_result_to_json_carries_frames(self, memory_backend):
        payload = result_to_json(self.result_with_frames(memory_backend))
        decoded = json.loads(json.dumps(payload))
        assert decoded["visualizations"] == payload["visualizations"]
        assert len(decoded["visualizations"]) == 2

    def test_shm_codec_round_trips_frames(self, memory_backend):
        result = self.result_with_frames(memory_backend)
        _, _, decoded = decode_result(encode_result(result))
        assert decoded.visualizations == result.visualizations

    def test_shm_codec_tolerates_pre_v3_blobs(self, memory_backend):
        """Blobs written by an encoder without the field decode to None —
        mixed-version worker pools must not crash on old cache entries."""
        result = SeeDB(memory_backend, SeeDBConfig(k=2)).recommend(
            RecommendationRequest.from_sql(SQL)
        )
        assert result.visualizations is None
        _, _, decoded = decode_result(encode_result(result))
        assert decoded.visualizations is None
