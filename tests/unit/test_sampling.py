"""Unit tests: samplers and sample-accuracy measures."""

import numpy as np
import pytest

from repro.db.table import Table
from repro.model.view import ViewSpec
from repro.sampling import (
    BernoulliSampler,
    ReservoirSampler,
    StratifiedSampler,
    kendall_tau,
    ranking_from_utilities,
    reservoir_indices,
    topk_precision,
    utility_errors,
)
from repro.util.errors import SamplingError


@pytest.fixture
def table():
    n = 2000
    return Table.from_columns(
        "t",
        {
            # Skewed dimension: one dominant group, one rare group.
            "k": ["big"] * 1900 + ["rare"] * 100,
            "v": [float(i) for i in range(n)],
        },
    )


class TestBernoulli:
    def test_fraction_respected_approximately(self, table):
        sample = BernoulliSampler(0.25).sample(table, seed=1)
        assert 350 <= sample.num_rows <= 650  # 4-sigma-ish band around 500

    def test_full_fraction_keeps_everything(self, table):
        sample = BernoulliSampler(1.0).sample(table, seed=1)
        assert sample.num_rows == table.num_rows

    def test_deterministic_given_seed(self, table):
        a = BernoulliSampler(0.3).sample(table, seed=7)
        b = BernoulliSampler(0.3).sample(table, seed=7)
        assert a.to_rows() == b.to_rows()

    def test_invalid_fraction(self):
        with pytest.raises(SamplingError):
            BernoulliSampler(0.0)
        with pytest.raises(SamplingError):
            BernoulliSampler(1.5)

    def test_sample_name_suffix(self, table):
        assert BernoulliSampler(0.5).sample(table, seed=0).name == "t_sample"

    def test_expected_rows(self):
        assert BernoulliSampler(0.1).expected_rows(1000) == 100


class TestReservoir:
    def test_exact_capacity(self, table):
        sample = ReservoirSampler(100).sample(table, seed=3)
        assert sample.num_rows == 100

    def test_small_table_passthrough(self, table):
        sample = ReservoirSampler(10**6).sample(table, seed=3)
        assert sample.num_rows == table.num_rows

    def test_streaming_algorithm_r(self):
        indices = reservoir_indices(range(1000), capacity=50, seed=0)
        assert len(indices) == 50
        assert len(set(indices)) == 50
        assert all(0 <= i < 1000 for i in indices)
        assert indices == sorted(indices)

    def test_streaming_short_stream(self):
        assert reservoir_indices(range(3), capacity=10, seed=0) == [0, 1, 2]

    def test_streaming_uniformity(self):
        # Each of 20 items should appear in a size-5 reservoir ~25% of runs.
        hits = np.zeros(20)
        for seed in range(400):
            for index in reservoir_indices(range(20), capacity=5, seed=seed):
                hits[index] += 1
        rates = hits / 400
        assert np.all(rates > 0.15) and np.all(rates < 0.35)

    def test_invalid_capacity(self):
        with pytest.raises(SamplingError):
            ReservoirSampler(0)
        with pytest.raises(SamplingError):
            reservoir_indices(range(5), capacity=0)


class TestStratified:
    def test_rare_group_guaranteed(self, table):
        # At 1% Bernoulli the rare group (100 rows) often vanishes; the
        # stratified floor keeps it.
        sample = StratifiedSampler("k", fraction=0.01, min_per_stratum=5).sample(
            table, seed=2
        )
        kept = [str(v) for v in sample.column("k")]
        assert kept.count("rare") >= 5

    def test_proportional_allocation(self, table):
        sample = StratifiedSampler("k", fraction=0.1).sample(table, seed=2)
        kept = [str(v) for v in sample.column("k")]
        assert 150 <= kept.count("big") <= 230

    def test_full_fraction(self, table):
        sample = StratifiedSampler("k", fraction=1.0).sample(table, seed=2)
        assert sample.num_rows == table.num_rows

    def test_empty_table(self):
        empty = Table.from_columns("e", {"k": ["x"], "v": [1.0]}).mask(
            np.array([False])
        )
        sample = StratifiedSampler("k", fraction=0.5).sample(empty, seed=0)
        assert sample.num_rows == 0

    def test_validation(self):
        with pytest.raises(SamplingError):
            StratifiedSampler("k", fraction=0.0)
        with pytest.raises(SamplingError):
            StratifiedSampler("k", fraction=0.5, min_per_stratum=-1)


def _specs(n):
    return [ViewSpec(f"d{i}", "m", "sum") for i in range(n)]


class TestAccuracyMeasures:
    def test_ranking_sorted_descending(self):
        specs = _specs(3)
        utilities = {specs[0]: 0.1, specs[1]: 0.9, specs[2]: 0.5}
        assert ranking_from_utilities(utilities) == [specs[1], specs[2], specs[0]]

    def test_ranking_deterministic_ties(self):
        specs = _specs(3)
        utilities = {spec: 0.5 for spec in specs}
        assert ranking_from_utilities(utilities) == sorted(specs)

    def test_topk_precision_perfect_and_disjoint(self):
        specs = _specs(4)
        truth = {specs[i]: 1.0 - i * 0.1 for i in range(4)}
        assert topk_precision(truth, truth, k=2) == 1.0
        reversed_utilities = {specs[i]: i * 0.1 for i in range(4)}
        assert topk_precision(truth, reversed_utilities, k=2) == 0.0

    def test_topk_k_validation(self):
        with pytest.raises(SamplingError):
            topk_precision({}, {}, k=0)

    def test_kendall_tau_perfect(self):
        specs = _specs(5)
        utilities = {specs[i]: float(i) for i in range(5)}
        assert kendall_tau(utilities, utilities) == pytest.approx(1.0)

    def test_kendall_tau_reversed(self):
        specs = _specs(5)
        truth = {specs[i]: float(i) for i in range(5)}
        estimate = {specs[i]: float(-i) for i in range(5)}
        assert kendall_tau(truth, estimate) == pytest.approx(-1.0)

    def test_kendall_tau_few_common_views(self):
        specs = _specs(1)
        assert kendall_tau({specs[0]: 1.0}, {specs[0]: 0.3}) == 1.0

    def test_utility_errors(self):
        specs = _specs(2)
        truth = {specs[0]: 0.5, specs[1]: 0.8}
        estimate = {specs[0]: 0.6, specs[1]: 0.8}
        errors = utility_errors(truth, estimate)
        assert errors["mean_abs_error"] == pytest.approx(0.05)
        assert errors["max_abs_error"] == pytest.approx(0.1)

    def test_utility_errors_no_overlap(self):
        assert utility_errors({_specs(1)[0]: 1.0}, {}) == {
            "mean_abs_error": 0.0,
            "max_abs_error": 0.0,
        }
