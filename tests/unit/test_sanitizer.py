"""Lock-order sanitizer: the runtime half of the invariant suite.

The seeded-inversion test is the acceptance proof that SEEDB_SANITIZE=1
would have caught a real deadlock-shaped bug: two locks taken in both
orders raise the moment the second order is observed, even though this
particular interleaving did not hang.
"""

from __future__ import annotations

import threading

import pytest

from repro.testing import sanitizer


@pytest.fixture(autouse=True)
def isolated_graph():
    # Each scenario gets its own order graph so edges recorded by one
    # test (or by production locks elsewhere in the suite) cannot leak.
    state = sanitizer.fresh_state()
    yield state
    sanitizer.fresh_state()


def test_seeded_inversion_raises(isolated_graph):
    lock_a = sanitizer.tracked_lock()
    lock_b = sanitizer.tracked_lock()
    with lock_a:
        with lock_b:
            pass
    with pytest.raises(sanitizer.LockOrderViolation) as excinfo:
        with lock_b:
            with lock_a:
                pass
    assert "inversion" in str(excinfo.value)
    assert isolated_graph.violations == 1


def test_consistent_order_never_fires(isolated_graph):
    lock_a = sanitizer.tracked_lock()
    lock_b = sanitizer.tracked_lock()
    for _ in range(3):
        with lock_a:
            with lock_b:
                pass
    assert isolated_graph.violations == 0


def test_three_lock_cycle_detected(isolated_graph):
    lock_a = sanitizer.tracked_lock()
    lock_b = sanitizer.tracked_lock()
    lock_c = sanitizer.tracked_lock()
    with lock_a:
        with lock_b:
            pass
    with lock_b:
        with lock_c:
            pass
    with pytest.raises(sanitizer.LockOrderViolation):
        with lock_c:
            with lock_a:
                pass


def test_same_creation_site_pairs_ignored(isolated_graph):
    # Instances born on one line (per-session locks made in a loop) have
    # no defined order among themselves; both orders must be silent.
    locks = [sanitizer.tracked_lock() for _ in range(2)]
    with locks[0]:
        with locks[1]:
            pass
    with locks[1]:
        with locks[0]:
            pass
    assert isolated_graph.violations == 0


def test_rlock_reentrancy_is_not_an_inversion(isolated_graph):
    rlock = sanitizer.tracked_rlock()
    with rlock:
        with rlock:
            pass
    assert isolated_graph.violations == 0


def test_condition_variable_protocol(isolated_graph):
    # threading.Condition drives the wrapped lock through _release_save /
    # _acquire_restore / _is_owned during wait(); the proxy must forward
    # all three and keep the held stack balanced across the release.
    cond = threading.Condition(sanitizer.tracked_rlock())
    with cond:
        cond.notify_all()
        assert cond.wait(timeout=0.01) is False
    other = sanitizer.tracked_lock()
    # The held stack is empty again: taking another lock records no edge
    # from the condition's lock.
    with other:
        pass
    assert isolated_graph.violations == 0


def test_nonblocking_acquire_failure_not_recorded(isolated_graph):
    # A failed try-acquire holds nothing and must record no edge, even
    # when succeeding *would* have been an inversion.
    lock_a = sanitizer.tracked_lock()
    lock_b = sanitizer.tracked_lock()
    with lock_a:
        with lock_b:
            pass
    held = threading.Event()
    release = threading.Event()

    def hold() -> None:
        with lock_a:
            held.set()
            release.wait(timeout=5.0)

    holder = threading.Thread(target=hold)
    holder.start()
    assert held.wait(timeout=5.0)
    try:
        with lock_b:
            assert lock_a.acquire(blocking=False) is False
    finally:
        release.set()
        holder.join()
    assert isolated_graph.violations == 0


def test_install_patches_threading_and_uninstall_restores():
    # threading.Lock may already be patched (suite running under
    # SEEDB_SANITIZE=1), so compare against the sanitizer's saved
    # original rather than whatever threading currently exposes.
    real_lock_type = type(sanitizer._real_lock())
    try:
        sanitizer.install()
        patched = threading.Lock()
        assert hasattr(patched, "_site")
        sanitizer.uninstall()
        restored = threading.Lock()
        assert type(restored) is real_lock_type
    finally:
        # Re-install if the surrounding suite runs sanitized, restore if
        # not — matching whatever state conftest set up.
        if sanitizer.enabled_by_env():
            sanitizer.install()
        else:
            sanitizer.uninstall()


def test_cross_thread_opposite_orders_detected(isolated_graph):
    # The inversion is global, not per-thread: thread 1 records A→B, the
    # main thread then closes the cycle with B→A.
    lock_a = sanitizer.tracked_lock()
    lock_b = sanitizer.tracked_lock()

    def forward():
        with lock_a:
            with lock_b:
                pass

    worker = threading.Thread(target=forward)
    worker.start()
    worker.join()
    with pytest.raises(sanitizer.LockOrderViolation):
        with lock_b:
            with lock_a:
                pass
