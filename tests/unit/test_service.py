"""Unit tests: the SeeDBService layer (scheduling, coalescing, caching)."""

import threading

import pytest

from repro.backends.memory import MemoryBackend
from repro.backends.sqlite import SqliteBackend
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB
from repro.db.expressions import col
from repro.db.query import RowSelectQuery
from repro.engine import EngineCache
from repro.service import SeeDBService, single_backend_service
from repro.util.errors import ConfigError, QueryError

QUERY = RowSelectQuery("sales", col("product") == "Laserwave")
SQL = "SELECT * FROM sales WHERE product = 'Laserwave'"


class TestBackendRegistry:
    def test_duplicate_name_rejected(self, memory_backend):
        service = SeeDBService()
        service.register_backend("a", memory_backend)
        with pytest.raises(ConfigError, match="already registered"):
            service.register_backend("a", memory_backend)
        service.close()

    def test_unknown_backend_rejected(self, memory_backend):
        with single_backend_service(memory_backend) as service:
            with pytest.raises(QueryError, match="no backend named"):
                service.recommend(QUERY, backend="nope")

    def test_closed_service_rejects_requests(self, memory_backend):
        service = single_backend_service(memory_backend)
        service.close()
        with pytest.raises(QueryError, match="closed"):
            service.submit(QUERY)

    def test_multiple_backends_serve_independently(self, sales_table):
        a, b = MemoryBackend(), MemoryBackend()
        a.register_table(sales_table)
        b.register_table(sales_table)
        service = SeeDBService()
        service.register_backend("a", a)
        service.register_backend("b", b, config=SeeDBConfig(k=1))
        try:
            result_a = service.recommend(QUERY, backend="a")
            result_b = service.recommend(QUERY, backend="b")
            assert len(result_b.recommendations) == 1
            assert [v.spec for v in result_b.recommendations] == [
                v.spec for v in result_a.recommendations[:1]
            ]
        finally:
            service.close()


class TestServiceResults:
    def test_matches_direct_facade(self, memory_backend):
        direct = SeeDB(memory_backend).recommend(QUERY)
        with single_backend_service(memory_backend) as service:
            served = service.recommend(QUERY)
        assert [v.spec for v in served.recommendations] == [
            v.spec for v in direct.recommendations
        ]
        for spec, utility in direct.utilities.items():
            assert served.utilities[spec] == utility  # bit-identical

    def test_sql_and_query_objects_share_cache_entries(self, memory_backend):
        with single_backend_service(memory_backend) as service:
            first = service.recommend(SQL)
            second = service.recommend(QUERY)
            # The SQL string resolves to the same canonical request: the
            # second call is a result-cache hit, not a new execution.
            assert service.stats.executions == 1
            assert service.stats.result_cache_hits == 1
            assert second is first

    def test_error_propagates_to_waiter(self, memory_backend):
        with single_backend_service(memory_backend) as service:
            future = service.submit(RowSelectQuery("missing_table"))
            with pytest.raises(Exception):
                future.result(timeout=10)
            assert service.stats.failed == 1


class TestCoalescing:
    def make_service(self, backend, **kwargs):
        kwargs.setdefault("result_cache_size", 0)  # isolate coalescing
        return single_backend_service(backend, **kwargs)

    def test_identical_in_flight_requests_share_one_execution(
        self, memory_backend
    ):
        service = self.make_service(memory_backend, max_workers=4)
        facade = service.facade()
        release = threading.Event()
        calls = []
        inner = facade.run_resolved

        def slow_run_resolved(resolved, **kwargs):
            calls.append(resolved)
            release.wait(timeout=10)
            return inner(resolved, **kwargs)

        # The service executes through the facade's resolved-request entry
        # point; stalling it holds the first request in flight.
        facade.run_resolved = slow_run_resolved
        try:
            first = service.submit(QUERY)
            while not calls:  # the first request is on a worker thread
                pass
            joiners = [service.submit(QUERY) for _ in range(5)]
            assert all(f is first for f in joiners)
            release.set()
            results = [f.result(timeout=10) for f in [first, *joiners]]
            assert len(calls) == 1
            assert service.stats.coalesced == 5
            assert service.stats.executions == 1
            assert all(r is results[0] for r in results)
        finally:
            release.set()
            service.close()

    def test_coalescing_disabled_executes_independently(self, memory_backend):
        service = self.make_service(
            memory_backend, coalesce_requests=False, max_workers=4
        )
        try:
            futures = [service.submit(QUERY) for _ in range(3)]
            results = [f.result(timeout=10) for f in futures]
            assert service.stats.coalesced == 0
            assert service.stats.executions == 3
            utilities = [
                sorted(r.utilities.items(), key=lambda kv: kv[0])
                for r in results
            ]
            assert utilities[0] == utilities[1] == utilities[2]
        finally:
            service.close()

    def test_different_k_does_not_coalesce(self, memory_backend):
        service = self.make_service(memory_backend)
        try:
            a = service.recommend(QUERY, k=2)
            b = service.recommend(QUERY, k=3)
            assert service.stats.executions == 2
            assert len(a.recommendations) == 2
            assert len(b.recommendations) == 3
        finally:
            service.close()


class TestResultCache:
    def test_repeat_request_served_from_cache(self, memory_backend):
        with single_backend_service(memory_backend) as service:
            first = service.recommend(QUERY)
            second = service.recommend(QUERY)
            assert second is first
            assert service.stats.result_cache_hits == 1
            assert service.stats.executions == 1

    def test_data_change_retires_cached_results(self, memory_backend, nan_table):
        with single_backend_service(memory_backend) as service:
            service.recommend(QUERY)
            memory_backend.register_table(nan_table)  # bumps data_version
            service.recommend(QUERY)
            assert service.stats.result_cache_hits == 0
            assert service.stats.executions == 2

    def test_cache_disabled_reexecutes(self, memory_backend):
        with single_backend_service(
            memory_backend, result_cache_size=0
        ) as service:
            service.recommend(QUERY)
            service.recommend(QUERY)
            assert service.stats.result_cache_hits == 0
            assert service.stats.executions == 2

    def test_lru_eviction_bounds_entries(self, memory_backend):
        with single_backend_service(
            memory_backend, result_cache_size=2
        ) as service:
            for k in (1, 2, 3):
                service.recommend(QUERY, k=k)
            assert service.snapshot()["result_cache_entries"] == 2
            # k=1 was evicted (least recently used), k=3 still cached.
            service.recommend(QUERY, k=3)
            assert service.stats.result_cache_hits == 1
            service.recommend(QUERY, k=1)
            assert service.stats.executions == 4

    def test_stats_invariant(self, memory_backend):
        with single_backend_service(memory_backend) as service:
            for _ in range(3):
                service.recommend(QUERY)
            stats = service.stats
            assert stats.requests == (
                stats.executions + stats.coalesced + stats.result_cache_hits
            )


class TestSnapshot:
    def test_snapshot_shape(self, memory_backend):
        with single_backend_service(memory_backend) as service:
            service.recommend(QUERY)
            snapshot = service.snapshot()
        assert snapshot["requests"] == 1
        assert snapshot["in_flight"] == 0
        assert snapshot["coalescing_enabled"] is True
        backend_stats = snapshot["backends"]["default"]
        assert backend_stats["backend"] == "memory"
        assert backend_stats["queries_executed"] > 0
        assert 0.0 <= backend_stats["engine_cache"]["hit_rate"] <= 1.0


class TestOwnership:
    def test_owned_sqlite_backend_closed_with_service(self, sales_table, tmp_path):
        import os

        backend = SqliteBackend()
        path = backend._path
        backend.register_table(sales_table)
        service = single_backend_service(backend, owned=True)
        service.recommend(QUERY)
        assert backend.open_connections >= 1
        service.close()
        assert backend.open_connections == 0
        assert not os.path.exists(path)

    def test_unowned_backend_left_open(self, memory_backend):
        service = single_backend_service(memory_backend)
        service.recommend(QUERY)
        service.close()
        assert memory_backend.has_table("sales")


class TestSessionServiceJoining:
    def test_session_rejects_config_with_service(self, memory_backend):
        from repro.frontend.session import AnalystSession

        with single_backend_service(memory_backend) as service:
            with pytest.raises(QueryError, match="not both"):
                AnalystSession(config=SeeDBConfig(k=1), service=service)

    def test_closed_service_request_fails_fast_not_hangs(self, memory_backend):
        """Regression: a submit racing close() resolves with an error
        instead of stranding waiters on a never-completed future."""
        service = single_backend_service(memory_backend)
        service._pool.shutdown(wait=True)  # simulate close() winning the race
        future = service.submit(QUERY)
        with pytest.raises(QueryError, match="closed while scheduling"):
            future.result(timeout=10)
        service._closed = True  # finish the teardown by hand


class TestSharedPoolResize:
    def test_configure_resizes_in_place(self):
        from repro.optimizer.parallel import (
            DEFAULT_MAX_TOTAL_WORKERS,
            configure_shared_pool,
            get_shared_pool,
        )

        pool = get_shared_pool()
        try:
            resized = configure_shared_pool(3)
            # Existing references (engines' cached executors) see the new
            # bound because the singleton object is resized, not replaced.
            assert resized is pool
            assert pool.max_workers == 3
            assert pool.submit(lambda: 42).result(timeout=10) == 42
        finally:
            configure_shared_pool(DEFAULT_MAX_TOTAL_WORKERS)


class TestEngineCacheSharing:
    def test_engines_on_one_backend_share_a_cache(self, memory_backend):
        from repro.engine.engine import ExecutionEngine

        a = ExecutionEngine(memory_backend)
        b = ExecutionEngine(memory_backend)
        try:
            assert a.cache is b.cache
            assert isinstance(a.cache, EngineCache)
            assert a.cache.leases == 2
        finally:
            a.close()
            b.close()
        assert EngineCache.shared_for(memory_backend) is None

    def test_last_lease_drops_samples(self, memory_backend):
        from repro.engine.engine import ExecutionEngine

        config = SeeDBConfig(sample_fraction=0.5, min_rows_for_sampling=0)
        a = SeeDB(memory_backend, config)
        b = SeeDB(memory_backend, config)
        a.recommend(QUERY)
        samples = a.engine.cache.live_samples
        assert samples and all(memory_backend.has_table(s) for s in samples)
        a.close()  # b still holds the cache: samples survive
        assert all(memory_backend.has_table(s) for s in samples)
        b.close()
        assert not any(memory_backend.has_table(s) for s in samples)

    def test_double_close_does_not_steal_anothers_lease(self, memory_backend):
        """Regression: context-manager exit after an explicit close must
        not decrement the lease count twice and tear down a cache a
        sibling engine still uses."""
        from repro.engine.engine import ExecutionEngine

        survivor = ExecutionEngine(memory_backend)
        with ExecutionEngine(memory_backend) as doomed:
            assert survivor.cache.leases == 2
            doomed.close()  # explicit close, then __exit__ closes again
        assert survivor.cache.leases == 1
        assert EngineCache.shared_for(memory_backend) is survivor.cache
        survivor.close()

    def test_separate_backends_get_separate_caches(self, sales_table):
        from repro.engine.engine import ExecutionEngine

        a_backend, b_backend = MemoryBackend(), MemoryBackend()
        a_backend.register_table(sales_table)
        b_backend.register_table(sales_table)
        a = ExecutionEngine(a_backend)
        b = ExecutionEngine(b_backend)
        try:
            assert a.cache is not b.cache
        finally:
            a.close()
            b.close()
