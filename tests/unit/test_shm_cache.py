"""Unit: the shared-memory result codec and cross-process cache.

Covers the transport invariants the cluster tier depends on: bit-exact
round-trips of every array dtype the engine produces, version-keyed
staleness (writers and readers both retire stale entries), torn-write
detection, and segment hygiene — no /dev/shm leaks after close.
"""

from __future__ import annotations

import multiprocessing
from datetime import date, datetime

import numpy as np
import pytest

from repro.core.result import RecommendationResult
from repro.core.view import ScoredView, ViewSpec
from repro.pruning.base import PruneReport
from repro.service.shm import (
    SharedResultCache,
    ShmCodecError,
    decode_result,
    decode_value,
    encode_result,
    encode_value,
    list_segments,
    read_segment,
    unlink_segment,
)
from repro.util.errors import ConfigError
from repro.util.timing import Stopwatch

PREFIX = "sdbtest."


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Every test must leave /dev/shm clean under the test prefix."""
    for name in list_segments(PREFIX):
        unlink_segment(name)
    yield
    leaked = list_segments(PREFIX)
    for name in leaked:
        unlink_segment(name)
    assert leaked == [], f"leaked shared-memory segments: {leaked}"


def make_result(utility: float = 0.75, groups=None) -> RecommendationResult:
    spec = ViewSpec("region", "sales", "sum")
    other = ViewSpec("product", None, "count")
    if groups is None:
        groups = ["east", "west"]
    view = ScoredView(
        spec=spec,
        utility=utility,
        groups=list(groups),
        target_distribution=np.array([0.25, 0.75]),
        comparison_distribution=np.array([0.5, 0.5]),
        target_values=np.array([10.0, 30.0]),
        comparison_values=np.array([20.0, 20.0]),
    )
    low = ScoredView(
        spec=other,
        utility=np.nextafter(0.1, 0.0),  # not representable in short decimal
        groups=list(groups),
        target_distribution=np.array([np.nan, 1.0]),
        comparison_distribution=np.array([0.5, 0.5]),
    )
    return RecommendationResult(
        table="orders",
        predicate_description="product = 'p0'",
        k=1,
        metric="js",
        recommendations=[view],
        all_scored={view.spec: view, low.spec: low},
        prune_reports=[
            PruneReport(rule="variance", examined=3, pruned=[(other, "flat")])
        ],
        stopwatch=Stopwatch(phases={"execute": 0.25, "score": 0.0625}),
        n_candidate_views=3,
        n_executed_views=2,
        n_queries=4,
        sample_fraction=None,
        plan_description="combined",
        reference_description="table",
    )


def fingerprint(result: RecommendationResult) -> tuple:
    return (
        tuple(view.spec for view in result.recommendations),
        tuple(
            sorted((spec, view.utility) for spec, view in result.all_scored.items())
        ),
    )


class TestValueTags:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            -7,
            3.141592653589793,
            "east",
            date(2014, 9, 1),
            datetime(2014, 9, 1, 12, 30, 15),
            ("a", 1),
            np.datetime64("2014-09-01", "D"),
            np.datetime64("2014-09-01T12:30", "s"),
        ],
    )
    def test_round_trip(self, value):
        decoded = decode_value(encode_value(value))
        assert decoded == value
        assert type(decoded) is type(value) or isinstance(value, np.datetime64)

    def test_nan_round_trips_as_nan(self):
        assert np.isnan(decode_value(encode_value(float("nan"))))

    def test_nat_round_trips(self):
        decoded = decode_value(encode_value(np.datetime64("NaT", "D")))
        assert np.isnat(decoded)

    def test_numpy_scalars_decay_to_native(self):
        assert decode_value(encode_value(np.int64(7))) == 7
        assert decode_value(encode_value(np.float64(0.1))) == 0.1

    def test_unencodable_type_raises(self):
        with pytest.raises(ShmCodecError):
            encode_value(object())


class TestCodec:
    def test_round_trip_bit_exact(self):
        result = make_result()
        digest = "ab" * 32
        blob = encode_result(result, digest=digest, data_version=9)
        got_digest, got_version, decoded = decode_result(blob)
        assert (got_digest, got_version) == (digest, 9)
        assert fingerprint(decoded) == fingerprint(result)
        for original, copy in zip(
            result.all_scored.values(), decoded.all_scored.values()
        ):
            assert copy.utility == original.utility  # exact float equality
            assert np.array_equal(
                copy.target_distribution,
                original.target_distribution,
                equal_nan=True,
            )
            assert copy.groups == original.groups
        assert decoded.stopwatch.phases == result.stopwatch.phases
        assert decoded.prune_reports[0].pruned == result.prune_reports[0].pruned
        assert decoded.n_queries == result.n_queries

    def test_date_groups_round_trip(self):
        result = make_result(groups=[date(2014, 9, 1), date(2014, 9, 2)])
        _, _, decoded = decode_result(encode_result(result))
        assert decoded.recommendations[0].groups == [
            date(2014, 9, 1),
            date(2014, 9, 2),
        ]

    def test_object_dtype_arrays_with_nulls(self):
        result = make_result()
        view = result.recommendations[0]
        view.target_values = np.array(["x", None, 3.5], dtype=object)
        _, _, decoded = decode_result(encode_result(result))
        got = decoded.recommendations[0].target_values
        assert got.dtype == object
        assert list(got) == ["x", None, 3.5]

    def test_datetime64_arrays_round_trip(self):
        result = make_result()
        view = result.recommendations[0]
        view.target_values = np.array(
            ["2014-09-01", "NaT"], dtype="datetime64[D]"
        )
        _, _, decoded = decode_result(encode_result(result))
        got = decoded.recommendations[0].target_values
        assert got.dtype == np.dtype("datetime64[D]")
        assert got[0] == np.datetime64("2014-09-01", "D")
        assert np.isnat(got[1])

    def test_bad_magic_rejected(self):
        blob = encode_result(make_result())
        with pytest.raises(ShmCodecError):
            decode_result(b"NOTMAGIC" + blob[8:])
        with pytest.raises(ShmCodecError):
            decode_result(blob[:10])

    def test_decoded_arrays_are_owned_copies(self):
        blob = bytearray(encode_result(make_result()))
        _, _, decoded = decode_result(blob)
        view = decoded.recommendations[0]
        before = view.target_distribution.copy()
        blob[:] = b"\0" * len(blob)  # scribble over the source buffer
        assert np.array_equal(view.target_distribution, before)


class TestSharedResultCache:
    def test_put_get_round_trip(self):
        cache = SharedResultCache(PREFIX)
        digest = "cd" * 32
        result = make_result()
        name = cache.put(digest, 3, result)
        assert name == cache.segment_name(digest)
        assert name in cache.live_segments()
        got = cache.get(digest, 3)
        assert got is not None
        assert fingerprint(got) == fingerprint(result)
        assert cache.stats()["hits"] == 1
        cache.unlink_all()

    def test_get_miss_on_absent(self):
        cache = SharedResultCache(PREFIX)
        assert cache.get("ef" * 32, 1) is None
        assert cache.stats()["misses"] == 1

    def test_stale_version_retired_on_get(self):
        cache = SharedResultCache(PREFIX)
        digest = "12" * 32
        cache.put(digest, 1, make_result())
        # A data_version bump makes the entry stale: the reader unlinks it.
        assert cache.get(digest, 2) is None
        assert cache.live_segments() == []
        assert cache.stats()["stale_dropped"] == 1

    def test_writer_replaces_stale_entry(self):
        cache = SharedResultCache(PREFIX)
        digest = "34" * 32
        cache.put(digest, 1, make_result(utility=0.25))
        cache.put(digest, 2, make_result(utility=0.5))
        got = cache.get(digest, 2)
        assert got is not None
        assert got.recommendations[0].utility == 0.5
        cache.unlink_all()

    def test_writer_keeps_equally_fresh_entry(self):
        # Two workers racing the same key publish once; the second put
        # must not clobber (readers may be mid-attach on the first).
        cache = SharedResultCache(PREFIX)
        digest = "56" * 32
        cache.put(digest, 1, make_result(utility=0.25))
        cache.put(digest, 1, make_result(utility=0.9))
        got = cache.get(digest, 1)
        assert got is not None
        assert got.recommendations[0].utility == 0.25
        cache.unlink_all()

    def test_torn_write_is_invisible_but_not_retired(self):
        from repro.service.shm import _open_segment

        cache = SharedResultCache(PREFIX)
        digest = "78" * 32
        name = cache.segment_name(digest)
        blob = encode_result(make_result(), digest=digest, data_version=1)
        # A segment without its final magic write: either a writer died
        # mid-publish or one is publishing RIGHT NOW (magic goes in last).
        segment = _open_segment(name, create=True, size=len(blob))
        segment.buf[8:len(blob)] = blob[8:]
        segment.close()
        # Readers see a miss — but must NOT unlink: a live writer may
        # still be filling this segment for an in-flight reply.
        assert cache.get(digest, 1) is None
        assert cache.live_segments() == [name]
        # The next writer replaces dead garbage in place.
        cache.put(digest, 1, make_result(utility=0.5))
        got = cache.get(digest, 1)
        assert got is not None and got.recommendations[0].utility == 0.5
        cache.unlink_all()

    def test_unlink_all_sweeps_prefix(self):
        cache = SharedResultCache(PREFIX)
        for index in range(3):
            cache.put(f"{index:02x}" * 32, 1, make_result())
        assert len(cache.live_segments()) == 3
        assert cache.unlink_all() == 3
        assert cache.live_segments() == []

    def test_prefix_validated(self):
        with pytest.raises(ConfigError):
            SharedResultCache("")
        with pytest.raises(ConfigError):
            SharedResultCache("much-too-long-a-prefix.")
        with pytest.raises(ConfigError):
            SharedResultCache("has/slash")


def _child_put(prefix: str, digest: str, version: int, utility: float) -> None:
    cache = SharedResultCache(prefix)
    cache.put(digest, version, make_result(utility=utility))


class TestCrossProcess:
    def test_child_write_parent_read(self):
        digest = "9a" * 32
        ctx = multiprocessing.get_context()
        child = ctx.Process(target=_child_put, args=(PREFIX, digest, 5, 0.625))
        child.start()
        child.join(timeout=60)
        assert child.exitcode == 0
        cache = SharedResultCache(PREFIX)
        got = cache.get(digest, 5)
        assert got is not None
        assert got.recommendations[0].utility == 0.625
        # read_segment is the router's transport path over the same entry.
        seg_digest, seg_version, transported = read_segment(
            cache.segment_name(digest)
        )
        assert (seg_digest, seg_version) == (digest, 5)
        assert fingerprint(transported) == fingerprint(got)
        cache.unlink_all()

    def test_version_bump_invalidates_across_processes(self):
        digest = "bc" * 32
        ctx = multiprocessing.get_context()
        child = ctx.Process(target=_child_put, args=(PREFIX, digest, 1, 0.5))
        child.start()
        child.join(timeout=60)
        assert child.exitcode == 0
        cache = SharedResultCache(PREFIX)
        # The parent's data_version moved on: the child's entry is stale,
        # invisible, and retired on first contact.
        assert cache.get(digest, 2) is None
        assert cache.live_segments() == []
