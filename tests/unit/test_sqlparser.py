"""Unit tests: SQL lexer and parser."""

from datetime import date

import pytest

from repro.db.expressions import And, Between, Comparison, In, Not, Or
from repro.db.query import AggregateQuery, RowSelectQuery
from repro.sqlparser import parse_predicate, parse_query, parse_row_select, tokenize
from repro.sqlparser.lexer import TokenType
from repro.util.errors import SqlSyntaxError


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SELECT select SeLeCt")
        assert all(t.type is TokenType.KEYWORD for t in tokens[:-1])

    def test_string_escaping(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('"weird name"')
        assert tokens[0].type is TokenType.IDENTIFIER
        assert tokens[0].value == "weird name"

    def test_numbers(self):
        tokens = tokenize("42 4.5 1e3 -7")
        values = [t.value for t in tokens[:-1]]
        assert values == ["42", "4.5", "1e3", "-7"]

    def test_operators(self):
        tokens = tokenize("= != <> <= >= < >")
        values = [t.value for t in tokens[:-1]]
        assert values == ["=", "!=", "!=", "<=", ">=", "<", ">"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- a comment\n *")
        assert tokens[1].type is TokenType.STAR

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError, match="unterminated"):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError, match="unexpected"):
            tokenize("SELECT %")

    def test_eof_token_present(self):
        assert tokenize("")[-1].type is TokenType.EOF


class TestRowSelect:
    def test_minimal(self):
        query = parse_row_select("SELECT * FROM sales")
        assert query == RowSelectQuery("sales", None)

    def test_with_predicate(self):
        query = parse_row_select(
            "SELECT * FROM sales WHERE product = 'Laserwave'"
        )
        assert isinstance(query.predicate, Comparison)
        assert query.predicate.literal.value == "Laserwave"

    def test_trailing_semicolon(self):
        assert parse_row_select("SELECT * FROM t;").table == "t"

    def test_aggregate_rejected_by_row_select(self):
        with pytest.raises(SqlSyntaxError, match="row-selection"):
            parse_row_select("SELECT a, sum(m) FROM t GROUP BY a")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError, match="trailing"):
            parse_row_select("SELECT * FROM t nonsense")


class TestAggregateQueries:
    def test_paper_view_query(self):
        query = parse_query(
            "SELECT store, SUM(amount) FROM Sales "
            "WHERE Product = 'Laserwave' GROUP BY store"
        )
        assert isinstance(query, AggregateQuery)
        assert query.group_by == ("store",)
        assert query.aggregates[0].func == "sum"
        assert query.aggregates[0].column == "amount"

    def test_count_star(self):
        query = parse_query("SELECT a, count(*) FROM t GROUP BY a")
        assert query.aggregates[0].column is None

    def test_multiple_aggregates_with_alias(self):
        query = parse_query(
            "SELECT a, sum(x) AS total, avg(y) FROM t GROUP BY a"
        )
        assert query.aggregates[0].alias == "total"
        assert query.aggregates[1].alias == "avg(y)"

    def test_group_by_mismatch_rejected(self):
        with pytest.raises(SqlSyntaxError, match="must match"):
            parse_query("SELECT a, sum(x) FROM t GROUP BY b")

    def test_missing_aggregate_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_query("SELECT a FROM t GROUP BY a")


class TestPredicates:
    def test_and_or_precedence(self):
        predicate = parse_predicate("a = 1 OR b = 2 AND c = 3")
        # AND binds tighter: Or(a=1, And(b=2, c=3))
        assert isinstance(predicate, Or)
        assert isinstance(predicate.operands[1], And)

    def test_parentheses_override(self):
        predicate = parse_predicate("(a = 1 OR b = 2) AND c = 3")
        assert isinstance(predicate, And)
        assert isinstance(predicate.operands[0], Or)

    def test_not(self):
        predicate = parse_predicate("NOT a = 1")
        assert isinstance(predicate, Not)

    def test_in_list(self):
        predicate = parse_predicate("region IN ('west', 'east')")
        assert isinstance(predicate, In)
        assert predicate.values == ("west", "east")

    def test_between(self):
        predicate = parse_predicate("price BETWEEN 10 AND 20")
        assert isinstance(predicate, Between)
        assert (predicate.low, predicate.high) == (10, 20)

    def test_not_between(self):
        predicate = parse_predicate("price NOT BETWEEN 1 AND 2")
        assert isinstance(predicate, Not)
        assert isinstance(predicate.operand, Between)

    def test_iso_date_literal(self):
        predicate = parse_predicate("day >= '2024-03-01'")
        assert predicate.literal.value == date(2024, 3, 1)

    def test_non_date_string_stays_string(self):
        predicate = parse_predicate("code = '2024-13-99'")
        assert predicate.literal.value == "2024-13-99"

    def test_boolean_literals(self):
        assert parse_predicate("active = true").literal.value is True
        assert parse_predicate("active = false").literal.value is False

    def test_numeric_literals(self):
        assert parse_predicate("x = 1.5").literal.value == 1.5
        assert parse_predicate("x = 3").literal.value == 3

    def test_missing_comparison_rejected(self):
        with pytest.raises(SqlSyntaxError, match="comparison"):
            parse_predicate("region")

    def test_error_carries_position(self):
        try:
            tokenize("SELECT @")
        except SqlSyntaxError as error:
            assert error.position == 7
        else:
            pytest.fail("expected SqlSyntaxError")


class TestEvaluationRoundtrip:
    def test_parsed_predicate_evaluates(self, sales_table):
        predicate = parse_predicate(
            "product = 'Laserwave' AND amount BETWEEN 100 AND 200"
        )
        mask = predicate.evaluate(sales_table)
        assert mask.sum() == 3  # 180.55, 145.50, 122.00


class TestLimit:
    def test_limit_parsed(self):
        query = parse_row_select("SELECT * FROM t LIMIT 10")
        assert query.limit == 10

    def test_limit_with_predicate(self):
        query = parse_row_select("SELECT * FROM t WHERE a = 1 LIMIT 5")
        assert query.limit == 5 and query.predicate is not None

    def test_limit_requires_number(self):
        with pytest.raises(SqlSyntaxError, match="row count"):
            parse_row_select("SELECT * FROM t LIMIT many")

    def test_no_limit_is_none(self):
        assert parse_row_select("SELECT * FROM t").limit is None
