"""SQL round-trip tests: text → RowSelectQuery → rendered SQL → re-parse.

The request API ingests raw SQL (:meth:`RecommendationRequest.from_sql`)
and renders queries back to SQL for cache keys and reference descriptions,
so parse→render must be a fixpoint: rendering a parsed query and parsing
the rendering again yields the same AST and the same SQL text. Covers
identifier quoting, every predicate shape of the subset, and the
structured errors unsupported syntax raises through the API.
"""

from __future__ import annotations

import pytest

from repro.api import ApiError, RecommendationRequest
from repro.backends.sqlgen import render_row_select
from repro.sqlparser import parse_row_select
from repro.util.errors import SqlSyntaxError

ROUND_TRIP_QUERIES = [
    "SELECT * FROM sales",
    "SELECT * FROM sales WHERE product = 'Laserwave'",
    "SELECT * FROM sales WHERE amount > 10.5 AND store != 'x'",
    "SELECT * FROM sales WHERE a = 1 OR (b < 2 AND NOT c = 3)",
    "SELECT * FROM sales WHERE store IN ('a', 'b', 'c')",
    "SELECT * FROM sales WHERE amount BETWEEN 5 AND 10",
    "SELECT * FROM sales WHERE amount NOT BETWEEN 5 AND 10",
    "SELECT * FROM sales WHERE day = '2024-03-01'",
    "SELECT * FROM sales WHERE note = 'it''s quoted'",
    "SELECT * FROM sales LIMIT 25",
    "SELECT * FROM sales WHERE x = 1 LIMIT 0",
    # Quoted identifiers: embedded spaces, keywords, doubled quotes.
    'SELECT * FROM "order items" WHERE "select" = 1',
    'SELECT * FROM t WHERE "a""b" > 2',
]


class TestRoundTrip:
    @pytest.mark.parametrize("sql", ROUND_TRIP_QUERIES)
    def test_parse_render_fixpoint(self, sql):
        """render(parse(sql)) re-parses to the same AST and same text."""
        query = parse_row_select(sql)
        rendered = render_row_select(query)
        reparsed = parse_row_select(rendered)
        assert reparsed == query
        assert render_row_select(reparsed) == rendered

    def test_quoting_survives_weird_identifiers(self):
        query = parse_row_select('SELECT * FROM "from" WHERE "group by" = 5')
        assert query.table == "from"
        rendered = render_row_select(query)
        assert '"from"' in rendered and '"group by"' in rendered
        assert parse_row_select(rendered) == query

    def test_date_literals_stay_dates(self):
        import datetime

        query = parse_row_select("SELECT * FROM t WHERE day = '2020-06-15'")
        assert query.predicate.literal.value == datetime.date(2020, 6, 15)
        assert parse_row_select(render_row_select(query)) == query

    def test_in_list_order_preserved(self):
        query = parse_row_select("SELECT * FROM t WHERE s IN ('z', 'a', 'm')")
        assert query.predicate.values == ("z", "a", "m")
        assert parse_row_select(render_row_select(query)) == query


class TestUnsupportedSyntax:
    """Unsupported/malformed SQL surfaces as structured errors."""

    @pytest.mark.parametrize(
        "sql, fragment",
        [
            ("SELEKT * FROM t", "SELECT"),
            ("SELECT * FROM", "table name"),
            ("SELECT * FROM t WHERE", "column name"),
            ("SELECT * FROM t WHERE a =", "literal"),
            ("SELECT * FROM t LIMIT many", "row count"),
            ("SELECT * FROM t; DROP TABLE t", "trailing"),
            ("SELECT * FROM t WHERE a LIKE 'x%'", "comparison"),
        ],
    )
    def test_parser_raises_positioned_syntax_error(self, sql, fragment):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse_row_select(sql)
        assert fragment.lower() in str(excinfo.value).lower()

    def test_from_sql_wraps_syntax_error_as_api_error(self):
        with pytest.raises(ApiError) as excinfo:
            RecommendationRequest.from_sql("SELECT * FROM t WHERE a ~ 1")
        error = excinfo.value
        assert error.code == "sql_syntax"
        assert error.field == "target"
        assert error.position >= 0
        # Still catchable by pre-API handlers.
        assert isinstance(error, SqlSyntaxError)

    def test_from_sql_rejects_aggregate_queries_as_unsupported(self):
        with pytest.raises(ApiError) as excinfo:
            RecommendationRequest.from_sql(
                "SELECT region, avg(amount) FROM t GROUP BY region"
            )
        assert excinfo.value.code == "unsupported_sql"

    def test_reference_sql_errors_carry_reference_field_path(self):
        with pytest.raises(ApiError) as excinfo:
            RecommendationRequest.from_sql(
                "SELECT * FROM t WHERE a = 1", reference="SELEKT nope"
            )
        assert excinfo.value.code == "sql_syntax"
        assert excinfo.value.field == "reference.query"
