"""Streaming spec deltas: per-round visualizations refine monotonically.

Satellite contract for the v3 render block on the progressive path: a
view that survives from round N to round N+1 gets a spec whose category
set is a superset-or-refinement of the previous round's (the incremental
engine only ever absorbs more partitions, never forgets groups), and the
final round's frames are bit-identical to what blocking ``recommend()``
returns for the same request — on both the memory and sqlite backends.
"""

from __future__ import annotations

import pytest

from repro.api import RecommendationRequest
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB

SQL = "SELECT * FROM sales WHERE product = 'Laserwave'"

BACKENDS = ("memory_backend", "sqlite_backend")


def streaming_request() -> RecommendationRequest:
    return RecommendationRequest.from_sql(
        SQL,
        k=2,
        strategy="incremental",
        options={"render": {"format": "vega-lite"}, "n_phases": 3},
    )


def categories(frame: dict) -> set:
    return {row["category"] for row in frame["spec"]["data"]["values"]}


@pytest.fixture(params=BACKENDS)
def seedb(request):
    backend = request.getfixturevalue(request.param)
    return SeeDB(backend, SeeDBConfig(k=2))


class TestStreamingSpecs:
    def test_every_round_carries_frames_for_its_topk(self, seedb):
        rounds = list(seedb.recommend_iter(streaming_request()))
        assert len(rounds) >= 2
        for partial in rounds:
            assert partial.visualizations is not None
            assert [f["view"] for f in partial.visualizations] == [
                v.spec.label for v in partial.recommendations
            ]

    def test_surviving_views_refine_monotonically(self, seedb):
        """Round N+1's spec for a surviving view covers at least the
        categories round N had already shown — charts grow, they never
        lose data the analyst has seen."""
        rounds = list(seedb.recommend_iter(streaming_request()))
        compared = 0
        for earlier, later in zip(rounds, rounds[1:]):
            later_frames = {f["view"]: f for f in later.visualizations}
            for frame in earlier.visualizations:
                successor = later_frames.get(frame["view"])
                if successor is None:
                    continue  # fell out of the running top-k
                assert categories(frame) <= categories(successor), (
                    f"round {later.round} lost categories for "
                    f"{frame['view']!r}"
                )
                compared += 1
        assert compared > 0, "no view survived two rounds — vacuous test"

    def test_final_round_bit_identical_to_blocking(self, seedb):
        rounds = list(seedb.recommend_iter(streaming_request()))
        final = rounds[-1]
        assert final.is_final
        blocking = seedb.recommend(streaming_request())
        assert final.visualizations == blocking.visualizations
        assert final.result.visualizations == blocking.visualizations

    def test_no_render_block_means_no_frames(self, seedb):
        request = RecommendationRequest.from_sql(
            SQL, k=2, strategy="incremental", options={"n_phases": 3}
        )
        for partial in seedb.recommend_iter(request):
            assert partial.visualizations is None
