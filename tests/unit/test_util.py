"""Unit tests: timing, tabulation, RNG helpers, error hierarchy."""

import time

import numpy as np
import pytest

from repro.util import (
    BackendError,
    ConfigError,
    MetricError,
    QueryError,
    ReproError,
    SchemaError,
    Stopwatch,
    Timer,
    derive_rng,
    format_duration,
    format_table,
    spawn_seeds,
)


class TestTiming:
    def test_timer_measures(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.009

    def test_format_duration_units(self):
        assert format_duration(2.5) == "2.500s"
        assert format_duration(0.0025).endswith("ms")
        assert format_duration(2.5e-6).endswith("µs")
        assert format_duration(5e-9).endswith("ns")
        assert format_duration(-1.0).startswith("-")

    def test_stopwatch_accumulates(self):
        stopwatch = Stopwatch()
        with stopwatch.time("phase_a"):
            pass
        with stopwatch.time("phase_a"):
            pass
        stopwatch.add("phase_b", 1.0)
        assert stopwatch.phases["phase_b"] == 1.0
        assert stopwatch.total >= 1.0
        assert "phase_b" in stopwatch.breakdown()

    def test_empty_stopwatch_breakdown(self):
        assert "no phases" in Stopwatch().breakdown()


class TestTabulate:
    def test_alignment(self):
        text = format_table(
            [["ab", 1.0], ["c", 22.5]], headers=["name", "value"]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[1].startswith("----")
        # Numeric column right-aligned: both rows end at the same column.
        assert len(lines[2]) == len(lines[3])

    def test_ragged_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table([[1, 2], [3]], headers=["a", "b"])

    def test_empty(self):
        assert format_table([], headers=None) == "(empty table)"

    def test_no_headers(self):
        assert "x" in format_table([["x"]])

    def test_bools_render_as_words(self):
        assert "True" in format_table([[True]], headers=["flag"])


class TestRng:
    def test_derive_from_int_deterministic(self):
        assert derive_rng(5).random() == derive_rng(5).random()

    def test_passthrough_generator(self):
        generator = np.random.default_rng(0)
        assert derive_rng(generator) is generator

    def test_spawn_seeds_independent(self):
        seeds = spawn_seeds(42, 5)
        assert len(seeds) == 5
        assert len(set(seeds)) == 5
        assert spawn_seeds(42, 5) == seeds  # deterministic

    def test_spawn_seeds_validation(self):
        with pytest.raises(ValueError):
            spawn_seeds(1, -1)


class TestErrors:
    def test_hierarchy(self):
        for error_type in (
            SchemaError,
            QueryError,
            BackendError,
            MetricError,
            ConfigError,
        ):
            assert issubclass(error_type, ReproError)

    def test_sql_syntax_error_position(self):
        from repro.util.errors import SqlSyntaxError

        error = SqlSyntaxError("bad", position=7)
        assert error.position == 7
        assert issubclass(SqlSyntaxError, QueryError)
