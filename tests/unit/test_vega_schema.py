"""Unit tests: the vendored Vega-Lite mini schema and its validator."""

from __future__ import annotations

import pytest

from repro.viz.vega import to_vega_lite
from repro.viz.vega_schema import (
    VEGA_LITE_MINI_SCHEMA,
    validate,
    validate_vega_lite,
)

VALID_SPEC = {
    "$schema": "https://vega.github.io/schema/vega-lite/v5.json",
    "title": "sum(amount) by store",
    "description": "utility=0.5",
    "data": {
        "values": [
            {"category": "Cambridge, MA", "series": "target", "value": 1.0},
            {"category": "Cambridge, MA", "series": "reference", "value": 2.0},
        ]
    },
    "mark": "bar",
    "encoding": {
        "x": {"field": "category", "type": "nominal", "sort": None},
        "y": {"field": "value", "type": "quantitative"},
        "color": {"field": "series"},
        "xOffset": {"field": "series"},
    },
    "config": {"background": "#ffffff"},
}


def spec_with(**overrides) -> dict:
    import copy

    spec = copy.deepcopy(VALID_SPEC)
    spec.update(overrides)
    return spec


class TestValidator:
    def test_valid_spec_passes(self):
        assert validate_vega_lite(VALID_SPEC) == []

    def test_const_mismatch_names_the_schema_url(self):
        errors = validate_vega_lite(spec_with(**{"$schema": "v4.json"}))
        assert any("$.$schema" in e for e in errors)

    def test_mark_enum_is_closed(self):
        errors = validate_vega_lite(spec_with(mark="area"))
        assert any("not in enum" in e for e in errors)

    def test_missing_required_channel_reported(self):
        bad = spec_with(encoding={"x": {"field": "category"}})
        errors = validate_vega_lite(bad)
        assert any("missing required property 'y'" in e for e in errors)

    def test_additional_properties_rejected(self):
        errors = validate_vega_lite(spec_with(interactive=True))
        assert any("unexpected property 'interactive'" in e for e in errors)

    def test_row_value_type_union_admits_null_but_not_strings(self):
        null_row = spec_with(
            data={"values": [{"category": "a", "series": "s", "value": None}]}
        )
        assert validate_vega_lite(null_row) == []
        bad_row = spec_with(
            data={"values": [{"category": "a", "series": "s", "value": "x"}]}
        )
        errors = validate_vega_lite(bad_row)
        assert any("data.values[0].value" in e for e in errors)

    def test_ref_resolution_validates_channels(self):
        bad = spec_with(
            encoding={
                "x": {"field": "category", "type": "diagonal"},
                "y": {"field": "value"},
            }
        )
        errors = validate_vega_lite(bad)
        assert any("encoding.x.type" in e for e in errors)

    def test_non_local_ref_rejected(self):
        with pytest.raises(ValueError):
            validate({}, {"$ref": "http://example.com/schema"})

    def test_error_paths_are_rooted(self):
        errors = validate("not a dict", VEGA_LITE_MINI_SCHEMA)
        assert errors == [
            "$: expected type 'object', got str"
        ]


class TestEmittedSpecsConform:
    """Every spec the viz layer produces must satisfy its own contract."""

    @pytest.mark.parametrize("theme", (None, "light", "dark"))
    def test_chart_specs_validate(self, memory_backend, theme, sales_table):
        from repro.core.recommender import SeeDB
        from repro.viz.chart_select import dimension_spec_for
        from repro.viz.spec import view_to_chart_spec

        result = SeeDB(memory_backend).recommend(
            "SELECT * FROM sales WHERE product = 'Laserwave'"
        )
        assert result.recommendations
        for view in result.recommendations:
            chart = view_to_chart_spec(
                view, dimension_spec_for(view.spec, sales_table.schema)
            )
            assert validate_vega_lite(to_vega_lite(chart, theme=theme)) == []
