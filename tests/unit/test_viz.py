"""Unit tests: chart specs, selection rules, renderers, and export."""

import json

import numpy as np
import pytest

from repro.db.schema import ColumnSpec
from repro.db.types import AttributeRole, DataType
from repro.model.view import ScoredView, ViewSpec
from repro.util.errors import ReproError
from repro.viz import (
    ChartSpec,
    ChartType,
    Series,
    dimension_spec_for,
    render_ascii,
    render_svg,
    select_chart,
    select_chart_type,
    to_vega_lite,
    view_to_chart_spec,
)
from repro.viz.spec import single_series_spec
from repro.viz.vega import to_vega_lite_json


@pytest.fixture
def scored_view():
    return ScoredView(
        spec=ViewSpec("store", "amount", "sum"),
        utility=0.42,
        groups=["a", "b", "c"],
        target_distribution=np.array([0.7, 0.2, 0.1]),
        comparison_distribution=np.array([0.2, 0.3, 0.5]),
        target_values=np.array([70.0, 20.0, 10.0]),
        comparison_values=np.array([200.0, 300.0, 500.0]),
    )


def dim_spec(dtype=DataType.STR, semantic=None):
    return ColumnSpec("d", dtype, AttributeRole.DIMENSION, semantic)


class TestChartSpec:
    def test_view_translation(self, scored_view):
        spec = view_to_chart_spec(scored_view, dim_spec())
        assert spec.title == "sum(amount) by store"
        assert len(spec.series) == 2
        assert spec.series[0].values == (70.0, 20.0, 10.0)
        assert any("utility=0.42" in note for note in spec.notes)

    def test_normalized_mode(self, scored_view):
        spec = view_to_chart_spec(scored_view, dim_spec(), normalized=True)
        assert spec.y_label == "probability mass"
        assert spec.series[0].values[0] == pytest.approx(0.7)

    def test_series_length_validated(self):
        with pytest.raises(ReproError, match="values"):
            ChartSpec(
                chart_type=ChartType.BAR,
                title="t",
                x_label="x",
                y_label="y",
                categories=("a", "b"),
                series=(Series("s", (1.0,)),),
            )

    def test_needs_series(self):
        with pytest.raises(ReproError, match="series"):
            ChartSpec(ChartType.BAR, "t", "x", "y", ("a",), ())

    def test_single_series_helper(self):
        spec = single_series_spec("t", "x", "y", ["a"], [1.0])
        assert spec.chart_type is ChartType.BAR


class TestChartSelection:
    def test_geography_maps(self):
        assert (
            select_chart_type(dim_spec(semantic="geography"), 4) is ChartType.MAP
        )

    def test_time_semantic_lines(self):
        assert select_chart_type(dim_spec(semantic="time"), 4) is ChartType.LINE

    def test_date_dtype_lines(self):
        assert select_chart_type(dim_spec(DataType.DATE), 30) is ChartType.LINE

    def test_high_cardinality_numeric_lines(self):
        assert select_chart_type(dim_spec(DataType.INT), 30) is ChartType.LINE

    def test_low_cardinality_numeric_bars(self):
        assert select_chart_type(dim_spec(DataType.INT), 5) is ChartType.GROUPED_BAR

    def test_categorical_bars(self):
        assert select_chart_type(dim_spec(), 8) is ChartType.GROUPED_BAR

    def test_none_spec_fallback(self):
        assert select_chart_type(None, 8) is ChartType.GROUPED_BAR


class TestSelectChart:
    """The rationale-carrying selector behind the v3 render block."""

    def test_delegation_preserves_legacy_choices(self):
        for spec, n_groups in (
            (dim_spec(semantic="geography"), 4),
            (dim_spec(DataType.DATE), 30),
            (dim_spec(DataType.INT), 30),
            (dim_spec(), 8),
            (None, 8),
        ):
            assert (
                select_chart(spec, n_groups, n_series=2).chart_type
                is select_chart_type(spec, n_groups)
            )

    def test_single_low_cardinality_series_is_pie_eligible(self):
        choice = select_chart(dim_spec(), 4, n_series=1)
        assert choice.chart_type is ChartType.PIE
        assert "part-to-whole" in choice.rationale

    def test_rationales_name_their_rule(self):
        assert "geography" in select_chart(
            dim_spec(semantic="geography"), 4
        ).rationale
        assert "DATE" in select_chart(dim_spec(DataType.DATE), 30).rationale
        assert "no schema context" in select_chart(None, 8).rationale

    def test_none_spec_single_series_plain_bar(self):
        assert select_chart(None, 8, n_series=1).chart_type is ChartType.BAR


class TestDimensionSpecFor:
    def test_resolves_from_schema(self, sales_table):
        spec = ViewSpec("store", "amount", "sum")
        resolved = dimension_spec_for(spec, sales_table.schema)
        assert resolved is not None and resolved.name == "store"

    def test_none_schema_degrades(self):
        assert dimension_spec_for(ViewSpec("d", "m", "sum"), None) is None

    def test_missing_column_degrades(self, sales_table):
        assert (
            dimension_spec_for(ViewSpec("gone", "m", "sum"), sales_table.schema)
            is None
        )

    def test_multiview_spec_degrades(self, sales_table):
        class MultiSpec:
            dimensions = ("store", "month")

        assert dimension_spec_for(MultiSpec(), sales_table.schema) is None

    def test_single_dimension_multiview_resolves(self, sales_table):
        class MultiSpec:
            dimensions = ("store",)

        resolved = dimension_spec_for(MultiSpec(), sales_table.schema)
        assert resolved is not None and resolved.name == "store"


class TestAsciiRenderer:
    def test_contains_categories_and_legend(self, scored_view):
        text = render_ascii(view_to_chart_spec(scored_view, dim_spec()))
        for category in ("a", "b", "c"):
            assert f"\n{category}" in "\n" + text
        assert "query subset" in text and "entire dataset" in text

    def test_zero_values_no_crash(self):
        spec = single_series_spec("t", "x", "y", ["a"], [0.0])
        assert "0" in render_ascii(spec)

    def test_width_validation(self, scored_view):
        with pytest.raises(ValueError):
            render_ascii(view_to_chart_spec(scored_view, dim_spec()), width=2)


class TestSvgRenderer:
    def test_valid_svg_document(self, scored_view):
        svg = render_svg(view_to_chart_spec(scored_view, dim_spec()))
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert "<rect" in svg  # bars drawn
        assert "sum(amount) by store" in svg

    def test_line_chart_has_polyline(self, scored_view):
        spec = view_to_chart_spec(scored_view, dim_spec(semantic="time"))
        assert spec.chart_type is ChartType.LINE
        assert "<polyline" in render_svg(spec)

    def test_map_falls_back_with_note(self, scored_view):
        spec = view_to_chart_spec(scored_view, dim_spec(semantic="geography"))
        svg = render_svg(spec)
        assert "rendered" in svg and "as bars" in svg

    def test_escapes_special_characters(self):
        spec = single_series_spec("a < b & c", "x", "y", ["<cat>"], [1.0])
        svg = render_svg(spec)
        assert "a &lt; b &amp; c" in svg
        assert "&lt;cat&gt;" in svg

    def test_negative_values_render(self):
        spec = single_series_spec("t", "x", "y", ["a", "b"], [-5.0, 5.0])
        assert "<rect" in render_svg(spec)


class TestVegaEmitter:
    def test_grouped_bar_encoding(self, scored_view):
        vega = to_vega_lite(view_to_chart_spec(scored_view, dim_spec()))
        assert vega["mark"] == "bar"
        assert "xOffset" in vega["encoding"]
        assert len(vega["data"]["values"]) == 6  # 3 categories x 2 series

    def test_line_mark(self, scored_view):
        spec = view_to_chart_spec(scored_view, dim_spec(semantic="time"))
        assert to_vega_lite(spec)["mark"] == "line"

    def test_json_serializable(self, scored_view):
        text = to_vega_lite_json(view_to_chart_spec(scored_view, dim_spec()))
        parsed = json.loads(text)
        assert parsed["$schema"].endswith("v5.json")


class TestExport:
    def test_export_writes_all_formats(self, memory_backend, tmp_path):
        from repro.core.recommender import SeeDB
        from repro.db.expressions import col
        from repro.db.query import RowSelectQuery
        from repro.viz.export import export_recommendations

        seedb = SeeDB(memory_backend)
        result = seedb.recommend(
            RowSelectQuery("sales", col("product") == "Laserwave"), k=2
        )
        schema = memory_backend.schema("sales")
        paths = export_recommendations(result, tmp_path / "charts", schema)
        assert len(paths) == 6  # 2 views x 3 formats
        suffixes = {p.suffix for p in paths}
        assert suffixes == {".svg", ".json", ".txt"}
        for path in paths:
            assert path.exists() and path.stat().st_size > 0

    def test_export_without_schema_falls_back_not_crashes(
        self, memory_backend, tmp_path
    ):
        """Regression (chart_select/export drift): a None schema must
        degrade every chart to the bar fallback, never raise."""
        from repro.core.recommender import SeeDB
        from repro.db.expressions import col
        from repro.db.query import RowSelectQuery
        from repro.viz.export import export_recommendations

        result = SeeDB(memory_backend).recommend(
            RowSelectQuery("sales", col("product") == "Laserwave"), k=2
        )
        paths = export_recommendations(
            result, tmp_path / "bare", schema=None, formats=("vega",)
        )
        assert len(paths) == 2
        for path in paths:
            vega = json.loads(path.read_text())
            assert vega["mark"] == "bar"

    def test_export_tolerates_multiview_specs(self, scored_view, tmp_path):
        """Multi-dimension view specs (``dimensions``, no ``dimension``)
        export with degraded labels instead of AttributeError."""
        import dataclasses

        from repro.core.result import RecommendationResult
        from repro.util.timing import Stopwatch
        from repro.viz.export import export_recommendations

        @dataclasses.dataclass(frozen=True)
        class MultiSpec:
            dimensions: tuple
            label: str = "sum(amount) by store x month"
            aggregate = type("Agg", (), {"alias": "sum_amount"})()

        view = dataclasses.replace(
            scored_view, spec=MultiSpec(dimensions=("store", "month"))
        )
        result = RecommendationResult(
            table="sales",
            predicate_description="product = 'Laserwave'",
            metric="js",
            k=1,
            recommendations=[view],
            all_scored={},
            prune_reports=[],
            stopwatch=Stopwatch(),
            n_candidate_views=1,
            n_executed_views=1,
            n_queries=1,
        )
        paths = export_recommendations(
            result, tmp_path / "multi", formats=("vega",)
        )
        assert len(paths) == 1
