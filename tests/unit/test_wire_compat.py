"""Wire compatibility: v1/v2 request bodies behave exactly as before v3.

The schema_version 3 bump added the ``options.render`` block and the
``visualizations`` response list. Old clients must notice nothing: this
suite proves version-1 and version-2 bodies still decode, canonicalize to
the same coalescing keys as a defaults-only v3 body, execute to
bit-identical response payloads, and never grow a ``visualizations`` key.
"""

from __future__ import annotations

import json

import pytest

from repro.api import ApiError, RecommendationRequest
from repro.api.request import ACCEPTED_SCHEMA_VERSIONS, SCHEMA_VERSION
from repro.api.wire import result_to_json
from repro.core.config import SeeDBConfig
from repro.core.recommender import SeeDB

SQL = "SELECT * FROM sales WHERE product = 'Laserwave'"

#: Response keys that legitimately vary between two identical executions:
#: wall-clock timings, and the plan decision whose predicted seconds move
#: with the calibration EWMA the first run feeds back.
VOLATILE_KEYS = ("phase_seconds", "total_seconds", "plan_decision")


def wire_body(version: int, **extra) -> dict:
    """The canonical wire body for SQL, stamped with ``version``."""
    wire = RecommendationRequest.from_sql(SQL, k=2).to_dict()
    wire["schema_version"] = version
    wire.update(extra)
    return wire


def stable(payload: dict) -> dict:
    """A response payload with run-to-run-volatile timing keys dropped."""
    payload = json.loads(json.dumps(payload))
    for key in VOLATILE_KEYS:
        payload.pop(key, None)
    return payload


class TestVersionAcceptance:
    def test_to_dict_emits_current_version(self):
        assert wire_body(SCHEMA_VERSION)["schema_version"] == 3

    @pytest.mark.parametrize("version", ACCEPTED_SCHEMA_VERSIONS)
    def test_all_published_versions_decode(self, version):
        request = RecommendationRequest.from_dict(wire_body(version))
        assert request.k == 2

    def test_unknown_version_rejected(self):
        with pytest.raises(ApiError) as excinfo:
            RecommendationRequest.from_dict(wire_body(99))
        assert excinfo.value.code == "schema_version"


class TestCanonicalization:
    """v1/v2 bodies and defaults-only v3 bodies coalesce together."""

    def config(self) -> SeeDBConfig:
        return SeeDBConfig(k=2)

    def key_for(self, body: dict):
        request = RecommendationRequest.from_dict(body)
        return request.resolve(self.config()).key_parts()

    @pytest.mark.parametrize("version", (1, 2))
    def test_old_versions_share_the_v3_coalescing_key(self, version):
        assert self.key_for(wire_body(version)) == self.key_for(
            wire_body(SCHEMA_VERSION)
        )

    def test_render_defaults_normalize_to_one_key(self):
        """Absent, ``{}``, and an explicit ``format: none`` block are the
        same request — they must share one cache/coalescing identity."""
        bare = self.key_for(wire_body(SCHEMA_VERSION))
        empty = self.key_for(
            wire_body(SCHEMA_VERSION, options={"render": {}})
        )
        explicit = self.key_for(
            wire_body(SCHEMA_VERSION, options={"render": {"format": "none"}})
        )
        assert bare == empty == explicit

    def test_rendering_requests_do_not_coalesce_with_plain_ones(self):
        rendered = self.key_for(
            wire_body(
                SCHEMA_VERSION, options={"render": {"format": "vega-lite"}}
            )
        )
        assert rendered != self.key_for(wire_body(SCHEMA_VERSION))


class TestExecutionUnchanged:
    @pytest.mark.parametrize("version", (1, 2))
    def test_old_bodies_execute_bit_identically_to_v3(
        self, memory_backend, version
    ):
        seedb = SeeDB(memory_backend, SeeDBConfig(k=2))
        old = seedb.recommend(RecommendationRequest.from_dict(wire_body(version)))
        new = seedb.recommend(
            RecommendationRequest.from_dict(wire_body(SCHEMA_VERSION))
        )
        assert stable(result_to_json(old)) == stable(result_to_json(new))

    @pytest.mark.parametrize("version", (1, 2, 3))
    def test_no_visualizations_key_without_a_render_request(
        self, memory_backend, version
    ):
        seedb = SeeDB(memory_backend, SeeDBConfig(k=2))
        result = seedb.recommend(
            RecommendationRequest.from_dict(wire_body(version))
        )
        payload = result_to_json(result)
        # Absent, not null: pre-v3 clients see the exact body shape they
        # always did.
        assert "visualizations" not in payload
        assert "render" not in result.stopwatch.phases
