#!/usr/bin/env python3
"""Enforce the pinned ruff/mypy finding budgets from pyproject.toml.

Hygiene CI runs this after installing .github/requirements-lint.txt. It
executes both tools over src/ and tests/, counts findings, and fails
when a count exceeds its budget under [tool.seedb.lint-budget]. Counts
below budget print a reminder to ratchet the budget down but still pass,
so fixes land without a same-commit budget edit being mandatory.

Run locally with ``python tools/lint_budget.py``; a tool that is not
installed is reported and skipped so the script stays usable in
environments without the lint toolchain.
"""

from __future__ import annotations

import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RUFF_TARGETS = ["src", "tests", "tools"]
# mypy only walks src: the test tree has multiple same-named modules
# (conftest.py per package) that mypy rejects as duplicates, and every
# module outside repro.analysis is ignore_errors=true anyway.
MYPY_TARGETS = ["src"]

try:
    import tomllib
except ModuleNotFoundError:  # Python 3.10
    tomllib = None


def load_budgets() -> dict[str, int]:
    pyproject = REPO_ROOT / "pyproject.toml"
    if tomllib is not None:
        with open(pyproject, "rb") as handle:
            data = tomllib.load(handle)
        section = data.get("tool", {}).get("seedb", {}).get("lint-budget", {})
        return {name: int(value) for name, value in section.items()}
    # 3.10 fallback: the section is two flat ``name = int`` lines.
    budgets: dict[str, int] = {}
    in_section = False
    for line in pyproject.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if stripped.startswith("["):
            in_section = stripped == "[tool.seedb.lint-budget]"
            continue
        if in_section:
            match = re.match(r"^(\w+)\s*=\s*(\d+)\s*(?:#.*)?$", stripped)
            if match:
                budgets[match.group(1)] = int(match.group(2))
    return budgets


def count_ruff() -> int | None:
    if shutil.which("ruff") is None:
        return None
    result = subprocess.run(
        ["ruff", "check", "--output-format", "json", *RUFF_TARGETS],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    try:
        findings = json.loads(result.stdout or "[]")
    except json.JSONDecodeError:
        print("ruff produced unparseable output:", file=sys.stderr)
        sys.stderr.write(result.stdout + result.stderr)
        return -1
    for finding in findings:
        location = finding.get("location") or {}
        print(
            f"ruff: {finding.get('filename')}:{location.get('row')}: "
            f"{finding.get('code')} {finding.get('message')}"
        )
    return len(findings)


def count_mypy() -> int | None:
    if shutil.which("mypy") is None:
        return None
    result = subprocess.run(
        ["mypy", "--no-error-summary", *MYPY_TARGETS],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    errors = [
        line
        for line in result.stdout.splitlines()
        if re.search(r":\d+:(\d+:)? error:", line)
    ]
    for line in errors:
        print(f"mypy: {line}")
    if result.returncode not in (0, 1):
        # Crash / config error, not findings: surface and fail hard.
        print("mypy failed to run:", file=sys.stderr)
        sys.stderr.write(result.stdout + result.stderr)
        return -1
    return len(errors)


def main() -> int:
    budgets = load_budgets()
    if not budgets:
        print("no [tool.seedb.lint-budget] section found", file=sys.stderr)
        return 2
    counters = {"ruff": count_ruff, "mypy": count_mypy}
    status = 0
    for tool, budget in sorted(budgets.items()):
        counter = counters.get(tool)
        if counter is None:
            print(f"{tool}: no counter implemented", file=sys.stderr)
            status = 2
            continue
        count = counter()
        if count is None:
            print(f"{tool}: not installed, skipped (budget {budget})")
            continue
        if count < 0:
            status = 2
            continue
        if count > budget:
            print(f"{tool}: {count} finding(s) exceeds budget {budget}")
            status = 1
        elif count < budget:
            print(
                f"{tool}: {count} finding(s), under budget {budget} — "
                "ratchet the budget down in pyproject.toml"
            )
        else:
            print(f"{tool}: {count} finding(s), within budget {budget}")
    return status


if __name__ == "__main__":
    sys.exit(main())
