#!/usr/bin/env python3
"""Validate every Vega-Lite spec the serving stack emits, offline.

Hygiene CI runs this (after installing numpy on top of the lint
toolchain). It builds the store-orders demo dataset in memory, executes a
render-enabled request through both delivery paths — blocking
``recommend()`` and the per-round streaming estimates — across both
themes, and validates every emitted spec against the vendored minimal
Vega-Lite JSON Schema (``repro.viz.vega_schema``). No network, no
jsonschema dependency: the vendored schema *is* the documented subset,
so a spec it rejects is wire-contract drift.

Run locally with ``PYTHONPATH=src python tools/validate_vega_specs.py``;
exits nonzero listing every invalid spec.
"""

from __future__ import annotations

import sys


def main() -> int:
    from repro.api import RecommendationRequest
    from repro.backends.memory import MemoryBackend
    from repro.core.recommender import SeeDB
    from repro.datasets.registry import load_dataset
    from repro.viz.vega_schema import validate_vega_lite

    backend = MemoryBackend()
    backend.register_table(load_dataset("store_orders"))
    seedb = SeeDB(backend)
    sql = "SELECT * FROM store_orders WHERE category = 'Technology'"

    checked = 0
    failures: list[str] = []

    def check(frames, origin: str) -> None:
        nonlocal checked
        for frame in frames or []:
            checked += 1
            for error in validate_vega_lite(frame["spec"]):
                failures.append(f"{origin} / {frame['view']}: {error}")

    for theme in ("light", "dark"):
        render = {"format": "vega-lite", "theme": theme}
        blocking = seedb.recommend(
            RecommendationRequest.from_sql(
                sql, k=5, options={"render": dict(render)}
            )
        )
        check(blocking.visualizations, f"blocking/{theme}")
        streaming = RecommendationRequest.from_sql(
            sql,
            k=5,
            strategy="incremental",
            options={"render": dict(render), "n_phases": 4},
        )
        for partial in seedb.recommend_iter(streaming):
            check(partial.visualizations, f"stream-round-{partial.round}/{theme}")

    if checked == 0:
        failures.append("no specs were emitted — the render path is broken")
    for failure in failures:
        print(f"INVALID: {failure}", file=sys.stderr)
    print(f"validated {checked} Vega-Lite specs, {len(failures)} invalid")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
